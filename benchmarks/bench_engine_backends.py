"""Experiment ENGINE-BACKENDS -- round throughput of the vectorized engine.

Measures simulator round throughput (rounds per second) for the three
engine backends of the layered CONGEST runtime:

* ``sync`` -- the scalar reference :class:`SyncEngine`;
* ``active-set`` -- :class:`ActiveSetEngine` (skips halted nodes);
* ``vector`` -- :class:`VectorEngine`, which executes whole rounds as
  batched numpy array operations over the CSR topology snapshot.

Workloads are the large-graph mix the vector engine was built for:
``regular(n=20000, d=8)`` (the Table-1 landscape workload scaled 10x past
what the scalar engines serve comfortably) and a dense-core-with-pendant-
paths family (wildly heterogeneous degrees -- the adversarial regime for
anything assuming near-regularity).  Algorithms are the three vectorized
programs: Luby MIS, BeepingMIS and the deterministic ruling set.

Every row is agreement-checked first: outputs, rounds, message totals, bit
totals and per-edge congestion must be bit-identical across all three
engines before any timing counts (the differential matrix of
``tests/test_engine_equivalence.py``, re-run at benchmark scale).

The acceptance bar of the vector-engine PR is a **>= 3x geometric-mean
speedup of ``vector`` over ``sync``** across the full-sweep rows (with a
1.5x floor on every individual row); the run fails loudly if that
regresses.  ``--smoke`` (or ``SMOKE=1``) runs a reduced sweep without the
assertion, for CI; ``--output PATH`` additionally writes the rows plus
summary as JSON (the CI artifact next to the service-throughput numbers).

Networks are built with ``bandwidth_bits=256``: Luby's (priority, id)
tuples legitimately exceed the default 64-bit budget at n=20000 and this
experiment measures scheduler throughput, not bandwidth conformance.
"""

from __future__ import annotations

import json
import math
import os
import statistics
import sys
from typing import Callable, Hashable, Mapping

from harness import ensure_results_dir, print_and_store, time_rounds_per_sec
from repro.analysis.tables import format_table
from repro.congest import CongestNetwork, NodeAlgorithm, Simulator
from repro.congest.simulator import SimulationResult
from repro.graphs import random_regular_graph
from repro.graphs.generators import dense_core_with_pendant_paths
from repro.mis.beeping import BeepingMISNode
from repro.mis.luby import LubyMISNode
from repro.ruling.distributed import DetRulingSetNode

Node = Hashable

EXPERIMENT_ID = "engine_backends"
SPEEDUP_TARGET = 3.0     # geometric mean of vector vs sync across all rows
ROW_SPEEDUP_FLOOR = 1.5  # every individual row must clear this
ENGINES = ("sync", "active-set", "vector")
BANDWIDTH_BITS = 256


def _workloads(*, smoke: bool):
    if smoke:
        return [
            ("regular(n=2000,d=8)", random_regular_graph(2000, 8, seed=1)),
            ("dense-core(64x128x6)",
             dense_core_with_pendant_paths(64, 128, 6)),
        ]
    return [
        ("regular(n=20000,d=8)", random_regular_graph(20000, 8, seed=1)),
        ("dense-core(256x512x8)",
         dense_core_with_pendant_paths(256, 512, 8)),
    ]


def _algorithms() -> list[tuple[str, Callable[[Node], NodeAlgorithm] | type, int]]:
    return [
        ("luby-mis", LubyMISNode, 2_000),
        ("beeping-mis", lambda node: BeepingMISNode(max_steps=600), 2_000),
        ("det-ruling", DetRulingSetNode, 4_000),
    ]


def _check_agreement(name: str, results: Mapping[str, SimulationResult]) -> None:
    reference = results["sync"]
    for engine, result in results.items():
        same = (result.outputs == reference.outputs
                and result.rounds == reference.rounds
                and result.total_messages == reference.total_messages
                and result.total_bits == reference.total_bits
                and result.edge_message_counts == reference.edge_message_counts)
        if not same:
            raise AssertionError(
                f"{name}: engine {engine!r} disagrees with the sync "
                f"reference (rounds {result.rounds} vs {reference.rounds}, "
                f"messages {result.total_messages} vs "
                f"{reference.total_messages}) -- the differential matrix "
                f"must pass before throughput means anything")


def experiment_engine_backends(*, smoke: bool = False) -> list[dict[str, object]]:
    repeats = 1 if smoke else 5
    seed = 1
    rows: list[dict[str, object]] = []
    for workload, graph in _workloads(smoke=smoke):
        network = CongestNetwork(graph, id_seed=seed,
                                 bandwidth_bits=BANDWIDTH_BITS)
        network.topology()  # build the snapshot once, outside the timing
        for algo_name, factory, max_rounds in _algorithms():
            makers = {
                engine: (lambda engine=engine: Simulator(
                    network, factory, seed=seed, engine=engine))
                for engine in ENGINES
            }
            results: dict[str, SimulationResult] = {}
            samples: dict[str, list[float]] = {name: [] for name in makers}
            for make in makers.values():  # untimed warmup (caches, allocator)
                make().run(max_rounds)
            # Interleave the engines across repeats so CPU frequency drift
            # hits all three equally; medians are robust to a single
            # throttled run.
            for _ in range(repeats):
                for name, make in makers.items():
                    rate, results[name] = time_rounds_per_sec(
                        make, max_rounds=max_rounds, repeats=1)
                    samples[name].append(rate)
            rates = {name: statistics.median(values)
                     for name, values in samples.items()}

            _check_agreement(f"{workload}/{algo_name}", results)
            speedup = (rates["vector"] / rates["sync"]
                       if rates["sync"] else float("inf"))
            rows.append({
                "workload": workload,
                "algorithm": algo_name,
                "rounds": results["sync"].rounds,
                "messages": results["sync"].total_messages,
                "sync_rps": round(rates["sync"], 1),
                "active_rps": round(rates["active-set"], 1),
                "vector_rps": round(rates["vector"], 1),
                "speedup": round(speedup, 2),
            })
    return rows


def _geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _write_json(path: str, rows: list[dict[str, object]], *,
                smoke: bool) -> None:
    speedups = [float(row["speedup"]) for row in rows]
    document = {
        "experiment": EXPERIMENT_ID,
        "smoke": smoke,
        "engines": list(ENGINES),
        "bandwidth_bits": BANDWIDTH_BITS,
        "rows": rows,
        "summary": {
            "geomean_speedup": round(_geomean(speedups), 3),
            "worst_row_speedup": round(min(speedups), 3),
            "target_geomean": SPEEDUP_TARGET,
            "target_row_floor": ROW_SPEEDUP_FLOOR,
        },
    }
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv or os.environ.get("SMOKE") == "1"
    output = None
    if "--output" in argv:
        output = argv[argv.index("--output") + 1]
    rows = experiment_engine_backends(smoke=smoke)
    notes = ("rounds/sec, median of interleaved repeats; speedup = vector vs "
             "sync. Outputs/rounds/messages/bits/per-edge congestion "
             "verified identical across all three engines before timing "
             "counts.")
    if smoke:
        # Print only: a reduced smoke sweep must not overwrite the stored
        # full-sweep results that the perf trajectory cites.
        print()
        print(format_table(rows, title=f"[{EXPERIMENT_ID}/smoke]"))
        print(notes)
    else:
        print_and_store(EXPERIMENT_ID, rows, notes=notes)
    if output:
        ensure_results_dir()
        _write_json(output, rows, smoke=smoke)
    speedups = [float(row["speedup"]) for row in rows]
    geomean = _geomean(speedups)
    worst = min(speedups)
    print(f"vector-engine speedup: geomean {geomean:.2f}x, "
          f"worst row {worst:.2f}x")
    if not smoke:
        if geomean < SPEEDUP_TARGET or worst < ROW_SPEEDUP_FLOOR:
            print(f"FAIL: target is geomean >= {SPEEDUP_TARGET}x with every "
                  f"row >= {ROW_SPEEDUP_FLOOR}x", file=sys.stderr)
            return 1
        print(f"OK: >= {SPEEDUP_TARGET}x (geomean) over the sync engine")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

"""Experiment POWER-BATCH -- virtual ``G^k`` solves and batched replicas.

Two perf claims of the virtual-power-view layer, measured together because
they share the workload:

* **Power solves stay vectorized and never materialize ``G^k``.**  The
  registered power programs (Luby MIS of ``G^k``, deterministic ruling set
  of ``G^k``) run as batched array rounds over the *base* CSR -- ``2k``
  sub-rounds per ``G^k`` step -- so the speedup of ``vector`` over ``sync``
  must hold at power scale.  The full sweep (``n = 10^5``) asserts a
  **>= 10x geometric-mean speedup** and, via :mod:`tracemalloc`, that the
  vector run's peak allocation stays **below the estimated bytes of a
  materialized ``G^k`` CSR** (:meth:`PowerView.estimated_power_csr_bytes`).
* **Replica batches beat sequential sweeps.**  ``simulate_replicas`` runs
  ``B = 8`` seeds as one ``(B, n)`` array program over the shared CSR
  (``uniform_factory=True``: the sweep's factories are node-uniform, so no
  per-node instances are built).  The baseline is the schedule the scenario
  sweep actually ran before the batch runner existed: one solo solve per
  seed on the **default sync engine**.  The sweep asserts a **>= B/2
  effective-replica speedup** (total sequential time over batch time,
  geometric mean across rows) after checking every batched replica
  bit-identical to its sequential reference -- the cross-engine equivalence
  suite is what makes that comparison apples-to-apples.

Both modes -- ``--smoke`` (CI) and the full sweep -- **fail loudly on
silent fallback**: every row run under ``engine="vector"`` must report
``engine_used == "vector"``, and the replica batch must not raise
:class:`BatchFallbackWarning` (warnings are promoted to errors).  A nonzero
exit here is the CI gate of the batched-replica PR.

Networks use ``bandwidth_bits=256``: phase-A floods carry (priority, id)
pairs that legitimately exceed the default 64-bit budget at these sizes.
"""

from __future__ import annotations

import json
import math
import os
import statistics
import sys
import time
import tracemalloc
import warnings
from typing import Callable, Hashable, Mapping

from harness import ensure_results_dir, print_and_store, time_rounds_per_sec
from repro.analysis.tables import format_table
from repro.congest import CongestNetwork, NodeAlgorithm, Simulator
from repro.congest.batch import BatchFallbackWarning, simulate_replicas
from repro.congest.simulator import SimulationResult
from repro.graphs import random_regular_graph
from repro.mis.power_sim import PowerDetRulingNode, PowerLubyMISNode
from repro.ruling.distributed import DetRulingSetNode

Node = Hashable

EXPERIMENT_ID = "power_batch"
K = 2
REPLICAS = 8
POWER_SPEEDUP_TARGET = 10.0        # geomean, vector vs sync, full sweep only
REPLICA_SPEEDUP_FLOOR = REPLICAS / 2  # geomean, batch vs sequential, any mode
BANDWIDTH_BITS = 256
SEED = 1


def _power_workloads(*, smoke: bool):
    if smoke:
        return [("regular(n=2000,d=8)", random_regular_graph(2000, 8, seed=SEED))]
    return [("regular(n=100000,d=10)",
             random_regular_graph(100_000, 10, seed=SEED))]


def _replica_workloads(*, smoke: bool):
    if smoke:
        return [("regular(n=2000,d=8)", random_regular_graph(2000, 8, seed=SEED))]
    return [("regular(n=20000,d=8)", random_regular_graph(20_000, 8, seed=SEED))]


def _power_algorithms() -> list[tuple[str, Callable[[Node], NodeAlgorithm]]]:
    return [
        (f"power-luby(k={K})", lambda node: PowerLubyMISNode(K)),
        (f"power-det-ruling(k={K})", lambda node: PowerDetRulingNode(K)),
    ]


def _replica_algorithms() -> list[tuple[str, Callable[[Node], NodeAlgorithm]]]:
    return [
        ("det-ruling", DetRulingSetNode),
        (f"power-det-ruling(k={K})", lambda node: PowerDetRulingNode(K)),
        (f"power-luby(k={K})", lambda node: PowerLubyMISNode(K)),
    ]


def _assert_identical(name: str, result: SimulationResult,
                      reference: SimulationResult) -> None:
    same = (result.outputs == reference.outputs
            and result.rounds == reference.rounds
            and result.total_messages == reference.total_messages
            and result.total_bits == reference.total_bits
            and result.edge_message_counts == reference.edge_message_counts)
    if not same:
        raise AssertionError(
            f"{name}: results diverge from the reference "
            f"(rounds {result.rounds} vs {reference.rounds}, messages "
            f"{result.total_messages} vs {reference.total_messages}) -- "
            f"bit-identity must hold before throughput means anything")


def _require_vectorized(name: str, result: SimulationResult,
                        fallbacks: list[str]) -> None:
    if result.engine_used != "vector":
        fallbacks.append(f"{name}: engine_used={result.engine_used!r}")


# ------------------------------------------------------- power-solve family
def _built_simulator(network, factory, engine: str) -> Simulator:
    """A simulator with its per-node RNG streams already bound.

    ``time_rounds_per_sec`` excludes the builder from the timed region so the
    number measures the round loop, not instance construction -- but the n
    RNG streams are bound lazily on first draw, which would otherwise charge
    ~n Mersenne seedings (the same cost on every engine) to whichever run
    draws first.  Forcing them here keeps the builder contract honest for
    both engines.
    """
    simulator = Simulator(network, factory, seed=SEED, engine=engine)
    for instance in simulator._instances:
        instance.rng
    return simulator


def experiment_power_vector(*, smoke: bool,
                            fallbacks: list[str]) -> list[dict[str, object]]:
    """Vector-vs-sync throughput of the power programs + the memory gate."""
    repeats = 1 if smoke else 3
    rows: list[dict[str, object]] = []
    for workload, graph in _power_workloads(smoke=smoke):
        network = CongestNetwork(graph, id_seed=SEED,
                                 bandwidth_bits=BANDWIDTH_BITS)
        snapshot = network.topology()  # shared, built outside the timing
        power_csr_bytes = snapshot.power_view(K).estimated_power_csr_bytes()
        for algo_name, factory in _power_algorithms():
            name = f"{workload}/{algo_name}"
            results: dict[str, SimulationResult] = {}
            samples: dict[str, list[float]] = {"sync": [], "vector": []}
            for engine in samples:  # untimed warmup (caches, allocator)
                Simulator(network, factory, seed=SEED, engine=engine).run(10_000)
            for _ in range(repeats):
                for engine in samples:
                    rate, results[engine] = time_rounds_per_sec(
                        lambda engine=engine: _built_simulator(
                            network, factory, engine),
                        max_rounds=10_000, repeats=1)
                    samples[engine].append(rate)
            rates = {engine: statistics.median(values)
                     for engine, values in samples.items()}
            _assert_identical(name, results["vector"], results["sync"])
            _require_vectorized(name, results["vector"], fallbacks)

            # Memory gate: the vector round loop must stay below what a
            # materialized G^k CSR would cost -- G^k is never built.  The
            # simulator (including the n per-node RNG streams, ~2.5 KB of
            # Mersenne state each -- dwarfing any CSR at this scale) is built
            # outside the traced region: the claim is about the solve, not
            # protocol state.
            simulator = _built_simulator(network, factory, "vector")
            tracemalloc.start()
            simulator.run(10_000)
            _, peak_bytes = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            if not smoke and peak_bytes >= power_csr_bytes:
                # Asserted at power scale (n >= 10^5); at smoke sizes both
                # numbers are a few hundred KiB and the comparison is noise.
                raise AssertionError(
                    f"{name}: vector solve peaked at {peak_bytes} bytes, not "
                    f"below the materialized-G^k estimate {power_csr_bytes}")

            speedup = (rates["vector"] / rates["sync"]
                       if rates["sync"] else float("inf"))
            rows.append({
                "workload": workload,
                "algorithm": algo_name,
                "rounds": results["sync"].rounds,
                "sync_rps": round(rates["sync"], 1),
                "vector_rps": round(rates["vector"], 1),
                "speedup": round(speedup, 2),
                "peak_mib": round(peak_bytes / 2 ** 20, 2),
                "gk_csr_mib": round(power_csr_bytes / 2 ** 20, 2),
            })
    return rows


# --------------------------------------------------------- replica family
def _replica_network(graph, seed: int) -> CongestNetwork:
    # Same bandwidth as the power family: (priority, id) floods legitimately
    # exceed the 64-bit default once n^3 priorities reach ~45 bits.
    return CongestNetwork(graph, id_seed=seed, bandwidth_bits=BANDWIDTH_BITS)


def _time_batch(graph, factory, seeds) -> tuple[float, list[SimulationResult]]:
    with warnings.catch_warnings():
        warnings.simplefilter("error", BatchFallbackWarning)
        start = time.perf_counter()
        results = simulate_replicas(
            None, factory, seeds, engine="vector", uniform_factory=True,
            network_factory=lambda seed: _replica_network(graph, seed))
        elapsed = time.perf_counter() - start
    return elapsed, results


def _time_sequential(graph, factory, seeds) -> tuple[float, list[SimulationResult]]:
    """The pre-batch sweep schedule: one solo solve per seed, default engine."""
    networks = [_replica_network(graph, seed) for seed in seeds]
    for network in networks:
        network.topology()  # snapshot construction is not the claim
    start = time.perf_counter()
    results = [Simulator(network, factory, seed=seed, engine="sync").run(10_000)
               for network, seed in zip(networks, seeds)]
    elapsed = time.perf_counter() - start
    return elapsed, results


def experiment_replica_batch(*, smoke: bool,
                             fallbacks: list[str]) -> list[dict[str, object]]:
    """Batched B-replica sweeps vs the sequential per-seed sweep schedule."""
    # Median of 3 in smoke mode too: the replica geomean is a hard CI gate,
    # and a single noisy repeat on a shared runner is not worth a red build.
    repeats = 3
    seeds = [SEED + 13 * index for index in range(REPLICAS)]
    rows: list[dict[str, object]] = []
    for workload, graph in _replica_workloads(smoke=smoke):
        for algo_name, factory in _replica_algorithms():
            name = f"{workload}/{algo_name}/B={REPLICAS}"
            _time_batch(graph, factory, seeds)  # untimed warmup
            batch_times, seq_times = [], []
            batch_results = seq_results = None
            for _ in range(repeats):
                elapsed, batch_results = _time_batch(graph, factory, seeds)
                batch_times.append(elapsed)
                elapsed, seq_results = _time_sequential(graph, factory, seeds)
                seq_times.append(elapsed)
            for seed, batched, solo in zip(seeds, batch_results, seq_results):
                _assert_identical(f"{name}/seed={seed}", batched, solo)
                _require_vectorized(f"{name}/seed={seed}", batched, fallbacks)
            batch_s = statistics.median(batch_times)
            seq_s = statistics.median(seq_times)
            speedup = seq_s / batch_s if batch_s else float("inf")
            rows.append({
                "workload": workload,
                "algorithm": algo_name,
                "replicas": REPLICAS,
                "seq_s": round(seq_s, 4),
                "batch_s": round(batch_s, 4),
                "speedup": round(speedup, 2),
            })
    return rows


def _geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _write_json(path: str, power_rows, replica_rows, *, smoke: bool,
                fallbacks: list[str]) -> None:
    document = {
        "experiment": EXPERIMENT_ID,
        "smoke": smoke,
        "k": K,
        "replicas": REPLICAS,
        "bandwidth_bits": BANDWIDTH_BITS,
        "power_rows": power_rows,
        "replica_rows": replica_rows,
        "fallbacks": fallbacks,
        "summary": {
            "power_geomean_speedup": round(_geomean(
                [float(row["speedup"]) for row in power_rows]), 3),
            "replica_geomean_speedup": round(_geomean(
                [float(row["speedup"]) for row in replica_rows]), 3),
            "power_target_geomean": POWER_SPEEDUP_TARGET,
            "replica_target_geomean": REPLICA_SPEEDUP_FLOOR,
        },
    }
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv or os.environ.get("SMOKE") == "1"
    output = None
    if "--output" in argv:
        output = argv[argv.index("--output") + 1]
    fallbacks: list[str] = []
    power_rows = experiment_power_vector(smoke=smoke, fallbacks=fallbacks)
    replica_rows = experiment_replica_batch(smoke=smoke, fallbacks=fallbacks)

    notes = (f"power rows: rounds/sec, median of repeats; speedup = vector "
             f"vs sync; peak_mib = tracemalloc peak of the vector solve, "
             f"asserted < gk_csr_mib (estimated materialized-G^k CSR). "
             f"replica rows: wall time for B={REPLICAS} seeds; speedup = "
             f"sequential per-seed solves on the default sync engine (the "
             f"pre-batch sweep schedule) vs one batched vector run, "
             f"bit-identity checked per replica.")
    if smoke:
        # Print only: the reduced smoke sweep must not overwrite the stored
        # full-sweep results that the perf trajectory cites.
        print()
        print(format_table(power_rows, title=f"[{EXPERIMENT_ID}/power/smoke]"))
        print(format_table(replica_rows,
                           title=f"[{EXPERIMENT_ID}/replicas/smoke]"))
        print(notes)
    else:
        print_and_store(f"{EXPERIMENT_ID}_power", power_rows, notes=notes)
        print_and_store(f"{EXPERIMENT_ID}_replicas", replica_rows)
    if output:
        ensure_results_dir()
        _write_json(output, power_rows, replica_rows, smoke=smoke,
                    fallbacks=fallbacks)

    status = 0
    if fallbacks:
        # The CI gate: a registered vector program silently degrading to the
        # scalar path invalidates every number above.
        print("FAIL: silent sync fallback on a registered vector program:",
              file=sys.stderr)
        for line in fallbacks:
            print(f"  {line}", file=sys.stderr)
        status = 1
    power_geomean = _geomean([float(row["speedup"]) for row in power_rows])
    replica_geomean = _geomean([float(row["speedup"]) for row in replica_rows])
    print(f"power-solve speedup: geomean {power_geomean:.2f}x "
          f"(target {POWER_SPEEDUP_TARGET}x, full sweep only)")
    print(f"replica-batch speedup: geomean {replica_geomean:.2f}x "
          f"(target {REPLICA_SPEEDUP_FLOOR}x)")
    if not smoke and power_geomean < POWER_SPEEDUP_TARGET:
        print(f"FAIL: power-solve target is geomean >= "
              f"{POWER_SPEEDUP_TARGET}x over the sync engine", file=sys.stderr)
        status = 1
    if replica_geomean < REPLICA_SPEEDUP_FLOOR:
        print(f"FAIL: replica-batch target is geomean >= "
              f"{REPLICA_SPEEDUP_FLOOR}x over sequential runs", file=sys.stderr)
        status = 1
    if status == 0:
        print("OK: vectorized power solves and batched replicas on target")
    return status


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

"""Experiment SERVICE-THROUGHPUT -- warm-cache serving vs. direct solving.

A closed-loop load generator for the :mod:`repro.service` stack: client
threads issue ``POST /solve`` requests drawn from a zipf-skewed mix of
scenario-registry cells (a few hot requests dominate, a long tail recurs
occasionally -- the canonical serving distribution), against a server whose
content-addressed cache is warm.  The baseline is the same request mix
dispatched as direct, uncached ``repro.solve`` calls -- what every consumer
of the library paid before the service layer existed.

Two measurements per mix entry:

* ``direct_rps`` -- sequential certified ``repro.solve`` calls (graphs
  prebuilt; fingerprints memoized -- the baseline gets every in-process
  advantage except the cache);
* ``served_rps`` -- closed-loop HTTP requests against the warm cache with
  ``--concurrency`` client threads.

The acceptance gates are a **geometric-mean speedup >= 5x** across the mix
(every entry also reported individually), plus a mixed zipf phase whose
aggregate throughput and ``/stats`` hit-rate are recorded, plus an
**observability-overhead gate**: the same warm-cache zipf phase served by
a metrics-enabled server must stay within 5% of an identical
metrics-disabled server (best of three alternating trials each), plus a
**sustained-load gate**: a working set 10x the in-process LRU -- forcing
steady-state reads off the sharded on-disk tier under a hard size budget
-- must hold >= 5x direct throughput while the on-disk footprint stays
within the budget (no unbounded growth).
``--smoke`` shrinks the mix and the iteration counts but keeps the gates
-- CI runs it on every push.  Results land in ``service_throughput.json``
under the results directory (`REPRO_RESULTS_DIR` honoured).

``--server URL`` drives an externally-booted ``repro serve`` endpoint
(the CI workflow does this); without it the benchmark boots an in-process
server with inline workers on an ephemeral port.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import threading
import time
from typing import Any, Sequence

from harness import ensure_results_dir
from repro.analysis.tables import format_table
from repro.api import REGISTRY, solve
from repro.scenarios.registry import DEFAULT_REGISTRY
from repro.service import ServiceClient, ServiceServer, SolveCache, SolveScheduler

EXPERIMENT_ID = "service_throughput"
SPEEDUP_TARGET = 5.0  # geometric mean across the request mix
#: Serving with the observability layer on (metrics registry + latency
#: histograms + sampled families) may cost at most this fraction of
#: warm-cache throughput versus an identical metrics-disabled server.
OBSERVABILITY_OVERHEAD_LIMIT = 0.05

#: (workload cell, algorithm, config) -- the serveable request vocabulary.
#: Entries are chosen so a solve costs at least a few milliseconds: a
#: cache can only beat recomputation by 5x when the computation dwarfs the
#: request/response plumbing (sub-millisecond toy cells measure the HTTP
#: stack, not the cache).
FULL_MIX: list[tuple[str, str, dict[str, Any]]] = [
    ("regular-n128-d6", "det-power-ruling", {"k": 2}),
    ("regular-n128-d6", "sparsify", {"k": 2}),
    ("regular-n96-d8", "det-power-ruling", {"k": 2}),
    ("er-n48", "sparsify", {"k": 2}),
    ("regular-n64-d4", "sparsify", {"k": 2}),
    ("grid-8x8", "sparsify", {"k": 2}),
    ("er-n48", "det-power-ruling", {"k": 2}),
    ("regular-n64-d4", "det-power-ruling", {"k": 2}),
]

SMOKE_MIX: list[tuple[str, str, dict[str, Any]]] = [
    ("regular-n64-d4", "det-power-ruling", {"k": 2}),
    ("er-n48", "det-power-ruling", {"k": 2}),
    ("regular-n64-d4", "sparsify", {"k": 2}),
    ("grid-8x8", "sparsify", {"k": 2}),
]


def zipf_weights(count: int, s: float) -> list[float]:
    """Normalised zipf(s) weights over ranks 1..count."""
    raw = [1.0 / (rank ** s) for rank in range(1, count + 1)]
    total = sum(raw)
    return [weight / total for weight in raw]


def zipf_sequence(count: int, length: int, *, s: float, seed: int) -> list[int]:
    """A deterministic zipf-skewed index sequence (shared by both sides)."""
    import random

    rng = random.Random(seed)
    weights = zipf_weights(count, s)
    return rng.choices(range(count), weights=weights, k=length)


# ------------------------------------------------------------------ baseline
def measure_direct(mix: Sequence[tuple[str, str, dict[str, Any]]], *,
                   iters: int) -> list[float]:
    """Sequential certified ``repro.solve`` throughput per mix entry."""
    graphs = {workload: DEFAULT_REGISTRY.build_cell(workload, seed=0)
              for workload, _, _ in mix}
    rates: list[float] = []
    for workload, algorithm, config in mix:
        graph = graphs[workload]
        solve(graph, algorithm, **config)  # untimed warmup (allocator, memo)
        start = time.perf_counter()
        for _ in range(iters):
            solve(graph, algorithm, **config)
        elapsed = time.perf_counter() - start
        rates.append(iters / elapsed if elapsed > 0 else float("inf"))
    return rates


# -------------------------------------------------------------------- served
def _closed_loop(client: ServiceClient,
                 requests: Sequence[tuple[str, str, dict[str, Any]]], *,
                 concurrency: int) -> tuple[float, list[dict[str, Any]]]:
    """Issue ``requests`` from ``concurrency`` closed-loop client threads.

    Returns ``(elapsed_s, rows)``.  The request list is sliced round-robin
    across threads; each thread issues its slice back-to-back (closed loop:
    a new request only after the previous response).
    """
    rows: list[list[dict[str, Any]]] = [[] for _ in range(concurrency)]
    errors: list[Exception] = []

    def worker(worker_index: int) -> None:
        try:
            for item in requests[worker_index::concurrency]:
                workload, algorithm, config = item[0], item[1], item[2]
                seed_value = item[3] if len(item) > 3 else None
                row = client.solve(workload, algorithm, config=config,
                                   seed=seed_value)
                rows[worker_index].append(row)
        except Exception as error:  # noqa: BLE001 - surfaced after join
            errors.append(error)

    threads = [threading.Thread(target=worker, args=(index,), daemon=True)
               for index in range(concurrency)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed, [row for slice_rows in rows for row in slice_rows]


def measure_served(client: ServiceClient,
                   mix: Sequence[tuple[str, str, dict[str, Any]]], *,
                   iters: int, concurrency: int, zipf_s: float,
                   mixed_requests: int, seed: int) -> dict[str, Any]:
    """Warm the cache, then measure per-entry and mixed-zipf serving rates."""
    # Warm phase: every distinct request computed exactly once.
    for workload, algorithm, config in mix:
        client.solve(workload, algorithm, config=config)

    per_entry_rps: list[float] = []
    for entry in mix:
        batch = [entry] * iters
        elapsed, rows = _closed_loop(client, batch, concurrency=concurrency)
        assert all(row["status"] in ("hit", "coalesced") for row in rows), \
            "warm-phase requests must be served from cache"
        per_entry_rps.append(len(rows) / elapsed if elapsed > 0 else float("inf"))

    sequence = zipf_sequence(len(mix), mixed_requests, s=zipf_s, seed=seed)
    mixed = [mix[index] for index in sequence]
    elapsed, rows = _closed_loop(client, mixed, concurrency=concurrency)
    mixed_rps = len(rows) / elapsed if elapsed > 0 else float("inf")
    return {
        "per_entry_rps": per_entry_rps,
        "mixed_rps": mixed_rps,
        "mixed_requests": len(rows),
        "stats": client.stats(),
    }


# ------------------------------------------------------ observability gate
def measure_observability_overhead(
        mix: Sequence[tuple[str, str, dict[str, Any]]], *,
        requests_count: int, concurrency: int, zipf_s: float, seed: int,
        trials: int = 3) -> dict[str, Any]:
    """Warm-cache serving with metrics on vs. an identical metrics-off
    server.

    Both servers are in-process (inline workers, memory-only cache) and
    serve the *same* zipf request sequence; each side takes the best of
    ``trials`` alternating runs, which cancels most scheduler-noise --
    the quantity under test is the per-request metrics cost (histogram
    observe + counter bumps + the scrape-time families' existence), not
    the machine's mood.  ``/metrics`` is scraped once per trial on the
    metrics side, as a live monitoring stack would.
    """
    sequence = zipf_sequence(len(mix), requests_count, s=zipf_s, seed=seed)
    requests = [mix[index] for index in sequence]

    def boot(metrics_enabled: bool) -> ServiceServer:
        kwargs: dict[str, Any] = {} if metrics_enabled else {"metrics": None}
        scheduler = SolveScheduler(cache=SolveCache(""), inline=True,
                                   **kwargs)
        server = ServiceServer(port=0, scheduler=scheduler)
        server.start()
        return server

    servers = {"on": boot(True), "off": boot(False)}
    best: dict[str, float] = {"on": 0.0, "off": 0.0}
    try:
        clients = {name: ServiceClient(server.url)
                   for name, server in servers.items()}
        for client in clients.values():
            client.wait_healthy()
            for workload, algorithm, config in mix:  # warm the cache
                client.solve(workload, algorithm, config=config)
        for trial in range(trials):
            # Alternate which side runs first so drift hits both equally.
            order = ("on", "off") if trial % 2 == 0 else ("off", "on")
            for name in order:
                elapsed, rows = _closed_loop(clients[name], requests,
                                             concurrency=concurrency)
                rps = len(rows) / elapsed if elapsed > 0 else float("inf")
                best[name] = max(best[name], rps)
            clients["on"].metrics()  # the scrape a monitoring stack issues
    finally:
        for server in servers.values():
            server.stop()

    overhead = max(0.0, 1.0 - best["on"] / best["off"]) \
        if best["off"] > 0 else 0.0
    return {
        "metrics_on_rps": round(best["on"], 1),
        "metrics_off_rps": round(best["off"], 1),
        "overhead_fraction": round(overhead, 4),
        "limit_fraction": OBSERVABILITY_OVERHEAD_LIMIT,
        "requests_per_trial": len(requests),
        "trials": trials,
        "ok": overhead <= OBSERVABILITY_OVERHEAD_LIMIT,
    }


# ------------------------------------------------------- sustained-load gate
#: The sustained phase serves a working set 10x the in-process LRU, so most
#: hits come off the sharded persistent tier; that tier must still beat
#: direct recomputation by this factor.
SUSTAINED_SPEEDUP_TARGET = 5.0
#: Working-set multiple of the in-memory LRU capacity.
SUSTAINED_WORKING_SET_FACTOR = 10


def measure_sustained_load(*, smoke: bool, concurrency: int, zipf_s: float,
                           seed: int, trials: int = 3) -> dict[str, Any]:
    """Disk-tier serving under a working set 10x the in-process LRU.

    Boots an in-process server whose cache has a deliberately tiny memory
    tier and a sharded on-disk store under a hard size budget.  The working
    set is ``SUSTAINED_WORKING_SET_FACTOR`` times the LRU capacity --
    distinct seeds over one registry cell, so every request is a distinct
    cache key -- forcing the steady state to serve mostly from disk.  After
    warming every key once, a zipf-skewed sustained phase runs and the gate
    checks that (a) throughput holds ``>= SUSTAINED_SPEEDUP_TARGET x`` the
    direct uncached solve rate for the same cell and (b) the on-disk
    footprint stays within the configured budget (no unbounded growth).
    Both sides take the best of ``trials`` runs (same noise-cancelling
    rationale as the observability gate).
    """
    import shutil
    import tempfile

    workload, algorithm, config = ("regular-n64-d4", "det-power-ruling",
                                   {"k": 2})
    memory_entries = 8 if smoke else 16
    working_set = memory_entries * SUSTAINED_WORKING_SET_FACTOR
    sustained_requests = (3 if smoke else 6) * working_set
    shards = 4
    max_segment_bytes = 32 * 1024
    budget_bytes = (512 if smoke else 1024) * 1024

    # Direct baseline: sequential certified solves of the same cell.
    graph = DEFAULT_REGISTRY.build_cell(workload, seed=0)
    solve(graph, algorithm, **config)  # untimed warmup
    direct_iters = 3 if smoke else 10
    direct_rps = 0.0
    for _ in range(trials):
        start = time.perf_counter()
        for _ in range(direct_iters):
            solve(graph, algorithm, **config)
        elapsed = time.perf_counter() - start
        rate = direct_iters / elapsed if elapsed > 0 else float("inf")
        direct_rps = max(direct_rps, rate)

    store_dir = tempfile.mkdtemp(prefix="repro-sustained-")
    try:
        cache = SolveCache(store_dir, max_memory_entries=memory_entries,
                           shards=shards, size_budget_bytes=budget_bytes,
                           max_segment_bytes=max_segment_bytes)
        scheduler = SolveScheduler(cache=cache, inline=True)
        with ServiceServer(port=0, scheduler=scheduler) as server:
            client = ServiceClient(server.url)
            client.wait_healthy()
            # Warm phase: every key of the working set computed exactly once.
            for seed_value in range(working_set):
                client.solve(workload, algorithm, config=config,
                             seed=seed_value)
            sequence = zipf_sequence(working_set, sustained_requests,
                                     s=zipf_s, seed=seed)
            requests = [(workload, algorithm, config, seed_value)
                        for seed_value in sequence]
            sustained_rps = 0.0
            hit_fraction = 0.0
            for _ in range(trials):
                elapsed, rows = _closed_loop(client, requests,
                                             concurrency=concurrency)
                rate = len(rows) / elapsed if elapsed > 0 else float("inf")
                served = sum(1 for row in rows
                             if row["status"] in ("hit", "coalesced"))
                sustained_rps = max(sustained_rps, rate)
                hit_fraction = max(hit_fraction,
                                   served / len(rows) if rows else 0.0)
        occupancy = cache.shard_occupancy()
        indexed_bytes = sum(entry.get("disk_bytes", 0) for entry in occupancy)
        walked_bytes = 0
        for dirpath, _, filenames in os.walk(store_dir):
            for filename in filenames:
                walked_bytes += os.path.getsize(os.path.join(dirpath,
                                                             filename))
        counters = cache.store_counters() or {}
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    speedup = sustained_rps / direct_rps if direct_rps > 0 else float("inf")
    # The budget is enforced per-shard after every put; allow one active
    # segment of slack per shard for rows appended since the last sweep.
    disk_limit = budget_bytes + shards * max_segment_bytes
    ok_speedup = speedup >= SUSTAINED_SPEEDUP_TARGET
    ok_disk = walked_bytes <= disk_limit and indexed_bytes <= disk_limit
    return {
        "workload": workload,
        "algorithm": algorithm,
        "memory_entries": memory_entries,
        "working_set": working_set,
        "requests": sustained_requests,
        "budget_bytes": budget_bytes,
        "trials": trials,
        "disk_bytes": walked_bytes,
        "indexed_bytes": indexed_bytes,
        "disk_limit_bytes": disk_limit,
        "direct_rps": round(direct_rps, 1),
        "sustained_rps": round(sustained_rps, 1),
        "speedup": round(speedup, 2),
        "target": SUSTAINED_SPEEDUP_TARGET,
        "hit_fraction": round(hit_fraction, 4),
        "evictions_ttl": counters.get("evictions_ttl", 0),
        "evictions_lru": counters.get("evictions_lru", 0),
        "compacted_segments": counters.get("compacted_segments", 0),
        "wrong_key_reads": counters.get("wrong_key_reads", 0),
        "ok_speedup": ok_speedup,
        "ok_disk": ok_disk,
        "ok": ok_speedup and ok_disk,
    }


# ---------------------------------------------------------------- experiment
def experiment_service_throughput(*, smoke: bool = False, concurrency: int = 8,
                                  zipf_s: float = 1.1, seed: int = 7,
                                  server_url: str | None = None,
                                  ) -> dict[str, Any]:
    mix = SMOKE_MIX if smoke else FULL_MIX
    direct_iters = 3 if smoke else 10
    served_iters = 40 if smoke else 200
    mixed_requests = 120 if smoke else 1000

    direct_rps = measure_direct(mix, iters=direct_iters)

    if server_url:
        client = ServiceClient(server_url)
        client.wait_healthy()
        served = measure_served(client, mix, iters=served_iters,
                                concurrency=concurrency, zipf_s=zipf_s,
                                mixed_requests=mixed_requests, seed=seed)
    else:
        scheduler = SolveScheduler(cache=SolveCache(""), inline=True)
        with ServiceServer(port=0, scheduler=scheduler) as server:
            client = ServiceClient(server.url)
            client.wait_healthy()
            served = measure_served(client, mix, iters=served_iters,
                                    concurrency=concurrency, zipf_s=zipf_s,
                                    mixed_requests=mixed_requests, seed=seed)

    rows = []
    speedups = []
    for (workload, algorithm, config), direct, warm in zip(
            mix, direct_rps, served["per_entry_rps"]):
        speedup = warm / direct if direct > 0 else float("inf")
        speedups.append(speedup)
        rows.append({
            "workload": workload,
            "algorithm": algorithm,
            "config": ",".join(f"{k}={v}" for k, v in sorted(config.items())),
            "direct_rps": round(direct, 1),
            "served_rps": round(warm, 1),
            "speedup": round(speedup, 2),
        })
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    stats = served["stats"]

    # The observability gate always runs in-process (both sides must be
    # identically configured apart from metrics, which an external
    # ``--server`` endpoint cannot guarantee).
    observability = measure_observability_overhead(
        mix, requests_count=mixed_requests, concurrency=concurrency,
        zipf_s=zipf_s, seed=seed)
    # The sustained-load gate also always runs in-process: it must own the
    # cache object to configure a tiny LRU + budgeted disk tier and to read
    # shard occupancy afterwards.
    sustained = measure_sustained_load(smoke=smoke, concurrency=concurrency,
                                       zipf_s=zipf_s, seed=seed)
    return {
        "smoke": smoke,
        "concurrency": concurrency,
        "zipf_s": zipf_s,
        "rows": rows,
        "geomean_speedup": round(geomean, 2),
        "mixed_rps": round(served["mixed_rps"], 1),
        "mixed_requests": served["mixed_requests"],
        "hit_rate": stats.get("hit_rate"),
        "coalesced": stats.get("coalesced"),
        "latency_ms": stats.get("latency_ms"),
        "target": SPEEDUP_TARGET,
        "observability": observability,
        "sustained": sustained,
    }


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Load-generate the repro.service stack and gate the "
                    "warm-cache speedup.")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced CI mix (the >=5x gate still applies)")
    parser.add_argument("--concurrency", type=int, default=8,
                        help="closed-loop client threads (default: 8)")
    parser.add_argument("--zipf-s", type=float, default=1.1,
                        help="zipf skew of the mixed phase (default: 1.1)")
    parser.add_argument("--seed", type=int, default=7,
                        help="seed of the zipf request sequence")
    parser.add_argument("--server", default=None, metavar="URL",
                        help="drive an external repro serve endpoint "
                             "(default: boot an in-process server)")
    parser.add_argument("--output", default=None,
                        help="write the result JSON here (default: "
                             "<results>/service_throughput.json)")
    args = parser.parse_args(argv)
    if os.environ.get("SMOKE") == "1":
        args.smoke = True

    result = experiment_service_throughput(
        smoke=args.smoke, concurrency=args.concurrency, zipf_s=args.zipf_s,
        seed=args.seed, server_url=args.server)

    title = f"[{EXPERIMENT_ID}{'/smoke' if args.smoke else ''}]"
    print()
    print(format_table(result["rows"], title=title))
    print(f"mixed zipf(s={result['zipf_s']}) phase: "
          f"{result['mixed_rps']} req/s over {result['mixed_requests']} "
          f"requests at concurrency {result['concurrency']}; "
          f"server hit-rate {result['hit_rate']}, "
          f"coalesced {result['coalesced']}")

    output = args.output
    if output is None:
        output = os.path.join(ensure_results_dir(),
                              f"{EXPERIMENT_ID}.json")
    else:
        parent = os.path.dirname(output)
        if parent:
            os.makedirs(parent, exist_ok=True)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
    print(f"results written to {output}")

    geomean = result["geomean_speedup"]
    print(f"warm-cache speedup: geomean {geomean:.2f}x over direct "
          f"uncached repro.solve")
    observability = result["observability"]
    print(f"observability overhead: "
          f"{observability['overhead_fraction'] * 100:.2f}% "
          f"(metrics on {observability['metrics_on_rps']} req/s vs off "
          f"{observability['metrics_off_rps']} req/s, best of "
          f"{observability['trials']} trials; limit "
          f"{observability['limit_fraction'] * 100:.0f}%)")
    sustained = result["sustained"]
    print(f"sustained load (working set {sustained['working_set']} keys = "
          f"{SUSTAINED_WORKING_SET_FACTOR}x LRU of "
          f"{sustained['memory_entries']}): "
          f"{sustained['sustained_rps']} req/s = "
          f"{sustained['speedup']:.2f}x direct "
          f"({sustained['direct_rps']} req/s); hit fraction "
          f"{sustained['hit_fraction']:.3f}; disk "
          f"{sustained['disk_bytes']} B of "
          f"{sustained['disk_limit_bytes']} B limit "
          f"(budget {sustained['budget_bytes']} B, "
          f"lru evictions {sustained['evictions_lru']}, "
          f"compactions {sustained['compacted_segments']})")
    failed = False
    if geomean < SPEEDUP_TARGET:
        print(f"FAIL: target is geomean >= {SPEEDUP_TARGET}x", file=sys.stderr)
        failed = True
    if not observability["ok"]:
        print(f"FAIL: observability overhead "
              f"{observability['overhead_fraction'] * 100:.2f}% exceeds "
              f"{OBSERVABILITY_OVERHEAD_LIMIT * 100:.0f}%", file=sys.stderr)
        failed = True
    if not sustained["ok_speedup"]:
        print(f"FAIL: sustained disk-tier speedup {sustained['speedup']:.2f}x "
              f"below {SUSTAINED_SPEEDUP_TARGET}x", file=sys.stderr)
        failed = True
    if not sustained["ok_disk"]:
        print(f"FAIL: on-disk footprint {sustained['disk_bytes']} B exceeds "
              f"the {sustained['disk_limit_bytes']} B budget+slack limit",
              file=sys.stderr)
        failed = True
    if failed:
        return 1
    print(f"OK: >= {SPEEDUP_TARGET}x (geomean) over direct solving, "
          f"<= {OBSERVABILITY_OVERHEAD_LIMIT * 100:.0f}% observability "
          f"overhead, and >= {SUSTAINED_SPEEDUP_TARGET}x sustained "
          f"disk-tier speedup within the size budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

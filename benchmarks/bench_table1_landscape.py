"""Experiment T1 -- the Table-1 landscape.

The paper's Table 1 lists the round complexities of the known and the new
algorithms for MIS and ruling sets on ``G`` and ``G^k``.  This benchmark runs
every algorithm implemented in the library on a common workload sweep and
reports measured CONGEST rounds next to the paper's formula, so the relative
ordering of the rows ("who wins") can be compared against the table.

Every row is dispatched through the :mod:`repro.api` solver registry (the
``validity`` column is the attached certificate's verdict).

Reproduced rows:

====================================  =====================================
paper row                             registered algorithm
====================================  =====================================
[Lub86] MIS of G^k, O(k log n)        ``luby-power``
New MIS of G^k (Theorem 1.2)          ``power-mis``
[SEW13/KMW18] (k+1, kc), O(kcn^{1/c}) ``id-ruling``
[AGLP89] (k+1, k log n), O(k log n)   ``aglp`` (B=2)
New (k+1, k^2) det. (Theorem 1.1)     ``det-power-ruling``
[Gha19]-style (k+1, k*beta) rand.     ``power-ruling``  (Corollary 1.3)
[BEPS16/Gha16]-style MIS of G         ``shattering-mis``  (Theorem 1.4)
====================================  =====================================
"""

from __future__ import annotations

import sys

import pytest

from harness import certify_report, delta_of, print_and_store, run_solver, theory_rounds
from repro.scenarios.registry import DEFAULT_REGISTRY

EXPERIMENT_ID = "T1-table1-landscape"
#: The Table-1 sweep is owned by the scenario registry (cells tagged
#: ``table1``); SIZES mirrors it for parameterised re-runs at a subset.
SIZES = tuple(sorted(cell.params_dict["n"]
                     for cell in DEFAULT_REGISTRY.cells(tags={"table1"})))
K = 2

#: (paper row label, registered algorithm, solve config, theory formula key).
TABLE1_ROWS = (
    ("Luby MIS of G^k [Lub86]", "luby-power", {"k": K}, "luby-Gk"),
    ("New MIS of G^k (Thm 1.2)", "power-mis", {"k": K}, "new-mis-Gk"),
    (f"(k+1, ck) det. [SEW13/KMW18] c={K}", "id-ruling", {"k": K, "c": K},
     "aglp-baseline"),
    ("(k+1, k log n) det. [AGLP89]", "aglp", {"k": K, "base": 2}, "aglp-logn"),
    ("New (k+1, k^2) det. (Thm 1.1)", "det-power-ruling", {"k": K},
     "new-det-ruling"),
    ("New (k+1, k*beta) rand. (Cor 1.3, beta=3)", "power-ruling",
     {"k": K, "beta": 3}, "new-ruling-Gk"),
    ("MIS of G via shattering (Thm 1.4)", "shattering-mis", {}, "ghaffari-mis-G"),
)


def _table1_workloads(sizes, *, seed: int) -> list[tuple[str, object]]:
    """The registry's Table-1 cells restricted to ``sizes``, built at ``seed``."""
    cells = {cell.params_dict["n"]: cell
             for cell in DEFAULT_REGISTRY.cells(tags={"table1"})}
    return [(cells[n].name, DEFAULT_REGISTRY.build_cell(cells[n], seed=seed))
            for n in sizes]


def experiment_rows(sizes=SIZES, k: int = K, seed: int = 1) -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    for graph_name, graph in _table1_workloads(sizes, seed=seed):
        n = graph.number_of_nodes()
        delta = delta_of(graph)
        for label, algorithm, config, formula in TABLE1_ROWS:
            config = {**config, "k": k} if "k" in config else dict(config)
            report = run_solver(graph, algorithm, seed=seed, **config)
            row_k = config.get("k", 1)
            rows.append({
                "algorithm": label,
                "graph": graph_name,
                "n": n,
                "Delta": delta,
                "k": row_k,
                "rounds": report.rounds,
                "theory~": round(theory_rounds(formula, n=n, delta=delta,
                                               k=row_k,
                                               beta=config.get("beta", 2),
                                               c=config.get("c", 2)), 1),
                "size": len(report.output),
                "valid": report.verified,
            })
    return rows


# --------------------------------------------------------------------------
# pytest-benchmark entry points (one representative configuration each).
# --------------------------------------------------------------------------
@pytest.fixture(scope="module")
def workload():
    return DEFAULT_REGISTRY.build_cell("regular-n128-d6", seed=1)


@pytest.mark.parametrize("algorithm,config", [
    ("luby-power", {"k": K}),
    ("power-mis", {"k": K}),
    ("det-power-ruling", {"k": K}),
    ("id-ruling", {"k": K, "c": K}),
    ("power-ruling", {"k": K, "beta": 3}),
    ("shattering-mis", {}),
])
def test_table1_algorithm_runtime(benchmark, workload, algorithm, config):
    # verify=False inside the timed lambda: the benchmark measures the
    # algorithm, not the certifier; the output is certified once afterwards.
    report = benchmark(lambda: run_solver(workload, algorithm, seed=1,
                                          verify=False, **config))
    certificate = certify_report(workload, report)
    assert certificate.ok, certificate.summary()


def test_table1_round_ordering(workload):
    """The qualitative content of Table 1 for k >= 2 at moderate n:
    the new randomized MIS beats Luby once Delta^k >> log n, and the new
    deterministic ruling set beats the n^{1/c} baseline asymptotically
    (checked at larger n in bench_det_ruling_vs_baseline)."""
    rows = experiment_rows(sizes=(256,), k=2, seed=3)
    by_algorithm = {row["algorithm"]: row for row in rows}
    assert all(row["valid"] for row in rows)
    luby_rounds = by_algorithm["Luby MIS of G^k [Lub86]"]["rounds"]
    new_rounds = by_algorithm["New MIS of G^k (Thm 1.2)"]["rounds"]
    # Shape check: the shattering-based algorithm's rounds are dominated by
    # O(k^2 log Delta loglog n) which is within a small factor of Luby here
    # and wins as Delta grows (bench_power_mis sweeps Delta).
    assert new_rounds <= 12 * luby_rounds


def main() -> None:
    rows = experiment_rows()
    print_and_store(EXPERIMENT_ID, rows,
                    notes="theory~ column: the paper's Table-1 formula with all constants = 1. "
                          "All rows dispatched through repro.api (certified).")


if __name__ == "__main__":
    sys.exit(main())

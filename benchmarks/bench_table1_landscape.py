"""Experiment T1 -- the Table-1 landscape.

The paper's Table 1 lists the round complexities of the known and the new
algorithms for MIS and ruling sets on ``G`` and ``G^k``.  This benchmark runs
every algorithm implemented in the library on a common workload sweep and
reports measured CONGEST rounds next to the paper's formula, so the relative
ordering of the rows ("who wins") can be compared against the table.

Reproduced rows (all verified before timing):

====================================  =====================================
paper row                             implementation
====================================  =====================================
[Lub86] MIS of G^k, O(k log n)        ``repro.mis.luby.luby_mis_power``
New MIS of G^k (Theorem 1.2)          ``repro.mis.power_mis.power_graph_mis``
[SEW13/KMW18] (k+1, kc), O(kcn^{1/c}) ``repro.ruling.aglp.id_based_ruling_set``
[AGLP89] (k+1, k log n), O(k log n)   ``repro.ruling.aglp.aglp_ruling_set`` (B=2)
New (k+1, k^2) det. (Theorem 1.1)     ``repro.ruling.det_ruling_set``
[Gha19]-style (k+1, k*beta) rand.     ``repro.mis.power_ruling``  (Corollary 1.3)
[BEPS16/Gha16]-style MIS of G         ``repro.mis.shattering``  (Theorem 1.4)
====================================  =====================================
"""

from __future__ import annotations

import random
import sys

import pytest

from harness import delta_of, print_and_store, theory_rounds
from repro.mis import luby_mis_power, power_graph_mis, power_graph_ruling_set, shattering_mis
from repro.ruling import (
    aglp_ruling_set,
    deterministic_power_ruling_set,
    id_based_ruling_set,
    is_mis_of_power_graph,
    verify_ruling_set,
)
from repro.scenarios.registry import DEFAULT_REGISTRY

EXPERIMENT_ID = "T1-table1-landscape"
#: The Table-1 sweep is owned by the scenario registry (cells tagged
#: ``table1``); SIZES mirrors it for parameterised re-runs at a subset.
SIZES = tuple(sorted(cell.params_dict["n"]
                     for cell in DEFAULT_REGISTRY.cells(tags={"table1"})))
K = 2


def _table1_workloads(sizes, *, seed: int) -> list[tuple[str, object]]:
    """The registry's Table-1 cells restricted to ``sizes``, built at ``seed``."""
    cells = {cell.params_dict["n"]: cell
             for cell in DEFAULT_REGISTRY.cells(tags={"table1"})}
    return [(cells[n].name, DEFAULT_REGISTRY.build_cell(cells[n], seed=seed))
            for n in sizes]


def _row(algorithm: str, graph_name: str, graph, k: int, rounds: int, valid: bool,
         size: int, theory: float) -> dict[str, object]:
    return {
        "algorithm": algorithm,
        "graph": graph_name,
        "n": graph.number_of_nodes(),
        "Delta": delta_of(graph),
        "k": k,
        "rounds": rounds,
        "theory~": round(theory, 1),
        "size": size,
        "valid": valid,
    }


def experiment_rows(sizes=SIZES, k: int = K, seed: int = 1) -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    for graph_name, graph in _table1_workloads(sizes, seed=seed):
        n = graph.number_of_nodes()
        delta = delta_of(graph)
        rng = random.Random(seed)

        luby = luby_mis_power(graph, k, rng=rng)
        rows.append(_row("Luby MIS of G^k [Lub86]", graph_name, graph, k, luby.rounds,
                         is_mis_of_power_graph(graph, luby.mis, k), len(luby.mis),
                         theory_rounds("luby-Gk", n=n, delta=delta, k=k)))

        new_mis = power_graph_mis(graph, k, rng=rng)
        rows.append(_row("New MIS of G^k (Thm 1.2)", graph_name, graph, k, new_mis.rounds,
                         is_mis_of_power_graph(graph, new_mis.mis, k), len(new_mis.mis),
                         theory_rounds("new-mis-Gk", n=n, delta=delta, k=k)))

        baseline = id_based_ruling_set(graph, k, c=k)
        report = verify_ruling_set(graph, baseline.ruling_set, k + 1, baseline.domination_bound)
        rows.append(_row(f"(k+1, ck) det. [SEW13/KMW18] c={k}", graph_name, graph, k,
                         baseline.rounds, report.ok, report.size,
                         theory_rounds("aglp-baseline", n=n, delta=delta, k=k, c=k)))

        aglp = aglp_ruling_set(graph, k, {node: index + 1 for index, node in
                                          enumerate(sorted(graph.nodes()))}, base=2)
        report = verify_ruling_set(graph, aglp.ruling_set, k + 1, aglp.domination_bound)
        rows.append(_row("(k+1, k log n) det. [AGLP89]", graph_name, graph, k,
                         aglp.rounds, report.ok, report.size,
                         theory_rounds("aglp-logn", n=n, delta=delta, k=k)))

        new_det = deterministic_power_ruling_set(graph, k)
        report = verify_ruling_set(graph, new_det.ruling_set, k + 1, new_det.beta_bound)
        rows.append(_row("New (k+1, k^2) det. (Thm 1.1)", graph_name, graph, k,
                         new_det.rounds, report.ok, report.size,
                         theory_rounds("new-det-ruling", n=n, delta=delta, k=k)))

        ruling = power_graph_ruling_set(graph, k, beta=3, rng=rng)
        report = verify_ruling_set(graph, ruling.ruling_set, ruling.alpha,
                                   ruling.domination_bound)
        rows.append(_row("New (k+1, k*beta) rand. (Cor 1.3, beta=3)", graph_name, graph, k,
                         ruling.rounds, report.ok, report.size,
                         theory_rounds("new-ruling-Gk", n=n, delta=delta, k=k, beta=3)))

        shattering = shattering_mis(graph, rng=rng)
        rows.append(_row("MIS of G via shattering (Thm 1.4)", graph_name, graph, 1,
                         shattering.rounds, is_mis_of_power_graph(graph, shattering.mis, 1),
                         len(shattering.mis),
                         theory_rounds("ghaffari-mis-G", n=n, delta=delta)))
    return rows


# --------------------------------------------------------------------------
# pytest-benchmark entry points (one representative configuration each).
# --------------------------------------------------------------------------
@pytest.fixture(scope="module")
def workload():
    return DEFAULT_REGISTRY.build_cell("regular-n128-d6", seed=1)


def test_luby_power_mis(benchmark, workload):
    result = benchmark(lambda: luby_mis_power(workload, K, rng=random.Random(1)))
    assert is_mis_of_power_graph(workload, result.mis, K)


def test_theorem_1_2_power_mis(benchmark, workload):
    result = benchmark(lambda: power_graph_mis(workload, K, rng=random.Random(1)))
    assert is_mis_of_power_graph(workload, result.mis, K)


def test_theorem_1_1_det_ruling_set(benchmark, workload):
    result = benchmark(lambda: deterministic_power_ruling_set(workload, K))
    assert verify_ruling_set(workload, result.ruling_set, K + 1, result.beta_bound).ok


def test_corollary_6_2_baseline(benchmark, workload):
    result = benchmark(lambda: id_based_ruling_set(workload, K, c=K))
    assert verify_ruling_set(workload, result.ruling_set, K + 1, result.domination_bound).ok


def test_corollary_1_3_ruling_set(benchmark, workload):
    result = benchmark(lambda: power_graph_ruling_set(workload, K, beta=3,
                                                      rng=random.Random(1)))
    assert verify_ruling_set(workload, result.ruling_set, result.alpha,
                             result.domination_bound).ok


def test_theorem_1_4_shattering(benchmark, workload):
    result = benchmark(lambda: shattering_mis(workload, rng=random.Random(1)))
    assert is_mis_of_power_graph(workload, result.mis, 1)


def test_table1_round_ordering(workload):
    """The qualitative content of Table 1 for k >= 2 at moderate n:
    the new randomized MIS beats Luby once Delta^k >> log n, and the new
    deterministic ruling set beats the n^{1/c} baseline asymptotically
    (checked at larger n in bench_det_ruling_vs_baseline)."""
    rows = experiment_rows(sizes=(256,), k=2, seed=3)
    by_algorithm = {row["algorithm"]: row for row in rows}
    assert all(row["valid"] for row in rows)
    luby_rounds = by_algorithm["Luby MIS of G^k [Lub86]"]["rounds"]
    new_rounds = by_algorithm["New MIS of G^k (Thm 1.2)"]["rounds"]
    # Shape check: the shattering-based algorithm's rounds are dominated by
    # O(k^2 log Delta loglog n) which is within a small factor of Luby here
    # and wins as Delta grows (bench_power_mis sweeps Delta).
    assert new_rounds <= 12 * luby_rounds


def main() -> None:
    rows = experiment_rows()
    print_and_store(EXPERIMENT_ID, rows,
                    notes="theory~ column: the paper's Table-1 formula with all constants = 1.")


if __name__ == "__main__":
    sys.exit(main())

"""Experiment FLEET-THROUGHPUT -- scale-out, warm affinity, chaos.

Three phases against real ``repro fleet`` processes (the coordinator and
every worker run as subprocesses of ``python -m repro``, exactly as an
operator would deploy them):

* **Cold scale-out** -- a mix of cold, cache-missing solves (distinct
  ``(graph_seed, seed)`` per request, spread over several workloads) is
  driven through a coordinator with **one** worker, then through a fresh
  coordinator with **two** workers.  Affinity routing spreads distinct
  graphs across the fleet, so two workers should approach twice the solve
  throughput: the acceptance gate is a **geometric-mean speedup >=
  {SCALE_OUT_TARGET}x**.  The gate needs real parallel hardware -- on a
  single-core host (``os.cpu_count() < 2``) both fleets share one core
  and the ratio is meaningless, so the result is reported but the gate is
  not enforced.
* **Warm affinity** -- the same zipf-skewed warm-cache workload is served
  by a plain single ``repro serve`` process and by the fleet (coordinator
  + 2 workers, caches warmed through the coordinator so affinity owns the
  placement).  The fleet pays an extra network hop per request; consistent
  hashing must keep it a *cache hit* hop.  Gate: fleet warm throughput
  within {WARM_AFFINITY_LIMIT_PCT}% of the single server (same hardware
  caveat).
* **Chaos** (``--chaos``) -- a request stream runs against the 2-worker
  fleet while one worker is SIGKILLed mid-run.  Gates (always enforced --
  they are correctness, not speed): **zero lost requests** (every request
  answers 200, failing over via idempotent replay), non-zero ``retried``
  and ``stolen`` coordinator counters, the dead worker expiring from the
  registry, and the post-kill recompute of a pre-kill request being
  **bit-identical** to the original report.
* **Tracing overhead** -- the same warm zipf workload is served by two
  otherwise identical 2-worker fleets, one with distributed tracing on
  (the default) and one booted ``--no-tracing`` end to end.  Each side
  takes the best of three alternating closed-loop trials; the tracing
  fleet additionally answers one ``/trace/<id>`` fetch per trial, as a
  live debugging session would.  Gate: tracing-on throughput within
  {TRACING_OVERHEAD_PCT}% of tracing-off (same hardware caveat).

Results land in ``fleet_throughput.json`` under the results directory
(`REPRO_RESULTS_DIR` honoured); CI uploads it as an artifact.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from typing import Any, Sequence

from harness import ensure_results_dir
from repro.analysis.tables import format_table
from repro.service import ServiceClient, ServiceError

EXPERIMENT_ID = "fleet_throughput"
#: Cold solve throughput: 2 workers over 1 worker, geometric mean.
SCALE_OUT_TARGET = 1.5
#: Warm-cache serving: the fleet may cost at most this fraction versus a
#: single ``repro serve`` process.
WARM_AFFINITY_LIMIT = 0.20
WARM_AFFINITY_LIMIT_PCT = int(WARM_AFFINITY_LIMIT * 100)
#: Serving with distributed tracing on (context propagation + span
#: recording at every hop) may cost at most this fraction of warm fleet
#: throughput versus an identical ``--no-tracing`` fleet.
TRACING_OVERHEAD_LIMIT = 0.05
TRACING_OVERHEAD_PCT = int(TRACING_OVERHEAD_LIMIT * 100)

__doc__ = __doc__.format(SCALE_OUT_TARGET=SCALE_OUT_TARGET,
                         WARM_AFFINITY_LIMIT_PCT=WARM_AFFINITY_LIMIT_PCT,
                         TRACING_OVERHEAD_PCT=TRACING_OVERHEAD_PCT)

#: (workload cell, algorithm, config): cold entries are chosen so the
#: solve dominates the HTTP plumbing (>= ~10ms each) -- scale-out of
#: sub-millisecond requests would measure the coordinator, not the fleet.
FULL_MIX: list[tuple[str, str, dict[str, Any]]] = [
    ("regular-n128-d6", "det-power-ruling", {"k": 2}),
    ("er-n48", "sparsify", {"k": 2}),
    ("regular-n96-d8", "det-power-ruling", {"k": 2}),
]
SMOKE_MIX: list[tuple[str, str, dict[str, Any]]] = [
    ("regular-n96-d8", "det-power-ruling", {"k": 2}),
    ("er-n48", "sparsify", {"k": 2}),
]

_SRC_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "src"))


# ------------------------------------------------------------ process fleet
def _child_env() -> dict[str, str]:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (_SRC_DIR + os.pathsep + existing) if existing \
        else _SRC_DIR
    return env


class _Process:
    """One ``python -m repro ...`` subprocess bound to an ephemeral port."""

    def __init__(self, role: str, argv: list[str], tmpdir: str) -> None:
        self.role = role
        self.port_file = os.path.join(tmpdir, f"{role}.port")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *argv,
             "--port", "0", "--port-file", self.port_file],
            env=_child_env(), stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        self.url = f"http://127.0.0.1:{self._read_port()}"

    def _read_port(self, deadline_s: float = 30.0) -> int:
        deadline = time.monotonic() + deadline_s
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"{self.role} exited with {self.proc.returncode} "
                    f"before binding")
            try:
                with open(self.port_file, encoding="utf-8") as handle:
                    text = handle.read().strip()
                if text:
                    return int(text)
            except FileNotFoundError:
                pass
            time.sleep(0.05)
        raise RuntimeError(f"{self.role} did not bind within {deadline_s}s")

    @property
    def pid(self) -> int:
        return self.proc.pid

    def sigkill(self) -> None:
        os.kill(self.proc.pid, signal.SIGKILL)
        self.proc.wait(timeout=10)

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=10)


class Fleet:
    """A subprocess coordinator plus N subprocess workers."""

    def __init__(self, worker_count: int, tmpdir: str, *,
                 ttl_s: float = 5.0, batch_window_s: float = 0.0,
                 label: str = "fleet",
                 coordinator_args: Sequence[str] = (),
                 worker_args: Sequence[str] = ()) -> None:
        self.coordinator = _Process(
            f"{label}-coordinator",
            ["fleet", "coordinator", "--ttl", str(ttl_s),
             "--batch-window", str(batch_window_s), *coordinator_args],
            tmpdir)
        self.worker_ids = [f"{label}-w{index}"
                           for index in range(worker_count)]
        self.workers = [
            _Process(f"{label}-worker{index}",
                     ["fleet", "worker",
                      "--coordinator", self.coordinator.url,
                      "--worker-id", self.worker_ids[index],
                      "--no-persist", "--inline-workers", "--shards", "2",
                      *worker_args],
                     tmpdir)
            for index in range(worker_count)]
        self.client = ServiceClient(self.coordinator.url, timeout=300)
        self._await_enrollment(worker_count)

    def _await_enrollment(self, expected: int,
                          deadline_s: float = 30.0) -> None:
        self.client.wait_healthy(deadline_s=deadline_s)
        deadline = time.monotonic() + deadline_s
        while time.monotonic() < deadline:
            doc = self.client.request("GET", "/fleet/workers")
            if len(doc["workers"]) >= expected:
                return
            time.sleep(0.1)
        raise RuntimeError(
            f"only {len(doc['workers'])}/{expected} workers enrolled "
            f"within {deadline_s}s")

    def stats(self) -> dict[str, Any]:
        return self.client.request("GET", "/stats")

    def stop(self) -> None:
        for worker in self.workers:
            worker.stop()
        self.coordinator.stop()


# -------------------------------------------------------------- load loops
def _closed_loop(client: ServiceClient,
                 requests: Sequence[dict[str, Any]], *,
                 concurrency: int) -> tuple[float, list[dict[str, Any]],
                                            list[Exception]]:
    """Drive ``requests`` from closed-loop threads; never raises.

    Returns ``(elapsed_s, rows, errors)`` -- the chaos phase needs the
    error list (its gate is that the list is empty), the throughput
    phases assert on it.
    """
    rows: list[list[dict[str, Any]]] = [[] for _ in range(concurrency)]
    errors: list[Exception] = []

    def worker(index: int) -> None:
        for body in requests[index::concurrency]:
            try:
                rows[index].append(
                    client.request("POST", "/solve", dict(body)))
            except Exception as error:  # noqa: BLE001 - gated after join
                errors.append(error)

    threads = [threading.Thread(target=worker, args=(index,), daemon=True)
               for index in range(concurrency)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    return elapsed, [row for chunk in rows for row in chunk], errors


def _request(cell: str, algorithm: str, config: dict[str, Any], *,
             graph_seed: int, seed: int) -> dict[str, Any]:
    return {"workload": cell, "algorithm": algorithm, "config": config,
            "graph_seed": graph_seed, "seed": seed}


def _cold_requests(entry: tuple[str, str, dict[str, Any]], *,
                   graphs: int, seeds: int, salt: int) -> list[dict[str, Any]]:
    """Distinct content addresses: every request is a guaranteed miss."""
    cell, algorithm, config = entry
    return [_request(cell, algorithm, config,
                     graph_seed=1000 * salt + graph_index, seed=seed)
            for graph_index in range(graphs) for seed in range(seeds)]


def zipf_sequence(count: int, length: int, *, s: float,
                  seed: int) -> list[int]:
    import random

    rng = random.Random(seed)
    raw = [1.0 / (rank ** s) for rank in range(1, count + 1)]
    total = sum(raw)
    return rng.choices(range(count), weights=[w / total for w in raw],
                       k=length)


# --------------------------------------------------------- phase: scale-out
def measure_scale_out(mix: Sequence[tuple[str, str, dict[str, Any]]],
                      tmpdir: str, *, graphs: int, seeds: int,
                      concurrency: int) -> dict[str, Any]:
    """Cold solve throughput: 1 worker vs 2 workers, fresh caches each."""
    rates: dict[int, list[float]] = {1: [], 2: []}
    for worker_count in (1, 2):
        fleet = Fleet(worker_count, tmpdir, label=f"cold{worker_count}")
        try:
            for salt, entry in enumerate(mix):
                requests = _cold_requests(entry, graphs=graphs,
                                          seeds=seeds,
                                          salt=salt + worker_count * 100)
                elapsed, rows, errors = _closed_loop(
                    fleet.client, requests, concurrency=concurrency)
                if errors:
                    raise errors[0]
                assert all(row["status"] == "computed" for row in rows), \
                    "cold-phase requests must all be computed"
                rates[worker_count].append(
                    len(rows) / elapsed if elapsed > 0 else float("inf"))
        finally:
            fleet.stop()

    rows = []
    ratios = []
    for entry, one, two in zip(mix, rates[1], rates[2]):
        cell, algorithm, config = entry
        ratio = two / one if one > 0 else float("inf")
        ratios.append(ratio)
        rows.append({
            "workload": cell,
            "algorithm": algorithm,
            "config": ",".join(f"{k}={v}"
                               for k, v in sorted(config.items())),
            "rps_1worker": round(one, 1),
            "rps_2workers": round(two, 1),
            "scale_out": round(ratio, 2),
        })
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    return {"rows": rows, "geomean_scale_out": round(geomean, 2),
            "target": SCALE_OUT_TARGET}


# ----------------------------------------------------- phase: warm affinity
def measure_warm_affinity(mix: Sequence[tuple[str, str, dict[str, Any]]],
                          tmpdir: str, *, graphs: int, requests_count: int,
                          concurrency: int, zipf_s: float,
                          seed: int) -> dict[str, Any]:
    """Warm zipf serving: fleet (2 workers) vs a single ``repro serve``."""
    vocabulary = [
        _request(cell, algorithm, config, graph_seed=graph_index, seed=0)
        for cell, algorithm, config in mix
        for graph_index in range(graphs)]
    sequence = zipf_sequence(len(vocabulary), requests_count, s=zipf_s,
                             seed=seed)
    workload = [vocabulary[index] for index in sequence]

    def measure(client: ServiceClient) -> tuple[float, float]:
        for body in vocabulary:  # warm every distinct address once
            client.request("POST", "/solve", dict(body))
        elapsed, rows, errors = _closed_loop(client, workload,
                                             concurrency=concurrency)
        if errors:
            raise errors[0]
        hits = sum(1 for row in rows
                   if row["status"] in ("hit", "coalesced"))
        return (len(rows) / elapsed if elapsed > 0 else float("inf"),
                hits / len(rows))

    single = _Process("serve",
                      ["serve", "--no-persist", "--inline-workers",
                       "--shards", "2"],
                      tmpdir)
    try:
        client = ServiceClient(single.url, timeout=300)
        client.wait_healthy(deadline_s=30)
        serve_rps, serve_hit_rate = measure(client)
    finally:
        single.stop()

    fleet = Fleet(2, tmpdir, label="warm")
    try:
        fleet_rps, fleet_hit_rate = measure(fleet.client)
        stats = fleet.stats()
    finally:
        fleet.stop()

    relative = fleet_rps / serve_rps if serve_rps > 0 else float("inf")
    return {
        "serve_rps": round(serve_rps, 1),
        "fleet_rps": round(fleet_rps, 1),
        "relative": round(relative, 3),
        "serve_hit_rate": round(serve_hit_rate, 4),
        "fleet_hit_rate": round(fleet_hit_rate, 4),
        "affinity_hit_rate": stats["affinity_hit_rate"],
        "limit": WARM_AFFINITY_LIMIT,
        "requests": len(workload),
    }


# ------------------------------------------------------------ phase: chaos
def measure_chaos(mix: Sequence[tuple[str, str, dict[str, Any]]],
                  tmpdir: str, *, graphs: int, seeds: int,
                  concurrency: int) -> dict[str, Any]:
    """SIGKILL one worker mid-stream; the fleet must not lose a request."""
    from repro.api import report_from_json, solve
    from repro.scenarios.registry import DEFAULT_REGISTRY

    fleet = Fleet(2, tmpdir, ttl_s=2.0, label="chaos")
    try:
        requests = []
        for salt, entry in enumerate(mix):
            requests.extend(_cold_requests(entry, graphs=graphs,
                                           seeds=seeds, salt=500 + salt))
        # Pre-kill reference rows: recomputed-after-failover bit-identity
        # is asserted against these.
        reference = [fleet.client.request("POST", "/solve",
                                          dict(body))
                     for body in requests[:2]]
        victim_id = reference[0]["worker"]
        victim = fleet.workers[fleet.worker_ids.index(victim_id)]

        killed = threading.Event()

        def assassin() -> None:
            time.sleep(0.4)  # let the stream get going first
            victim.sigkill()
            killed.set()

        killer = threading.Thread(target=assassin, daemon=True)
        killer.start()
        elapsed, rows, errors = _closed_loop(fleet.client, requests,
                                             concurrency=concurrency)
        killer.join()
        assert killed.is_set()

        # Replay the pre-kill references: the victim computed them, the
        # survivor must now recompute them bit-identically.
        replays = [fleet.client.request("POST", "/solve", dict(body))
                   for body in requests[:2]]
        for original, replay in zip(reference, replays):
            assert replay["key"] == original["key"]
            assert replay["report"] == original["report"], \
                "failover recompute diverged from the original report"
        assert replays[0]["worker"] != victim_id

        # ... and against a direct in-process solve (end-to-end identity).
        body = requests[0]
        graph = DEFAULT_REGISTRY.build_cell(body["workload"],
                                            seed=body["graph_seed"])
        fresh = solve(graph, body["algorithm"], seed=body["seed"],
                      **body["config"])
        served = report_from_json(replays[0]["report"])
        assert served.output == fresh.output
        assert served.rounds == fresh.rounds

        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            live = {row["worker_id"] for row in
                    fleet.client.request("GET", "/fleet/workers")["workers"]}
            if victim_id not in live:
                break
            time.sleep(0.2)
        stats = fleet.stats()
        counters = stats["counters"]
        return {
            "requests": len(requests) + 4,
            "lost": len(errors),
            "errors": [f"{type(error).__name__}: {error}"
                       for error in errors[:5]],
            "retried": counters["retried"],
            "stolen": counters["stolen"],
            "failed": counters["failed"],
            "victim": victim_id,
            "victim_expired": victim_id not in live,
            "bit_identical_replay": True,
            "ok": (not errors and counters["retried"] > 0
                   and counters["stolen"] > 0 and victim_id not in live),
        }
    finally:
        fleet.stop()


# --------------------------------------------------- phase: tracing overhead
def measure_tracing_overhead(mix: Sequence[tuple[str, str, dict[str, Any]]],
                             tmpdir: str, *, graphs: int,
                             requests_count: int, concurrency: int,
                             zipf_s: float, seed: int,
                             trials: int = 3) -> dict[str, Any]:
    """Warm fleet serving with tracing on vs. an identical ``--no-tracing``
    fleet.

    Both fleets (coordinator + 2 workers each, all subprocesses) serve the
    same zipf request sequence; each side takes the best of ``trials``
    alternating runs, which cancels most scheduler noise -- the quantity
    under test is the per-request tracing cost (context mint + header
    propagation + span recording at every hop), not the machine's mood.
    One ``/trace/<id>`` tree is fetched per trial on the tracing side, as
    a live debugging session would.
    """
    vocabulary = [
        _request(cell, algorithm, config, graph_seed=graph_index, seed=0)
        for cell, algorithm, config in mix
        for graph_index in range(graphs)]
    sequence = zipf_sequence(len(vocabulary), requests_count, s=zipf_s,
                             seed=seed)
    workload = [vocabulary[index] for index in sequence]

    fleets = {
        "on": Fleet(2, tmpdir, label="traced"),
        "off": Fleet(2, tmpdir, label="untraced",
                     coordinator_args=["--no-tracing"],
                     worker_args=["--no-tracing"]),
    }
    best: dict[str, float] = {"on": 0.0, "off": 0.0}
    span_count = 0
    try:
        for fleet in fleets.values():  # warm every distinct address once
            for body in vocabulary:
                fleet.client.request("POST", "/solve", dict(body))
        for trial in range(trials):
            # Alternate which side runs first so drift hits both equally.
            order = ("on", "off") if trial % 2 == 0 else ("off", "on")
            for name in order:
                elapsed, rows, errors = _closed_loop(
                    fleets[name].client, workload, concurrency=concurrency)
                if errors:
                    raise errors[0]
                best[name] = max(best[name],
                                 len(rows) / elapsed if elapsed > 0
                                 else float("inf"))
            # The fetch a live debugging session would issue (untimed; a
            # fresh request so its trace cannot have been ring-evicted).
            row = fleets["on"].client.request("POST", "/solve",
                                              dict(vocabulary[0]))
            tree = fleets["on"].client.request(
                "GET", f"/trace/{row['trace_id']}")
            span_count = tree["span_count"]
    finally:
        for fleet in fleets.values():
            fleet.stop()

    overhead = max(0.0, 1.0 - best["on"] / best["off"]) \
        if best["off"] > 0 else 0.0
    return {
        "tracing_on_rps": round(best["on"], 1),
        "tracing_off_rps": round(best["off"], 1),
        "overhead_fraction": round(overhead, 4),
        "limit_fraction": TRACING_OVERHEAD_LIMIT,
        "sample_trace_spans": span_count,
        "requests_per_trial": len(workload),
        "trials": trials,
        "ok": overhead <= TRACING_OVERHEAD_LIMIT,
    }


# ---------------------------------------------------------------- experiment
def experiment_fleet_throughput(*, smoke: bool = False, chaos: bool = False,
                                concurrency: int = 8, zipf_s: float = 1.1,
                                seed: int = 7) -> dict[str, Any]:
    mix = SMOKE_MIX if smoke else FULL_MIX
    graphs = 4 if smoke else 6
    cold_seeds = 3 if smoke else 4
    warm_requests = 150 if smoke else 800
    multicore = (os.cpu_count() or 1) >= 2

    result: dict[str, Any] = {
        "smoke": smoke,
        "concurrency": concurrency,
        "cpu_count": os.cpu_count(),
        "gates_enforced": multicore,
    }
    with tempfile.TemporaryDirectory(prefix="repro-fleet-bench-") as tmpdir:
        result["scale_out"] = measure_scale_out(
            mix, tmpdir, graphs=graphs, seeds=cold_seeds,
            concurrency=concurrency)
        result["warm_affinity"] = measure_warm_affinity(
            mix, tmpdir, graphs=graphs, requests_count=warm_requests,
            concurrency=concurrency, zipf_s=zipf_s, seed=seed)
        result["tracing"] = measure_tracing_overhead(
            mix, tmpdir, graphs=graphs, requests_count=warm_requests,
            concurrency=concurrency, zipf_s=zipf_s, seed=seed)
        if chaos:
            result["chaos"] = measure_chaos(
                mix, tmpdir, graphs=max(2, graphs // 2), seeds=cold_seeds,
                concurrency=concurrency)
    return result


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Scale-out, warm-affinity and chaos gates for the "
                    "repro.fleet stack.")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced CI sizes (the gates still apply)")
    parser.add_argument("--chaos", action="store_true",
                        help="additionally run the SIGKILL containment "
                             "phase")
    parser.add_argument("--concurrency", type=int, default=8,
                        help="closed-loop client threads (default: 8)")
    parser.add_argument("--zipf-s", type=float, default=1.1)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", default=None,
                        help="result JSON path (default: "
                             "<results>/fleet_throughput.json)")
    args = parser.parse_args(argv)
    if os.environ.get("SMOKE") == "1":
        args.smoke = True

    result = experiment_fleet_throughput(
        smoke=args.smoke, chaos=args.chaos, concurrency=args.concurrency,
        zipf_s=args.zipf_s, seed=args.seed)

    title = f"[{EXPERIMENT_ID}{'/smoke' if args.smoke else ''}]"
    print()
    print(format_table(result["scale_out"]["rows"], title=title))
    scale = result["scale_out"]["geomean_scale_out"]
    warm = result["warm_affinity"]
    print(f"cold scale-out (2 workers / 1 worker): geomean {scale:.2f}x "
          f"(target >= {SCALE_OUT_TARGET}x)")
    print(f"warm affinity: fleet {warm['fleet_rps']} req/s vs single "
          f"serve {warm['serve_rps']} req/s ({warm['relative']:.2f}x, "
          f"floor {1 - WARM_AFFINITY_LIMIT:.2f}x); fleet hit-rate "
          f"{warm['fleet_hit_rate']:.2%}, affinity hit-rate "
          f"{warm['affinity_hit_rate']:.2%}")
    tracing = result["tracing"]
    print(f"tracing overhead: on {tracing['tracing_on_rps']} req/s vs off "
          f"{tracing['tracing_off_rps']} req/s "
          f"({tracing['overhead_fraction']:.2%} overhead, limit "
          f"{TRACING_OVERHEAD_LIMIT:.0%}); sample trace carried "
          f"{tracing['sample_trace_spans']} spans")
    if "chaos" in result:
        chaos = result["chaos"]
        print(f"chaos: {chaos['requests']} requests, {chaos['lost']} lost, "
              f"retried {chaos['retried']}, stolen {chaos['stolen']}, "
              f"victim {chaos['victim']} expired="
              f"{chaos['victim_expired']}, bit-identical replay: "
              f"{chaos['bit_identical_replay']}")

    output = args.output
    if output is None:
        output = os.path.join(ensure_results_dir(), f"{EXPERIMENT_ID}.json")
    else:
        parent = os.path.dirname(output)
        if parent:
            os.makedirs(parent, exist_ok=True)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
    print(f"results written to {output}")

    failed = False
    if result["gates_enforced"]:
        if scale < SCALE_OUT_TARGET:
            print(f"FAIL: cold scale-out geomean {scale:.2f}x < "
                  f"{SCALE_OUT_TARGET}x", file=sys.stderr)
            failed = True
        if warm["relative"] < 1.0 - WARM_AFFINITY_LIMIT:
            print(f"FAIL: warm fleet throughput {warm['relative']:.2f}x of "
                  f"single serve (floor "
                  f"{1 - WARM_AFFINITY_LIMIT:.2f}x)", file=sys.stderr)
            failed = True
        if not tracing["ok"]:
            print(f"FAIL: tracing overhead "
                  f"{tracing['overhead_fraction']:.2%} > "
                  f"{TRACING_OVERHEAD_LIMIT:.0%}", file=sys.stderr)
            failed = True
    else:
        print(f"NOTE: single-core host (cpu_count="
              f"{result['cpu_count']}): scale-out, warm-affinity and "
              f"tracing-overhead gates reported but not enforced")
    if "chaos" in result and not result["chaos"]["ok"]:
        print(f"FAIL: chaos gate: {json.dumps(result['chaos'])}",
              file=sys.stderr)
        failed = True
    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

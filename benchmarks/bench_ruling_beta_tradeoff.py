"""Experiment E-BETA -- the domination / rounds trade-off of Corollary 1.3.

Corollary 1.3 computes a ``(k+1, k*beta)``-ruling set of ``G^k`` in
``~O(beta k^{1+1/(beta-1)} (log Delta)^{1/(beta-1)} + beta k loglog n +
k^4 log^5 loglog n)`` rounds: relaxing the domination (larger ``beta``)
shrinks the ``(log Delta)`` exponent, so the sparsification stages get
cheaper while the final MIS runs on an ever-sparser candidate set.

The benchmark sweeps ``beta`` at fixed ``k`` and graph, reporting rounds,
the measured domination (must stay <= k * beta) and the size of the KP12
candidate chain.
"""

from __future__ import annotations

import sys

import pytest

from harness import delta_of, print_and_store, run_solver
from repro.ruling import verify_ruling_set
from repro.scenarios.registry import DEFAULT_REGISTRY

EXPERIMENT_ID = "E-BETA-ruling-tradeoff"
#: The sweep is owned by the scenario registry: the ``beta-tradeoff``-tagged
#: scenarios fix the graph cell, the power k and the beta grid.
SWEEP = sorted(DEFAULT_REGISTRY.select(tags={"beta-tradeoff"}),
               key=lambda scenario: scenario.param("beta"))
K = SWEEP[0].k if SWEEP else 2
BETAS = tuple(scenario.param("beta") for scenario in SWEEP)


def run_once(graph, k: int, beta: int, seed: int) -> dict[str, object]:
    # verify=False: the explicit verify_ruling_set below measures the exact
    # radii AND decides validity, so the certificate's (identical) check
    # would only duplicate the all-nodes BFS per row.
    solve_report = run_solver(graph, "power-ruling", seed=seed, k=k, beta=beta,
                              verify=False)
    beta_bound = solve_report.payload["beta_bound"]
    measured = verify_ruling_set(graph, solve_report.output,
                                 solve_report.payload["alpha"], beta_bound)
    phase_rounds = solve_report.metrics["phase_rounds"]
    return {
        "n": graph.number_of_nodes(),
        "Delta": delta_of(graph),
        "k": k,
        "beta": beta,
        "rounds": solve_report.rounds,
        "kp12 rounds": phase_rounds.get("kp12-sparsification", 0),
        "final MIS rounds": phase_rounds.get("final-mis", 0),
        "domination (measured)": measured.domination,
        "bound k*beta": beta_bound,
        "|ruling set|": measured.size,
        "candidate chain": "->".join(str(size)
                                     for size in solve_report.metrics["chain_sizes"]),
        "valid": measured.ok,
    }


def experiment_rows() -> list[dict[str, object]]:
    rows = []
    for scenario in SWEEP:
        graph = DEFAULT_REGISTRY.build_graph(scenario, seed=3)
        rows.append(run_once(graph, scenario.k, scenario.param("beta"),
                             seed=scenario.param("beta")))
    return rows


# --------------------------------------------------------------------------
# pytest entry points.
# --------------------------------------------------------------------------
def test_all_betas_valid():
    rows = experiment_rows()
    assert all(row["valid"] for row in rows)


def test_domination_grows_with_beta_and_stays_within_bound():
    rows = experiment_rows()
    for row in rows:
        assert row["domination (measured)"] <= row["bound k*beta"]


def test_larger_beta_shrinks_ruling_set():
    rows = experiment_rows()
    sizes = [row["|ruling set|"] for row in rows]
    # Relaxed domination allows (weakly) fewer rulers.
    assert sizes[-1] <= sizes[0]


@pytest.mark.parametrize("beta", [2, 4])
def test_ruling_set_runtime(benchmark, beta):
    graph = DEFAULT_REGISTRY.build_cell("regular-n200-d12", seed=3)
    report = benchmark(lambda: run_solver(graph, "power-ruling", seed=beta,
                                          k=K, beta=beta, verify=False))
    assert report.output


def main() -> None:
    rows = experiment_rows()
    print_and_store(EXPERIMENT_ID, rows,
                    notes="Corollary 1.3: domination <= k*beta for every beta; larger beta "
                          "trades domination for fewer/cheaper sparsification levels.")


if __name__ == "__main__":
    sys.exit(main())

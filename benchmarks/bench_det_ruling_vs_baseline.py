"""Experiment E-RULING -- Theorem 1.1 vs. the prior deterministic state of the art.

The paper's headline deterministic claim: for constant ``k > 1`` the new
``(k+1, k^2)``-ruling set algorithm runs in polylogarithmic time, an
exponential improvement over the previous best, which needs
``O(k c n^{1/c})`` rounds for domination ``ck`` (Corollary 6.2; for the same
``k^2``-ish domination, ``c = k`` and the baseline is ``O(k^2 n^{1/k})``).

Absolute round counts at simulation sizes favour the baseline (the new
algorithm pays ``~log^4 n`` with real constants), so -- as with any
asymptotic separation -- the experiment measures *growth*: how the two round
counts scale as ``n`` doubles.  The paper's claim shows up as

* the baseline's rounds growing like ``n^{1/k}`` (a constant factor
  ``2^{1/k}`` per doubling, forever), while
* the new algorithm's rounds grow like a polynomial in ``log n`` (a factor
  that tends to 1 per doubling),

which also pins down where the crossover falls (extrapolated from the fitted
growth rates).
"""

from __future__ import annotations

import math
import sys

import pytest

from harness import print_and_store, regular_workloads
from repro.ruling import deterministic_power_ruling_set, id_based_ruling_set, verify_ruling_set

EXPERIMENT_ID = "E-RULING-det-vs-baseline"
SIZES = (64, 128, 256, 512)
K = 2


def run_once(graph_name: str, graph, k: int = K) -> dict[str, object]:
    new = deterministic_power_ruling_set(graph, k)
    new_report = verify_ruling_set(graph, new.ruling_set, k + 1, new.beta_bound)
    baseline = id_based_ruling_set(graph, k, c=k)
    base_report = verify_ruling_set(graph, baseline.ruling_set, k + 1,
                                    baseline.domination_bound)
    n = graph.number_of_nodes()
    return {
        "graph": graph_name,
        "n": n,
        "k": k,
        "new rounds (Thm 1.1)": new.rounds,
        "baseline rounds (Cor 6.2)": baseline.rounds,
        "new domination": new_report.domination,
        "baseline domination": base_report.domination,
        "new valid": new_report.ok,
        "baseline valid": base_report.ok,
        "polylog ref log^4 n": round(math.log2(n) ** 4),
        "poly ref n^(1/k)": round(n ** (1 / k), 1),
    }


def experiment_rows(sizes=SIZES, k: int = K) -> list[dict[str, object]]:
    return [run_once(name, graph, k)
            for name, graph in regular_workloads(sizes, degree=6, seed=2)]


def growth_per_doubling(rows, column: str) -> list[float]:
    values = [row[column] for row in rows]
    return [values[i + 1] / max(1, values[i]) for i in range(len(values) - 1)]


def extrapolated_crossover(rows) -> float:
    """Fit rounds = a * n^b to the two curves and solve for the crossing n."""
    def fit(column):
        xs = [math.log(row["n"]) for row in rows]
        ys = [math.log(max(1, row[column])) for row in rows]
        n = len(xs)
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        slope = (sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
                 / max(1e-9, sum((x - mean_x) ** 2 for x in xs)))
        intercept = mean_y - slope * mean_x
        return slope, intercept

    slope_new, intercept_new = fit("new rounds (Thm 1.1)")
    slope_base, intercept_base = fit("baseline rounds (Cor 6.2)")
    if slope_base <= slope_new:
        return math.inf
    log_n = (intercept_new - intercept_base) / (slope_base - slope_new)
    return math.exp(log_n)


# --------------------------------------------------------------------------
# pytest entry points.
# --------------------------------------------------------------------------
def test_both_algorithms_valid_and_baseline_grows_polynomially():
    rows = experiment_rows(sizes=(64, 256))
    assert all(row["new valid"] and row["baseline valid"] for row in rows)
    # Baseline grows ~ n^{1/2} per quadrupling: factor ~2.
    baseline_growth = rows[1]["baseline rounds (Cor 6.2)"] / rows[0]["baseline rounds (Cor 6.2)"]
    assert baseline_growth >= 1.5
    # The new algorithm grows strictly slower than the baseline.
    new_growth = rows[1]["new rounds (Thm 1.1)"] / rows[0]["new rounds (Thm 1.1)"]
    assert new_growth < baseline_growth


def test_new_algorithm_has_polylog_growth():
    rows = experiment_rows(sizes=(128, 512))
    growth = rows[1]["new rounds (Thm 1.1)"] / rows[0]["new rounds (Thm 1.1)"]
    # log^4(512)/log^4(128) ~ 2.2; allow generous slack but reject polynomial growth (4x).
    assert growth < 2.5


def test_domination_quality_matches_bounds():
    rows = experiment_rows(sizes=(128,))
    row = rows[0]
    assert row["new domination"] <= K * K + K
    assert row["baseline domination"] <= K * (K + 1)


def test_theorem_1_1_scaling(benchmark):
    name, graph = regular_workloads([256], degree=6, seed=2)[0]
    result = benchmark(lambda: deterministic_power_ruling_set(graph, K))
    assert result.ruling_set


def test_baseline_scaling(benchmark):
    name, graph = regular_workloads([256], degree=6, seed=2)[0]
    result = benchmark(lambda: id_based_ruling_set(graph, K, c=K))
    assert result.ruling_set


def main() -> None:
    rows = experiment_rows()
    crossover = extrapolated_crossover(rows)
    notes = ("growth per doubling -- new: "
             f"{[round(g, 2) for g in growth_per_doubling(rows, 'new rounds (Thm 1.1)')]}, "
             "baseline: "
             f"{[round(g, 2) for g in growth_per_doubling(rows, 'baseline rounds (Cor 6.2)')]}; "
             f"extrapolated crossover at n ~ {crossover:.3g} "
             "(the asymptotic win of Theorem 1.1; constants put it far beyond simulation sizes).")
    print_and_store(EXPERIMENT_ID, rows, notes=notes)


if __name__ == "__main__":
    sys.exit(main())

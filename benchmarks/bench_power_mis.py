"""Experiment E-MIS-K -- randomized MIS of G^k: Theorem 1.2 vs. Luby (Section 8.1).

The paper's randomized claim: the shattering-based MIS of ``G^k`` runs in
``~O(k^2 log Delta loglog n + k^4 log^5 loglog n)`` rounds, replacing the
``O(k log n)`` of Luby's algorithm -- i.e. the dependence on ``n`` drops to
``loglog n`` and the dominant term scales with ``log Delta``.

The benchmark sweeps the maximum degree ``Delta`` at fixed ``n`` and the
size ``n`` at fixed ``Delta`` and reports the measured rounds of both
algorithms (both outputs verified as MIS of ``G^k``).  The shape to look
for: Luby's rounds track ``log n`` and are flat in ``Delta``; Theorem 1.2's
rounds track ``log Delta`` and are (nearly) flat in ``n``.
"""

from __future__ import annotations

import sys

import pytest

from harness import certify_report, delta_of, print_and_store, run_solver
from repro.graphs import random_regular_graph
from repro.scenarios.registry import DEFAULT_REGISTRY

EXPERIMENT_ID = "E-MIS-K-power-mis"
K = 2


def run_once(graph, k: int, seed: int) -> dict[str, object]:
    """Both MIS algorithms dispatched and certified through repro.api."""
    luby = run_solver(graph, "luby-power", seed=seed, k=k)
    new = run_solver(graph, "power-mis", seed=seed, k=k)
    assert luby.verified, luby.certificate.summary()
    assert new.verified, new.certificate.summary()
    phase_rounds = new.metrics["phase_rounds"]
    return {
        "n": graph.number_of_nodes(),
        "Delta": delta_of(graph),
        "k": k,
        "Luby rounds": luby.rounds,
        "Thm 1.2 rounds": new.rounds,
        "Thm 1.2 pre-shattering": phase_rounds.get("pre-shattering", 0),
        "Thm 1.2 post-shattering": phase_rounds.get("post-shattering", 0),
        "|MIS| Luby": len(luby.output),
        "|MIS| Thm 1.2": len(new.output),
    }


def experiment_rows() -> list[dict[str, object]]:
    """The three sweeps of Section 8.1, sourced from the scenario registry.

    The Delta sweep is the cells tagged ``power-mis-delta``, the n sweep the
    cells tagged ``power-mis-n`` and the k sweep the scenarios tagged
    ``power-mis-k`` -- the same grid the batch runner executes.
    """
    rows = []
    # Sweep Delta at fixed n.
    for cell in sorted(DEFAULT_REGISTRY.cells(tags={"power-mis-delta"}),
                       key=lambda cell: cell.params_dict["degree"]):
        degree = cell.params_dict["degree"]
        graph = DEFAULT_REGISTRY.build_cell(cell, seed=degree)
        rows.append(run_once(graph, K, seed=degree))
    # Sweep n at fixed Delta.
    for cell in sorted(DEFAULT_REGISTRY.cells(tags={"power-mis-n"}),
                       key=lambda cell: cell.params_dict["n"]):
        n = cell.params_dict["n"]
        graph = DEFAULT_REGISTRY.build_cell(cell, seed=n)
        rows.append(run_once(graph, K, seed=n))
    # Sweep k at fixed n, Delta.
    for scenario in sorted(DEFAULT_REGISTRY.select(tags={"power-mis-k"}),
                           key=lambda scenario: scenario.k):
        graph = DEFAULT_REGISTRY.build_graph(scenario, seed=40 + scenario.k)
        rows.append(run_once(graph, scenario.k, seed=40 + scenario.k))
    return rows


# --------------------------------------------------------------------------
# pytest entry points.
# --------------------------------------------------------------------------
def test_luby_rounds_grow_with_n_not_delta():
    small_n = run_once(random_regular_graph(96, 8, seed=1), K, seed=1)
    large_n = run_once(random_regular_graph(384, 8, seed=1), K, seed=1)
    low_delta = run_once(random_regular_graph(192, 4, seed=2), K, seed=2)
    high_delta = run_once(random_regular_graph(192, 32, seed=2), K, seed=2)
    assert large_n["Luby rounds"] >= small_n["Luby rounds"]
    # Luby is (nearly) insensitive to Delta.
    assert high_delta["Luby rounds"] <= 2 * low_delta["Luby rounds"]


def test_theorem_1_2_rounds_nearly_flat_in_n():
    small_n = run_once(random_regular_graph(96, 8, seed=3), K, seed=3)
    large_n = run_once(random_regular_graph(384, 8, seed=3), K, seed=3)
    # loglog n growth: quadrupling n should cost well under 2x rounds.
    assert large_n["Thm 1.2 rounds"] <= 2 * small_n["Thm 1.2 rounds"]


def test_outputs_verified_for_all_k():
    for k in (1, 2, 3):
        graph = random_regular_graph(100, 6, seed=50 + k)
        row = run_once(graph, k, seed=50 + k)
        assert row["|MIS| Thm 1.2"] > 0


@pytest.mark.parametrize("degree", [8, 16])
def test_power_mis_runtime(benchmark, degree):
    # verify=False inside the timed lambda (the benchmark measures the
    # algorithm); the produced output is certified once afterwards.
    graph = random_regular_graph(192, degree, seed=degree)
    report = benchmark(lambda: run_solver(graph, "power-mis", seed=degree, k=K,
                                          verify=False))
    assert certify_report(graph, report).ok


def test_luby_power_runtime(benchmark):
    graph = random_regular_graph(192, 8, seed=9)
    report = benchmark(lambda: run_solver(graph, "luby-power", seed=9, k=K,
                                          verify=False))
    assert certify_report(graph, report).ok


def main() -> None:
    rows = experiment_rows()
    print_and_store(EXPERIMENT_ID, rows,
                    notes="Theorem 1.2 vs Luby on G^k: Luby's rounds track k log n; the "
                          "shattering algorithm's rounds track k^2 log Delta with only "
                          "loglog-n dependence on n.")


if __name__ == "__main__":
    sys.exit(main())

"""Experiment SIM-THROUGHPUT -- round throughput of the layered CONGEST runtime.

Measures simulator throughput (rounds per second) on the Table-1 landscape
workload (``regular(n=2000, d=4)``) for three schedulers:

* ``legacy`` -- a frozen copy of the pre-refactor monolithic round loop
  (networkx adjacency queries, per-message ``str()`` edge keys, a fresh
  inbox dict for every node every round), kept here as the baseline the
  perf trajectory is tracked against;
* ``sync`` -- the layered runtime's reference :class:`SyncEngine`;
* ``active-set`` -- the :class:`ActiveSetEngine`, which skips halted nodes.

Workloads: Luby MIS (long halting tail -- the active-set case) and BFS
layering (flooding -- the dense case).  All three schedulers must produce
identical outputs, rounds and message totals before their timings count.

The acceptance bar of the layered-runtime refactor is ``active-set``
achieving >= 2x the legacy rounds/sec on the regular(n=2000,d=4) landscape
workload, measured as the geometric mean across its algorithm rows (with a
1.5x floor on every individual row); the run fails loudly if that
regresses.  ``--smoke`` (or ``SMOKE=1``) runs a reduced n=300 sweep without
the assertion, for CI.
"""

from __future__ import annotations

import math
import os
import random
import statistics
import sys
from typing import Any, Callable, Hashable, Mapping, Type

from harness import print_and_store, time_rounds_per_sec
from repro.analysis.tables import format_table
from repro.congest import CongestNetwork, NodeAlgorithm
from repro.congest.message import message_bits
from repro.congest.primitives import BFSLayering
from repro.congest.simulator import BandwidthExceededError, SimulationResult, Simulator
from repro.graphs import random_regular_graph
from repro.mis.beeping import BeepingMISNode
from repro.mis.luby import LubyMISNode
from repro.ruling.distributed import DetRulingSetNode

Node = Hashable

EXPERIMENT_ID = "sim_throughput"
SPEEDUP_TARGET = 2.0     # geometric mean across the workload's rows
ROW_SPEEDUP_FLOOR = 1.5  # every individual row must clear this


# --------------------------------------------------------------------- legacy
class LegacySimulator:
    """The pre-refactor monolithic scheduler, frozen as the perf baseline.

    This is the seed repository's ``Simulator`` verbatim (modulo the class
    name): per-round inbox dicts for all nodes, ``network.has_edge`` per
    message, ``str()``-normalised edge keys, inlined counters.  Do not
    "improve" it -- its whole point is to stay what the refactor is measured
    against.
    """

    def __init__(self, network: CongestNetwork,
                 algorithm_factory: Type[NodeAlgorithm] | Callable[[Node], NodeAlgorithm],
                 *, seed: int = 0, enforce_bandwidth: bool = True) -> None:
        self.network = network
        self.seed = seed
        self.enforce_bandwidth = enforce_bandwidth
        self.nodes: dict[Node, NodeAlgorithm] = {}
        for node in network.nodes():
            if isinstance(algorithm_factory, type) and issubclass(algorithm_factory,
                                                                  NodeAlgorithm):
                instance = algorithm_factory()
            else:
                instance = algorithm_factory(node)
            instance.node = node
            instance.node_id = network.node_id(node)
            instance.neighbors = tuple(network.neighbors(node))
            instance.neighbor_ids = {nbr: network.node_id(nbr)
                                     for nbr in instance.neighbors}
            instance.n = network.n
            instance.rng = random.Random(f"{self.seed}:{network.node_id(node)}")
            self.nodes[node] = instance

    def run(self, max_rounds: int = 10_000) -> SimulationResult:
        for instance in self.nodes.values():
            instance.initialize()

        total_messages = 0
        total_bits = 0
        edge_counts: dict[tuple[Node, Node], int] = {}
        rounds = 0

        for round_number in range(1, max_rounds + 1):
            if all(instance.halted for instance in self.nodes.values()):
                break
            rounds = round_number

            inboxes: dict[Node, dict[Node, Any]] = {node: {} for node in self.nodes}
            edge_load: dict[tuple[Node, Node], int] = {}
            any_message = False
            for node, instance in self.nodes.items():
                if instance.halted:
                    continue
                outbox = instance.send(round_number) or {}
                for neighbor, payload in outbox.items():
                    if payload is Ellipsis:
                        continue
                    if not self.network.has_edge(node, neighbor):
                        raise ValueError(
                            f"node {node!r} attempted to send to non-neighbor {neighbor!r}")
                    size = message_bits(payload)
                    key = ((node, neighbor) if str(node) <= str(neighbor)
                           else (neighbor, node))
                    edge_load[key] = edge_load.get(key, 0) + size
                    if self.enforce_bandwidth and size > self.network.bandwidth_bits:
                        raise BandwidthExceededError(
                            f"message of {size} bits from {node!r} to {neighbor!r} "
                            f"exceeds bandwidth {self.network.bandwidth_bits}")
                    inboxes[neighbor][node] = payload
                    edge_counts[key] = edge_counts.get(key, 0) + 1
                    total_messages += 1
                    total_bits += size
                    any_message = True

            for node, instance in self.nodes.items():
                if instance.halted:
                    continue
                instance.receive(round_number, inboxes[node])

            if not any_message and all(inst.halted for inst in self.nodes.values()):
                break

        for instance in self.nodes.values():
            instance.finalize()

        outputs = {node: instance.output for node, instance in self.nodes.items()}
        halted = all(instance.halted for instance in self.nodes.values())
        return SimulationResult(
            rounds=rounds,
            total_messages=total_messages,
            total_bits=total_bits,
            outputs=outputs,
            halted=halted,
            edge_message_counts=edge_counts,
            engine="legacy-monolith",
        )


# ------------------------------------------------------------------ workloads
def _algorithms(graph) -> list[tuple[str, Callable[[Node], NodeAlgorithm] | type, int]]:
    source = next(iter(graph.nodes()))
    return [
        ("luby-mis", LubyMISNode, 2_000),
        ("det-ruling", DetRulingSetNode, 4_000),
        ("beeping-mis",
         lambda node: BeepingMISNode(max_steps=600), 2_000),
        ("bfs-layering",
         lambda node: BFSLayering(is_source=(node == source)), 2_000),
    ]


def _check_agreement(name: str, results: Mapping[str, SimulationResult]) -> None:
    reference = results["legacy"]
    for scheduler, result in results.items():
        same = (result.outputs == reference.outputs
                and result.rounds == reference.rounds
                and result.total_messages == reference.total_messages
                and result.total_bits == reference.total_bits)
        if not same:
            raise AssertionError(
                f"{name}: scheduler {scheduler!r} disagrees with the legacy "
                f"baseline (rounds {result.rounds} vs {reference.rounds}, "
                f"messages {result.total_messages} vs {reference.total_messages})")


def experiment_throughput(*, smoke: bool = False) -> list[dict[str, object]]:
    sizes = [300] if smoke else [2000]
    repeats = 1 if smoke else 5
    seed = 1
    rows: list[dict[str, object]] = []
    for n in sizes:
        graph = random_regular_graph(n, 4, seed=seed)
        workload = f"regular(n={n},d=4)"
        for algo_name, factory, max_rounds in _algorithms(graph):
            network = CongestNetwork(graph, id_seed=seed)
            network.topology()  # build the snapshot once, outside the timing

            def make_legacy():
                return LegacySimulator(CongestNetwork(graph, id_seed=seed),
                                       factory, seed=seed)

            def make_layered(engine):
                return Simulator(network, factory, seed=seed, engine=engine)

            makers = {
                "legacy": make_legacy,
                "sync": lambda: make_layered("sync"),
                "active-set": lambda: make_layered("active-set"),
            }
            results: dict[str, SimulationResult] = {}
            samples: dict[str, list[float]] = {name: [] for name in makers}
            for make in makers.values():  # untimed warmup (caches, allocator)
                make().run(max_rounds)
            # Interleave the schedulers across repeats so CPU frequency
            # drift hits all three equally; the median per scheduler is
            # robust against a single lucky or throttled run.
            for _ in range(repeats):
                for name, make in makers.items():
                    rate, results[name] = time_rounds_per_sec(
                        make, max_rounds=max_rounds, repeats=1)
                    samples[name].append(rate)
            rates = {name: statistics.median(values)
                     for name, values in samples.items()}

            _check_agreement(f"{workload}/{algo_name}", results)
            speedup = (rates["active-set"] / rates["legacy"]
                       if rates["legacy"] else float("inf"))
            rows.append({
                "workload": workload,
                "algorithm": algo_name,
                "rounds": results["legacy"].rounds,
                "messages": results["legacy"].total_messages,
                "legacy_rps": round(rates["legacy"], 1),
                "sync_rps": round(rates["sync"], 1),
                "active_rps": round(rates["active-set"], 1),
                "speedup": round(speedup, 2),
            })
    return rows


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv or os.environ.get("SMOKE") == "1"
    rows = experiment_throughput(smoke=smoke)
    notes = ("rounds/sec, median of interleaved repeats; speedup = active-set "
             "vs the frozen pre-refactor loop. Outputs/rounds/messages "
             "verified identical across all three schedulers before timing "
             "counts.")
    if smoke:
        # Print only: a reduced smoke sweep must not overwrite the stored
        # full-sweep results that the perf trajectory cites.
        print()
        print(format_table(rows, title=f"[{EXPERIMENT_ID}/smoke]"))
        print(notes)
    else:
        print_and_store(EXPERIMENT_ID, rows, notes=notes)
    if not smoke:
        speedups = [float(row["speedup"]) for row in rows]
        geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
        worst = min(speedups)
        print(f"workload speedup: geomean {geomean:.2f}x, worst row {worst:.2f}x")
        if geomean < SPEEDUP_TARGET or worst < ROW_SPEEDUP_FLOOR:
            print(f"FAIL: target is geomean >= {SPEEDUP_TARGET}x with every "
                  f"row >= {ROW_SPEEDUP_FLOOR}x", file=sys.stderr)
            return 1
        print(f"OK: >= {SPEEDUP_TARGET}x (geomean) over the legacy simulator")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

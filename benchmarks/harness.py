"""Shared helpers for the benchmark harness.

Every benchmark module in this directory regenerates one experiment from
DESIGN.md's per-experiment index (the analogue of one of the paper's tables
or figures).  The modules follow a common pattern:

* an ``experiment_*()`` function runs the full parameter sweep, verifies the
  algorithm outputs, and returns a list of result rows;
* ``test_*`` functions expose representative configurations to
  ``pytest-benchmark`` (so ``pytest benchmarks/ --benchmark-only`` both times
  the algorithms and re-validates their outputs);
* running the module directly (``python benchmarks/bench_xyz.py``) prints the
  full sweep as a plain-text table and appends it to
  ``benchmarks/results/<experiment>.txt`` for inclusion in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
import os
import time
from typing import Any, Callable, Mapping, Sequence

import networkx as nx

from repro._paths import results_dir
from repro.analysis.tables import format_table
from repro.api import RunReport, solve
from repro.graphs.properties import max_degree
from repro.scenarios.registry import DEFAULT_REGISTRY

RESULTS_DIR = results_dir()

__all__ = [
    "RESULTS_DIR",
    "certify_report",
    "ensure_results_dir",
    "regular_workloads",
    "er_workloads",
    "mixed_workloads",
    "print_and_store",
    "polylog_bound",
    "run_solver",
    "theory_rounds",
    "time_rounds_per_sec",
]


def run_solver(graph: nx.Graph, algorithm: str, *, seed: int,
               **config: Any) -> RunReport:
    """Dispatch one certified solve through :mod:`repro.api`.

    The benchmark sweeps route through the same registry as the scenario
    runner and the CLI, so a benchmark row is always a certified
    ``RunReport`` -- ``report.verified`` is the row's validity column.
    Timed pytest-benchmark lambdas pass ``verify=False`` (the timer must
    measure the algorithm, not the certifier) and certify the produced
    report once afterwards with :func:`certify_report`.
    """
    return solve(graph, algorithm, seed=seed, **config)


def certify_report(graph: nx.Graph, report: RunReport):
    """Run the report's problem certifier on an unverified RunReport."""
    from repro.api import REGISTRY

    spec = REGISTRY.algorithm(report.algorithm)
    return REGISTRY.problem(spec.problem).certify(
        graph, report.output, config=dict(report.provenance.config),
        payload=report.payload)


def ensure_results_dir() -> str:
    """Create ``benchmarks/results/`` on demand (fresh checkout / CI safe)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def regular_workloads(sizes: Sequence[int], degree: int = 4, *, seed: int = 1,
                      ) -> list[tuple[str, nx.Graph]]:
    """Random regular graphs of the given sizes (the Table-1 style workload)."""
    build = DEFAULT_REGISTRY.family("regular").build
    return [(f"regular(n={n},d={degree})", build(n=n, degree=degree, seed=seed))
            for n in sizes]


def er_workloads(sizes: Sequence[int], expected_degree: float = 6.0, *, seed: int = 1,
                 ) -> list[tuple[str, nx.Graph]]:
    build = DEFAULT_REGISTRY.family("er").build
    return [(f"er(n={n},d~{expected_degree:g})",
             build(n=n, expected_degree=expected_degree, seed=seed))
            for n in sizes]


def mixed_workloads(n: int, *, seed: int = 1) -> list[tuple[str, nx.Graph]]:
    """One graph per family at a fixed size (used by quality-focused experiments)."""
    registry = DEFAULT_REGISTRY
    return [
        (f"regular(n={n})", registry.family("regular").build(n=n, degree=6, seed=seed)),
        (f"er(n={n})", registry.family("er").build(n=n, expected_degree=6.0, seed=seed)),
        (f"udg(n={n})", registry.family("udg").build(n=n, seed=seed)),
    ]


def print_and_store(experiment_id: str, rows: Sequence[Mapping[str, object]], *,
                    columns: Sequence[str] | None = None,
                    notes: str = "") -> str:
    """Format the experiment table, print it, and persist it under results/."""
    table = format_table(list(rows), columns=columns, title=f"[{experiment_id}]")
    if notes:
        table = f"{table}\n{notes}"
    print()
    print(table)
    ensure_results_dir()
    path = os.path.join(RESULTS_DIR, f"{experiment_id}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(table + "\n")
    return table


def polylog_bound(n: int, exponent: int = 2, scale: float = 1.0) -> float:
    """A reference ``scale * log^exponent(n)`` curve for shape comparisons."""
    return scale * (math.log2(max(2, n)) ** exponent)


def theory_rounds(algorithm: str, *, n: int, delta: int, k: int = 1,
                  beta: int = 2, c: int = 2) -> float:
    """The paper's round-complexity formulas (Table 1), used as reference curves.

    Constants are taken as 1; the experiments compare *shapes* (growth in
    ``n``, ``delta``, ``k``), not absolute values.
    """
    log_n = math.log2(max(2, n))
    log_d = math.log2(max(2, delta ** k))
    loglog_n = math.log2(max(2.0, log_n))
    formulas: dict[str, float] = {
        # Deterministic ruling sets.
        "new-det-ruling": (k ** 2) * (log_n ** 4) * log_d,
        "aglp-baseline": k * c * (n ** (1.0 / c)),
        "aglp-logn": k * log_n,
        # Randomized MIS.
        "luby-Gk": k * log_n,
        "new-mis-Gk": (k ** 2) * log_d * loglog_n + (k ** 4) * (loglog_n ** 5),
        "ghaffari-mis-G": log_d * loglog_n + loglog_n ** 5,
        # Ruling sets.
        "new-ruling-Gk": (beta * (k ** (1 + 1 / max(1, beta - 1)))
                          * (log_d ** (1 / max(1, beta - 1)))
                          + beta * k * loglog_n + (k ** 4) * (loglog_n ** 5)),
        "ghaffari-ruling-Gk": (k ** 2) * loglog_n,
        # Sparsification.
        "sparsification": (k ** 2) * (log_n ** 4) * log_d,
    }
    if algorithm not in formulas:
        raise KeyError(f"unknown reference formula {algorithm!r}")
    return formulas[algorithm]


def delta_of(graph: nx.Graph) -> int:
    return max_degree(graph)


def time_rounds_per_sec(make_simulator: Callable[[], Any], *,
                        max_rounds: int = 10_000, repeats: int = 3,
                        ) -> tuple[float, Any]:
    """Best-of-``repeats`` simulator throughput in rounds per second.

    ``make_simulator`` builds a fresh simulator (anything with a
    ``run(max_rounds)`` returning an object with ``.rounds``); building is
    excluded from the timed region, so the number measures the round loop,
    not snapshot/instance construction.  Returns ``(rounds_per_sec,
    last_result)`` -- the throughput benchmark uses the result to cross-check
    that all engines computed the same thing.
    """
    best = 0.0
    result = None
    for _ in range(max(1, repeats)):
        simulator = make_simulator()
        start = time.perf_counter()
        result = simulator.run(max_rounds)
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            best = max(best, result.rounds / elapsed)
    return best, result

"""Experiment F2 -- connectivity of ruling sets of connected sets (Figure 2, Lemma 7.2).

Lemma 7.2 (illustrated by Figure 2) states that any ``(alpha, beta)``-ruling
set ``R`` of an ``s``-connected set ``U`` is ``alpha``-independent and
``(s + 2*beta)``-connected.  The lemma is the linchpin of the shattering
analysis: it lets the post-shattering phase bound the size of the ruling sets
it computes (and its failure mode -- balls assigned across component
boundaries -- is exactly the flaw in the arXiv version of BEPS16 that
Section 7.3 discusses).

The benchmark samples random connected subsets ``U`` of random graphs,
computes greedy ``(alpha, alpha-1)``-ruling sets of them, and measures the
worst-case connectivity of the ruling sets, comparing it against the
``s + 2*beta`` bound.  It also reproduces the Section 7.3 cautionary example:
a ruling set computed on two *far-apart* components is NOT well-connected,
which is why the union bound of Lemma 7.5 (and not Lemma 7.3 (P1)) must be
used in that situation.
"""

from __future__ import annotations

import random
import sys

import pytest

from harness import print_and_store
from repro.graphs import erdos_renyi_graph, two_cluster_gadget
from repro.graphs.power import k_connected_components
from repro.mis.shattering import is_s_connected
from repro.ruling.greedy import greedy_ruling_set
from repro.ruling.verify import independence_radius

EXPERIMENT_ID = "F2-figure2-ruling-connectivity"


def _grow_connected_subset(graph, rng, target_size: int) -> set:
    start = rng.choice(sorted(graph.nodes()))
    subset = {start}
    frontier = [start]
    while frontier and len(subset) < target_size:
        node = frontier.pop(rng.randrange(len(frontier)))
        for neighbor in graph.neighbors(node):
            if neighbor not in subset:
                subset.add(neighbor)
                frontier.append(neighbor)
    return subset


def measured_connectivity(graph, subset) -> int:
    """The smallest ``c`` such that ``subset`` is ``c``-connected in ``G``."""
    if len(subset) <= 1:
        return 0
    c = 1
    while not is_s_connected(graph, subset, c):
        c += 1
        if c > graph.number_of_nodes():
            return c
    return c


def experiment_rows(trials: int = 8, alpha: int = 5, seed: int = 1) -> list[dict[str, object]]:
    rng = random.Random(seed)
    rows: list[dict[str, object]] = []
    beta = alpha - 1
    for trial in range(trials):
        # Sparse graphs with large diameter so the ruling sets have several
        # members (on dense small-diameter graphs a single ruler dominates
        # everything and the connectivity statement is vacuous).
        graph = erdos_renyi_graph(300, expected_degree=2.4, seed=seed + trial)
        subset = _grow_connected_subset(graph, rng, target_size=120)
        s = measured_connectivity(graph, subset)
        ruling = greedy_ruling_set(graph, alpha=alpha, targets=subset)
        connectivity = measured_connectivity(graph, ruling)
        rows.append({
            "trial": trial,
            "|U|": len(subset),
            "U_connectivity_s": s,
            "alpha": alpha,
            "beta": beta,
            "|R|": len(ruling),
            "R_independence": independence_radius(graph, ruling) if len(ruling) > 1 else alpha,
            "R_connectivity": connectivity,
            "bound_s+2beta": s + 2 * beta,
            "within_bound": connectivity <= s + 2 * beta,
        })
    return rows


def counterexample_row() -> dict[str, object]:
    """Section 7.3: two far-apart tiny components break the connectivity argument."""
    graph, left, right = two_cluster_gadget(cluster_size=5, bridge_length=30)
    targets = left | right
    ruling = greedy_ruling_set(graph, alpha=5, targets=targets)
    connectivity = measured_connectivity(graph, ruling)
    return {
        "trial": "section-7.3-counterexample",
        "|U|": len(targets),
        "U_connectivity_s": measured_connectivity(graph, targets),
        "alpha": 5,
        "beta": 4,
        "|R|": len(ruling),
        "R_independence": independence_radius(graph, ruling),
        "R_connectivity": connectivity,
        "bound_s+2beta": "n/a (U not connected)",
        "within_bound": "n/a",
    }


# --------------------------------------------------------------------------
# pytest entry points.
# --------------------------------------------------------------------------
def test_lemma_7_2_bound_holds():
    rows = experiment_rows(trials=6, seed=3)
    assert all(row["within_bound"] for row in rows)


def test_counterexample_is_far_from_connected():
    """When U itself is split into far-apart pieces, the ruling set cannot be
    9-connected -- the failure mode Section 7.3 warns about."""
    row = counterexample_row()
    assert row["|R|"] >= 2
    assert row["R_connectivity"] > 9


def test_ruling_set_connectivity_measurement(benchmark):
    graph = erdos_renyi_graph(120, expected_degree=5.0, seed=9)
    rng = random.Random(9)
    subset = _grow_connected_subset(graph, rng, target_size=40)
    ruling = greedy_ruling_set(graph, alpha=5, targets=subset)
    connectivity = benchmark(lambda: measured_connectivity(graph, ruling))
    # A singleton ruling set has connectivity 0 by convention.
    assert connectivity >= 1 or len(ruling) <= 1


def main() -> None:
    rows = experiment_rows()
    rows.append(counterexample_row())
    print_and_store(EXPERIMENT_ID, rows,
                    notes="Lemma 7.2: a (5,4)-ruling set of an s-connected set is "
                          "(s+8)-connected; the last row shows the Section-7.3 failure "
                          "mode when U is not connected.")


if __name__ == "__main__":
    sys.exit(main())

"""Experiment E-ND -- network decompositions with separation (Theorem A.1).

Theorem A.1 provides, for any ``k``, a network decomposition of ``G^k`` with
``O(log n loglog n)`` colors, weak diameter ``O(k log n)`` in ``G`` and
separation ``2k + 1``, in ``~O(k log^3 n)`` rounds.  The benchmark measures
the colour count, the weak diameter, the Steiner congestion and the charged
rounds of our decomposition across ``n`` and ``k`` (separation ``2k + 1``),
and verifies every decomposition.
"""

from __future__ import annotations

import math
import random
import sys

import pytest

from harness import delta_of, print_and_store
from repro.decomposition import network_decomposition
from repro.graphs import erdos_renyi_graph, random_regular_graph

EXPERIMENT_ID = "E-ND-network-decomposition"


def run_once(graph_name: str, graph, k: int, seed: int) -> dict[str, object]:
    from repro.congest.cost import RoundLedger
    ledger = RoundLedger()
    decomposition = network_decomposition(graph, separation=2 * k + 1,
                                          rng=random.Random(seed), ledger=ledger)
    decomposition.validate(graph)
    n = graph.number_of_nodes()
    return {
        "graph": graph_name,
        "n": n,
        "Delta": delta_of(graph),
        "k": k,
        "separation": 2 * k + 1,
        "colors": decomposition.num_colors,
        "ref O(log n loglog n)": round(math.log2(n) * math.log2(math.log2(n) + 1), 1),
        "clusters": len(decomposition.clusters),
        "max weak diameter": decomposition.max_weak_diameter,
        "ref O(k log n)": round(k * math.log2(n), 1),
        "steiner congestion": decomposition.steiner_congestion(),
        "rounds charged": ledger.total_rounds,
    }


def experiment_rows() -> list[dict[str, object]]:
    rows = []
    for n in (80, 160, 320):
        graph = random_regular_graph(n, 6, seed=n)
        rows.append(run_once(f"regular(n={n})", graph, 1, seed=n))
    for k in (1, 2, 3):
        graph = erdos_renyi_graph(160, expected_degree=6, seed=50 + k)
        rows.append(run_once(f"er(n=160)", graph, k, seed=50 + k))
    return rows


# --------------------------------------------------------------------------
# pytest entry points.
# --------------------------------------------------------------------------
@pytest.mark.parametrize("k", [1, 2])
def test_decomposition_valid_for_power_separation(k):
    graph = random_regular_graph(120, 6, seed=k)
    row = run_once("regular", graph, k, seed=k)
    assert row["colors"] >= 1
    assert row["max weak diameter"] >= 0


def test_diameter_grows_logarithmically():
    small = run_once("regular", random_regular_graph(80, 6, seed=1), 1, seed=1)
    large = run_once("regular", random_regular_graph(320, 6, seed=1), 1, seed=1)
    # Weak diameter ~ log n: quadrupling n adds a constant number of hops.
    assert large["max weak diameter"] <= small["max weak diameter"] + 14


@pytest.mark.parametrize("k", [1, 2])
def test_decomposition_runtime(benchmark, k):
    graph = random_regular_graph(160, 6, seed=3)
    decomposition = benchmark(lambda: network_decomposition(graph, separation=2 * k + 1,
                                                            rng=random.Random(3)))
    assert decomposition.num_colors >= 1


def main() -> None:
    rows = experiment_rows()
    print_and_store(EXPERIMENT_ID, rows,
                    notes="Separation-(2k+1) weak-diameter decompositions (Theorem A.1 "
                          "substitute): colors and diameters stay in the polylog regime.")


if __name__ == "__main__":
    sys.exit(main())

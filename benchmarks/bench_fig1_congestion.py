"""Experiment F1 -- tightness of the communication tools (Figure 1, Lemma 4.2).

Figure 1 of the paper shows a gadget in which the round / congestion bounds
of Lemma 4.2 are tight: with a sparse set ``Q`` of ``hat_delta`` nodes split
into two fans joined by a single central edge ``{v, w}``,

* a Broadcast from all of ``Q`` forces ``Theta(hat_delta)`` messages over the
  central edge, and
* a Q-message (individual messages between all pairs of ``Q`` nodes within
  distance ``s``) forces ``Theta(hat_delta^2 / 4)`` messages over it.

This benchmark builds the gadget for growing ``hat_delta``, routes both
primitives along the BFS trees of Lemma 4.1, and records the measured
central-edge congestion next to the two reference curves.
"""

from __future__ import annotations

import sys

import pytest

from harness import print_and_store
from repro.core.comm_tools import broadcast_from_q, learn_distance_ids, q_message
from repro.graphs import figure1_gadget

EXPERIMENT_ID = "F1-figure1-congestion"
HAT_DELTAS = (8, 16, 32, 64)
S = 3


def _central_edge(v, w):
    return (v, w) if str(v) <= str(w) else (w, v)


def run_gadget(hat_delta: int, s: int = S) -> dict[str, object]:
    graph, (v, w), q_nodes = figure1_gadget(hat_delta=hat_delta, s=s)
    tools = learn_distance_ids(graph, q_nodes, s)
    central = _central_edge(v, w)

    _, broadcast_congestion = broadcast_from_q(
        tools, {node: 1 for node in q_nodes}, message_bits=8, track_congestion=True)

    messages = {sender: {receiver: 1 for receiver in tools.q_neighborhoods[sender]}
                for sender in q_nodes}
    _, qmessage_congestion = q_message(tools, messages, message_bits=8,
                                       track_congestion=True)

    return {
        "hat_delta": hat_delta,
        "s": s,
        "n": graph.number_of_nodes(),
        "broadcast@{v,w}": broadcast_congestion.get(central, 0),
        "expected~hat_delta": hat_delta,
        "q_message@{v,w}": qmessage_congestion.get(central, 0),
        "expected~hat_delta^2/4": hat_delta * hat_delta // 4,
        "broadcast_rounds": tools.ledger.rounds_by_label().get("broadcast", 0),
        "q_message_rounds": tools.ledger.rounds_by_label().get("q-message", 0),
    }


def experiment_rows(hat_deltas=HAT_DELTAS) -> list[dict[str, object]]:
    return [run_gadget(hat_delta) for hat_delta in hat_deltas]


# --------------------------------------------------------------------------
# pytest entry points.
# --------------------------------------------------------------------------
@pytest.mark.parametrize("hat_delta", [16, 32])
def test_congestion_matches_figure1(hat_delta):
    row = run_gadget(hat_delta)
    # Broadcast congestion is exactly hat_delta (every Q node's broadcast
    # crosses the central edge once).
    assert row["broadcast@{v,w}"] == hat_delta
    # Q-message congestion is at least (hat_delta/2)^2: every left-fan node
    # talks to every right-fan node across the central edge.
    assert row["q_message@{v,w}"] >= (hat_delta // 2) ** 2


def test_congestion_scaling_is_linear_vs_quadratic():
    rows = experiment_rows(hat_deltas=(8, 32))
    small, large = rows
    factor = large["hat_delta"] / small["hat_delta"]
    broadcast_growth = large["broadcast@{v,w}"] / max(1, small["broadcast@{v,w}"])
    qmessage_growth = large["q_message@{v,w}"] / max(1, small["q_message@{v,w}"])
    assert broadcast_growth == pytest.approx(factor, rel=0.2)
    assert qmessage_growth == pytest.approx(factor ** 2, rel=0.3)


def test_figure1_gadget_construction(benchmark):
    graph, _, q_nodes = benchmark(lambda: figure1_gadget(hat_delta=64, s=3))
    assert len(q_nodes) == 64


def test_q_message_routing(benchmark):
    graph, (v, w), q_nodes = figure1_gadget(hat_delta=32, s=3)
    tools = learn_distance_ids(graph, q_nodes, 3)
    messages = {sender: {receiver: 1 for receiver in tools.q_neighborhoods[sender]}
                for sender in q_nodes}

    def run():
        return q_message(tools, messages, message_bits=8, track_congestion=True)

    deliveries, congestion = benchmark(run)
    assert congestion


def main() -> None:
    rows = experiment_rows()
    print_and_store(EXPERIMENT_ID, rows,
                    notes="Lemma 4.2 is tight: broadcast congestion ~ hat_delta, "
                          "Q-message congestion ~ hat_delta^2 / 4 over the central edge.")


if __name__ == "__main__":
    sys.exit(main())

"""Experiment E-DERAND -- ablation: randomized sampling vs. derandomization.

Section 5 derives the deterministic sparsification by derandomizing the
sampling algorithm.  This ablation compares, on the same workloads,

* Algorithm 1 (randomized sampling, k-wise-independent driven),
* DetSparsification with the exact per-variable conditional expectations
  (the simulation default),
* DetSparsification with the faithful seed-bit procedure of Claim 5.6
  (estimated conditional expectations, verified output),

reporting output quality (max Q-degree, domination excess), the number of
per-stage bad events left by the randomized variant, and wall-clock time.
The derandomized variants must report zero residual bad events -- that is
the whole point of Claim 5.6 -- while the randomized variant is allowed a
tiny (w.h.p. zero) number.
"""

from __future__ import annotations

import math
import random
import sys
import time

import pytest

from harness import delta_of, print_and_store
from repro.core import check_sparsification
from repro.core.detsparsify import det_sparsification
from repro.graphs import random_regular_graph

EXPERIMENT_ID = "E-DERAND-ablation"
METHOD_LABELS = {
    "randomized": "Algorithm 1 (sampling)",
    "per-variable": "DetSparsification (per-variable cond. exp.)",
    "seed-bits": "DetSparsification (Claim 5.6 seed bits)",
}


def run_once(graph, method: str, seed: int, k: int = 2) -> dict[str, object]:
    """Run the k-iteration power-graph sparsification with the given per-stage method.

    The single-graph DetSparsification only has stages to derandomize when
    ``Delta_A > 32 ln n``; the power-graph pipeline always reaches that
    regime from iteration 2 on (``Delta_A = 72 Delta ln n``), so the ablation
    compares the methods where they actually differ.
    """
    from repro.core import check_power_sparsification, power_graph_sparsification

    start = time.perf_counter()
    result = power_graph_sparsification(graph, k, method=method, rng=random.Random(seed))
    elapsed = time.perf_counter() - start
    check = check_power_sparsification(graph, set(graph.nodes()), result.q, k)
    stage_violations = 0
    # Residual bad events are only tracked per DetSparsification call; the
    # power pipeline reports quality through the invariant check instead, so
    # re-run the inner call on the last iteration's input for the event count.
    delta_a = 72.0 * max(1, delta_of(graph)) * math.log(max(2, graph.number_of_nodes()))
    inner = det_sparsification(graph, active=result.sequence[k - 1], power=k,
                               method=method, rng=random.Random(seed),
                               seed_bit_samples=2, delta_a=delta_a)
    stage_violations = inner.total_violations
    return {
        "method": METHOD_LABELS[method],
        "n": graph.number_of_nodes(),
        "Delta": delta_of(graph),
        "k": k,
        "|Q|": check.q_size,
        "max d_k(v,Q)": check.max_q_degree,
        "degree bound": round(check.q_degree_bound, 1),
        "domination excess": check.max_domination,
        "residual bad events": stage_violations,
        "rounds": result.rounds,
        "wall-clock s": round(elapsed, 3),
        "valid": check.ok,
    }


def experiment_rows() -> list[dict[str, object]]:
    rows = []
    big = random_regular_graph(150, 8, seed=1)
    small = random_regular_graph(48, 6, seed=2)
    for method in ("randomized", "per-variable"):
        rows.append(run_once(big, method, seed=7))
    # The seed-bit procedure enumerates / samples hash-function completions per
    # bit; run it on the smaller workload (it is the faithful but slow variant).
    for method in ("randomized", "per-variable", "seed-bits"):
        rows.append(run_once(small, method, seed=8))
    return rows


# --------------------------------------------------------------------------
# pytest entry points.
# --------------------------------------------------------------------------
def test_derandomized_variants_have_zero_bad_events():
    small = random_regular_graph(48, 8, seed=3)
    for method in ("per-variable", "seed-bits"):
        row = run_once(small, method, seed=3)
        assert row["residual bad events"] == 0
        assert row["valid"]


def test_quality_comparable_across_methods():
    graph = random_regular_graph(120, 8, seed=4)
    randomized = run_once(graph, "randomized", seed=4)
    derandomized = run_once(graph, "per-variable", seed=4)
    assert randomized["valid"] and derandomized["valid"]
    # The derandomized run never exceeds the bound; the randomized run stays
    # in the same ballpark (within the 72 ln n budget).
    assert derandomized["max d_k(v,Q)"] <= derandomized["degree bound"]


@pytest.mark.parametrize("method", ["randomized", "per-variable"])
def test_sparsification_method_runtime(benchmark, method):
    graph = random_regular_graph(160, 24, seed=5)
    result = benchmark(lambda: det_sparsification(graph, method=method,
                                                  rng=random.Random(5)))
    assert check_sparsification(graph, set(graph.nodes()), result.q).ok


def test_seed_bits_runtime(benchmark):
    graph = random_regular_graph(40, 8, seed=6)
    result = benchmark.pedantic(
        lambda: det_sparsification(graph, method="seed-bits", rng=random.Random(6),
                                   seed_bit_samples=2),
        rounds=1, iterations=1)
    assert check_sparsification(graph, set(graph.nodes()), result.q).ok


def main() -> None:
    rows = experiment_rows()
    print_and_store(EXPERIMENT_ID, rows,
                    notes="Derandomization ablation: both deterministic variants leave zero "
                          "bad events; the randomized sampler meets the bounds w.h.p. and is "
                          "the cheapest, exactly as the paper's derivation suggests.")


if __name__ == "__main__":
    sys.exit(main())

"""Experiment E-SHAT -- the shattering MIS of G (Theorem 1.4, Lemma 7.3).

Measured quantities:

* the size of the largest residual component after ``Theta(log Delta)``
  pre-shattering steps, compared with the Lemma 7.3 (P2) reference
  ``log_Delta(n) * Delta^4`` (the measured values are far below the bound --
  the bound is worst-case);
* the number of undecided nodes and residual components as the pre-shattering
  budget grows;
* total rounds of the complete algorithm (both post-shattering approaches)
  as ``Delta`` grows at fixed ``n`` -- the ``O(log Delta) + poly loglog n``
  shape of Theorem 1.4.
"""

from __future__ import annotations

import random
import sys

import networkx as nx
import pytest

from harness import delta_of, print_and_store
from repro.graphs import random_regular_graph
from repro.mis.shattering import component_size_bound, pre_shattering, shattering_mis
from repro.ruling import is_mis_of_power_graph

EXPERIMENT_ID = "E-SHAT-shattering"


def shattering_row(n: int, degree: int, steps_scale: int, seed: int) -> dict[str, object]:
    graph = random_regular_graph(n, degree, seed=seed)
    mis, undecided = pre_shattering(graph, rng=random.Random(seed), scale=steps_scale)
    components = [len(component)
                  for component in nx.connected_components(graph.subgraph(undecided))]
    return {
        "n": n,
        "Delta": delta_of(graph),
        "pre-shattering scale": steps_scale,
        "|MIS so far|": len(mis),
        "undecided |B|": len(undecided),
        "residual components": len(components),
        "max component": max(components, default=0),
        "P2 reference t*Delta^4": round(component_size_bound(n, degree)),
    }


def rounds_row(n: int, degree: int, approach: str, seed: int) -> dict[str, object]:
    graph = random_regular_graph(n, degree, seed=seed)
    result = shattering_mis(graph, approach=approach, rng=random.Random(seed))
    assert is_mis_of_power_graph(graph, result.mis, 1)
    return {
        "n": n,
        "Delta": delta_of(graph),
        "approach": approach,
        "rounds": result.rounds,
        "max residual component": result.max_component_size,
        "|MIS|": len(result.mis),
        "max |R_C|": max(result.ruling_set_sizes, default=0),
    }


def experiment_rows() -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    for steps_scale in (1, 2, 4, 8):
        rows.append(shattering_row(400, 8, steps_scale, seed=steps_scale))
    for degree in (4, 8, 16, 32):
        rows.append(rounds_row(256, degree, "two-phase", seed=degree))
    for approach in ("two-phase", "one-phase"):
        rows.append(rounds_row(256, 8, approach, seed=99))
    return rows


# --------------------------------------------------------------------------
# pytest entry points.
# --------------------------------------------------------------------------
def test_components_below_p2_bound():
    row = shattering_row(400, 8, steps_scale=8, seed=1)
    assert row["max component"] <= row["P2 reference t*Delta^4"]


def test_longer_preshattering_shrinks_residue():
    short = shattering_row(300, 8, steps_scale=1, seed=2)
    long = shattering_row(300, 8, steps_scale=8, seed=2)
    assert long["undecided |B|"] <= short["undecided |B|"]


def test_rounds_stay_within_log_delta_budget_and_flat_in_n():
    import math
    low = rounds_row(256, 4, "two-phase", seed=3)
    high = rounds_row(256, 32, "two-phase", seed=3)
    small = rounds_row(128, 8, "two-phase", seed=4)
    large = rounds_row(512, 8, "two-phase", seed=4)
    # The pre-shattering budget is Theta(log Delta) steps; the run may stop
    # earlier once every node is decided, so we check the budget (upper
    # bound), not monotonicity, in Delta ...
    for row in (low, high):
        budget_rounds = 2 * 8 * math.ceil(math.log2(row["Delta"]))
        assert row["rounds"] <= budget_rounds + 200  # + post-shattering slack
    # ... while 4x the nodes costs (nearly) nothing extra beyond loglog terms.
    assert large["rounds"] <= 2 * small["rounds"]


def test_both_approaches_valid_and_comparable():
    two = rounds_row(256, 8, "two-phase", seed=5)
    one = rounds_row(256, 8, "one-phase", seed=5)
    assert one["|MIS|"] > 0 and two["|MIS|"] > 0


@pytest.mark.parametrize("approach", ["two-phase", "one-phase"])
def test_shattering_runtime(benchmark, approach):
    graph = random_regular_graph(256, 8, seed=6)
    result = benchmark(lambda: shattering_mis(graph, approach=approach,
                                              rng=random.Random(6)))
    assert is_mis_of_power_graph(graph, result.mis, 1)


def test_pre_shattering_runtime(benchmark):
    graph = random_regular_graph(400, 8, seed=7)
    mis, undecided = benchmark(lambda: pre_shattering(graph, rng=random.Random(7)))
    assert len(mis) > 0


def main() -> None:
    rows = experiment_rows()
    print_and_store(EXPERIMENT_ID, rows,
                    notes="Lemma 7.3 (P2): residual components stay far below t*Delta^4; "
                          "Theorem 1.4: rounds grow with log Delta, not with n.")


if __name__ == "__main__":
    sys.exit(main())

"""Experiment E-SPARS -- the power-graph sparsification (Lemma 3.1 / 5.1).

For every workload the benchmark runs the deterministic power-graph
sparsification and records the two quality metrics that Lemma 3.1 bounds:

* the maximum distance-``k`` ``Q``-degree (paper bound: ``72 log n``),
* the worst domination excess ``dist(v, Q) - dist(v, Q_0)``
  (paper bound: ``k^2 + k``),

together with the charged CONGEST rounds (paper: ``O(diam * k log^2 n log D
+ k^2 log D)``, Lemma 3.1) -- so the scaling of rounds in ``n`` and ``k`` can
be compared against the formula.
"""

from __future__ import annotations

import sys

import pytest

from harness import delta_of, mixed_workloads, print_and_store, regular_workloads
from repro.core import check_power_sparsification, power_graph_sparsification
from repro.core.events import degree_bound

EXPERIMENT_ID = "E-SPARS-sparsification"


def run_once(graph_name: str, graph, k: int) -> dict[str, object]:
    result = power_graph_sparsification(graph, k)
    check = check_power_sparsification(graph, set(graph.nodes()), result.q, k)
    return {
        "graph": graph_name,
        "n": graph.number_of_nodes(),
        "Delta": delta_of(graph),
        "k": k,
        "|Q|": check.q_size,
        "max d_k(v,Q)": check.max_q_degree,
        "bound 72 ln n": round(degree_bound(graph.number_of_nodes()), 1),
        "max domination excess": check.max_domination,
        "bound k^2+k": k * k + k,
        "rounds": result.rounds,
        "valid": check.ok,
    }


def experiment_rows() -> list[dict[str, object]]:
    rows = []
    for k in (1, 2, 3):
        for graph_name, graph in mixed_workloads(150, seed=k):
            rows.append(run_once(graph_name, graph, k))
    for graph_name, graph in regular_workloads((80, 160, 320), degree=6, seed=5):
        rows.append(run_once(graph_name, graph, 2))
    return rows


# --------------------------------------------------------------------------
# pytest entry points.
# --------------------------------------------------------------------------
@pytest.mark.parametrize("k", [1, 2, 3])
def test_sparsification_bounds_hold(k):
    name, graph = regular_workloads([120], degree=6, seed=k)[0]
    row = run_once(name, graph, k)
    assert row["valid"]
    assert row["max d_k(v,Q)"] <= row["bound 72 ln n"]
    assert row["max domination excess"] <= row["bound k^2+k"]


def test_rounds_grow_mildly_with_n():
    """Rounds are polylog in n (times diam): quadrupling n must not quadruple rounds."""
    small = run_once(*regular_workloads([80], degree=6, seed=7)[0], k=2)
    large = run_once(*regular_workloads([320], degree=6, seed=7)[0], k=2)
    assert large["rounds"] / max(1, small["rounds"]) < 4


@pytest.mark.parametrize("k", [1, 2])
def test_sparsification_runtime(benchmark, k):
    name, graph = regular_workloads([120], degree=6, seed=1)[0]
    result = benchmark(lambda: power_graph_sparsification(graph, k))
    assert check_power_sparsification(graph, set(graph.nodes()), result.q, k).ok


def main() -> None:
    rows = experiment_rows()
    print_and_store(EXPERIMENT_ID, rows,
                    notes="Lemma 3.1: d_k(v, Q) <= 72 ln n and domination excess <= k^2 + k "
                          "for every node; both hold on every workload.")


if __name__ == "__main__":
    sys.exit(main())

"""Experiment F3 -- distance-k ball graphs (Figure 3, Lemma 8.3).

Figure 3 illustrates the distance-``k`` ball graph: balls around ruling-set
nodes are extended by disjoint borders so that balls within distance ``k`` of
each other in ``G`` become close in the virtual graph.  The benchmark builds
the construction on shattered residual graphs (the situation in which
Theorem 1.2 uses it) and measures:

* validity (disjoint extended balls, adjacency preservation),
* the number of ball-graph components vs. the number of residual components,
* the weak diameter of the balls (paper: ``O(k^2 log log n)`` from the
  ruling-set Steiner trees; our greedy partition gives ``O(k)``-radius balls).
"""

from __future__ import annotations

import math
import random
import sys

import pytest

from harness import delta_of, print_and_store
from repro.decomposition import form_distance_k_ball_graph
from repro.graphs import random_regular_graph
from repro.graphs.power import bounded_bfs, distance_neighborhood, k_connected_components
from repro.mis.beeping import BeepingMISProcess
from repro.ruling.greedy import greedy_ruling_set

EXPERIMENT_ID = "F3-figure3-ball-graph"


def shattered_instance(n: int, degree: int, k: int, seed: int):
    """Run a truncated pre-shattering pass to obtain undecided nodes B."""
    graph = random_regular_graph(n, degree, seed=seed)
    nodes = set(graph.nodes())
    adjacency = {node: distance_neighborhood(graph, node, k, restrict_to=nodes)
                 for node in nodes}
    process = BeepingMISProcess(adjacency, rng=random.Random(seed))
    process.run(max(2, int(math.log2(degree ** k))))
    return graph, process.undecided


def build_ball_graph(graph, undecided, k: int):
    ruling = greedy_ruling_set(graph, alpha=5 * k + 1, targets=undecided)
    balls = {ruler: {ruler} for ruler in ruling}
    for node in undecided:
        if node in ruling:
            continue
        distances = bounded_bfs(graph, node, graph.number_of_nodes())
        closest = min(ruling, key=lambda r: (distances.get(r, 10 ** 9), str(r)))
        balls[closest].add(node)
    return ruling, balls, form_distance_k_ball_graph(graph, balls, k=k, undecided=undecided)


def experiment_rows(configs=((300, 4, 2), (400, 4, 2), (300, 4, 3)), seed: int = 1
                    ) -> list[dict[str, object]]:
    import networkx as nx
    rows = []
    for n, degree, k in configs:
        graph, undecided = shattered_instance(n, degree, k, seed)
        if not undecided:
            rows.append({"n": n, "Delta": degree, "k": k, "|B|": 0, "note": "fully decided"})
            continue
        ruling, balls, ball_graph = build_ball_graph(graph, undecided, k)
        ball_graph.validate(graph)
        residual_components = k_connected_components(graph, undecided, k)
        ball_components = list(nx.connected_components(ball_graph.graph))
        rows.append({
            "n": n,
            "Delta": delta_of(graph),
            "k": k,
            "|B|": len(undecided),
            "|R| (ball centers)": len(ruling),
            "residual G^k components": len(residual_components),
            "ball-graph components": len(ball_components),
            "max ball weak diameter": ball_graph.weak_diameter(graph),
            "valid": True,
        })
    return rows


# --------------------------------------------------------------------------
# pytest entry points.
# --------------------------------------------------------------------------
def test_ball_graph_is_valid_on_shattered_instance():
    graph, undecided = shattered_instance(120, 6, 2, seed=5)
    if not undecided:
        pytest.skip("pre-shattering decided everything")
    _, _, ball_graph = build_ball_graph(graph, undecided, 2)
    ball_graph.validate(graph)


def test_ball_graph_components_refine_residual_components():
    """Every ball-graph component maps into a single residual G^k component
    (the converse need not hold, but components never merge across them)."""
    import networkx as nx
    graph, undecided = shattered_instance(140, 8, 2, seed=6)
    if not undecided:
        pytest.skip("pre-shattering decided everything")
    ruling, balls, ball_graph = build_ball_graph(graph, undecided, 2)
    residual = k_connected_components(graph, undecided, 2)
    component_of = {}
    for index, component in enumerate(residual):
        for node in component:
            component_of[node] = index
    for ball_component in nx.connected_components(ball_graph.graph):
        indices = {component_of[center] for center in ball_component}
        assert len(indices) == 1


def test_ball_graph_construction(benchmark):
    graph, undecided = shattered_instance(120, 6, 2, seed=7)
    if not undecided:
        pytest.skip("pre-shattering decided everything")
    result = benchmark(lambda: build_ball_graph(graph, undecided, 2))
    assert result[2].centers


def main() -> None:
    rows = experiment_rows()
    print_and_store(EXPERIMENT_ID, rows,
                    notes="Lemma 8.3: extended balls are disjoint and preserve distance-k "
                          "adjacency; components of the ball graph can be finished "
                          "independently in the post-shattering phase.")


if __name__ == "__main__":
    sys.exit(main())

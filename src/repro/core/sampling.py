"""Algorithm 1: randomized sparsification via sampling (Section 5.1).

The algorithm consists of ``r = floor(log Delta_A - log log n) - 5`` stages.
In stage ``i`` every active node joins ``M_i`` with probability
``24 * 2^i * log n / Delta_A`` (the decisions only need to be
``8 log n``-wise independent); sampled nodes and their distance-2
neighborhood (in the graph the stage runs on -- ``G^s`` for the power-graph
variant) are deactivated.  After ``r`` stages the remaining active nodes are
added to the output.  The result ``Q`` 2-dominates the initial active set and
every node of ``G`` has at most ``72 log n`` neighbors in ``Q``
(Lemma 5.1, with high probability).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Hashable, Mapping

import networkx as nx

from repro.congest.cost import RoundLedger
from repro.core.events import SparsificationStageEvents, stage_count
from repro.graphs.power import distance_neighborhood
from repro.hashing.kwise import KWiseHashFamily

Node = Hashable

__all__ = ["RandomizedStageRecord", "RandomizedSparsificationResult",
           "randomized_sparsification", "sample_stage"]


@dataclass
class RandomizedStageRecord:
    """What happened in one stage (for the ablation benchmark / tests)."""

    stage: int
    probability: float
    active_before: int
    sampled: set[Node]
    deactivated: set[Node]
    phi_violations: set[Node]
    psi_violations: set[Node]


@dataclass
class RandomizedSparsificationResult:
    """Output of :func:`randomized_sparsification`."""

    q: set[Node]
    stages: list[RandomizedStageRecord] = field(default_factory=list)
    ledger: RoundLedger = field(default_factory=RoundLedger)

    @property
    def rounds(self) -> int:
        return self.ledger.total_rounds


def sample_stage(events: SparsificationStageEvents, rng: random.Random, *,
                 node_ids: Mapping[Node, int] | None = None,
                 use_kwise: bool = True) -> set[Node]:
    """Sample one stage's ``M_i`` from the active nodes.

    When ``use_kwise`` is true the decisions are driven by a random member of
    an ``8 log n``-wise independent hash family over the node IDs (exactly the
    randomness the derandomization of Section 5.2 later fixes); otherwise the
    decisions are fully independent coin flips.
    """
    if not events.active:
        return set()
    if not use_kwise:
        return {node for node in events.active if rng.random() < events.probability}
    if node_ids is None:
        node_ids = {node: index + 1 for index, node in
                    enumerate(sorted(events.active, key=str))}
    # 8 log n-wise independence, capped so the polynomial degree stays
    # moderate in simulation; the quality guarantees in the tests are checked
    # against the *output*, not against the independence parameter.
    independence = max(2, min(8 * max(1, int(round(math.log2(max(2, events.n))))), 64))
    family = KWiseHashFamily(independence=independence,
                             domain=max(node_ids.values()) + 1,
                             output_range=2 ** 20)
    hash_function = family.sample(rng)
    return events.evaluate_with_hash(hash_function, node_ids)


def randomized_sparsification(graph: nx.Graph, active: set[Node] | None = None, *,
                              delta_a: float | None = None,
                              power: int = 1,
                              rng: random.Random | None = None,
                              use_kwise: bool = True,
                              node_ids: Mapping[Node, int] | None = None,
                              ledger: RoundLedger | None = None,
                              neighborhoods: Mapping[Node, set[Node]] | None = None,
                              ) -> RandomizedSparsificationResult:
    """Algorithm 1 run on ``G^power`` with communication network ``G``.

    Parameters
    ----------
    graph:
        The communication graph ``G``.
    active:
        The initially active set ``A`` (default: all nodes).
    delta_a:
        The parameter ``Delta_A >= max_v d_s(v, A)``.  Computed from the
        graph when omitted.
    power:
        The power ``s``; degrees, neighborhoods and the distance-2
        deactivation are measured in ``G^power``.
    rng:
        Source of randomness (default: a fresh ``random.Random(0)``).
    use_kwise:
        Drive the sampling with a k-wise independent hash family (as in the
        paper) instead of fully independent coins.
    node_ids:
        Node identifiers used by the hash family; defaults to an arbitrary
        consecutive numbering.
    ledger:
        Round ledger to charge; a fresh one is created when omitted.  Each
        stage costs 2 rounds on ``G^power`` = ``2 * power`` rounds on ``G``
        (Lemma 5.4: sampling is local, deactivation flags travel 2 hops in
        ``G^s``).
    neighborhoods:
        Optional precomputed ``v -> N^power(v) ∩ A`` map.
    """
    rng = rng or random.Random(0)
    ledger = ledger if ledger is not None else RoundLedger()
    active = set(graph.nodes()) if active is None else set(active)
    if node_ids is None:
        node_ids = {node: index + 1 for index, node in enumerate(sorted(graph.nodes(), key=str))}

    if neighborhoods is None:
        neighborhoods = {node: distance_neighborhood(graph, node, power, restrict_to=active)
                         for node in graph.nodes()}

    if delta_a is None:
        delta_a = max((len(neighbors) for neighbors in neighborhoods.values()), default=0)
    delta_a = max(1.0, float(delta_a))

    result = RandomizedSparsificationResult(q=set(), ledger=ledger)
    current_active = set(active)
    r = stage_count(delta_a, graph.number_of_nodes())

    for stage in range(1, r + 1):
        events = SparsificationStageEvents(graph=graph, active=current_active,
                                           stage=stage, delta_a=delta_a, power=power,
                                           neighborhoods=neighborhoods)
        sampled = sample_stage(events, rng, node_ids=node_ids, use_kwise=use_kwise)
        phi, psi = events.bad_events(sampled)

        # Deactivate sampled nodes and their distance-2 neighborhood in G^s.
        deactivated = set(sampled)
        for node in sampled:
            deactivated |= distance_neighborhood(graph, node, 2 * power,
                                                 restrict_to=current_active)
        deactivated &= current_active

        result.stages.append(RandomizedStageRecord(
            stage=stage, probability=events.probability,
            active_before=len(current_active), sampled=set(sampled),
            deactivated=deactivated, phi_violations=phi, psi_violations=psi))
        result.q |= sampled
        current_active -= deactivated
        ledger.charge_flooding(2 * power, label=f"stage-{stage}-deactivation")

    # The remaining active nodes join Q (M_{r+1} = H_{r+1}).
    result.q |= current_active
    return result

"""Derandomizing one sparsification stage (Section 5.2, Claim 5.6).

The paper derandomizes the sampling of one stage with the method of
conditional expectations applied to the ``gamma = Theta(log^2 n)`` random
bits that select an ``8 log n``-wise independent hash function: the bits are
fixed one by one, each time choosing the value that minimises the expected
number of bad events ``sum_v Phi_v + Psi_v``, where the per-node conditional
expectations are aggregated at a leader via a convergecast over a spanning
BFS tree (Claim 5.6).  Because no event has probability more than ``1/n^3``,
the initial expectation is below 1 and the final (fully determined) seed
makes no event occur.

This module implements two derandomizers for one stage:

:func:`derandomize_stage_seed_bits`
    The faithful bit-by-bit procedure.  Exact conditional expectations over
    a ``2^{gamma}``-sized seed space are not computable on real hardware
    (the paper's nodes have unbounded local computation), so conditional
    expectations are *estimated* by averaging over random completions of the
    current prefix (exact enumeration is used automatically once the number
    of remaining bits is small).  The resulting sampled set is verified
    against the events and repaired with
    :func:`derandomize_stage_per_variable` in the (rare) case a bad event
    survived the estimation error.

:func:`derandomize_stage_per_variable`
    An exact derandomizer that applies the method of conditional
    expectations directly to the per-node sampling decisions ``X_v`` (in ID
    order), using closed-form conditional expectations (a binomial tail for
    ``Psi`` and a product for ``Phi``).  It is deterministic, runs in
    ``O(sum_v d_s(v, H_i))`` time, and provably ends with zero bad events
    whenever the initial expectation is below 1 -- which Lemma 5.4's bounds
    guarantee.  It is the default used inside DetSparsification; the
    experiments charge rounds according to the paper's seed-bit procedure
    either way (see DESIGN.md, substitution 4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Hashable, Mapping

from repro.core.events import SparsificationStageEvents
from repro.hashing.kwise import KWiseHashFamily, KWiseHashFunction
from repro.hashing.seeds import BitSeed

Node = Hashable

__all__ = [
    "DerandomizationOutcome",
    "derandomize_stage_per_variable",
    "derandomize_stage_seed_bits",
]


@dataclass
class DerandomizationOutcome:
    """The sampled set chosen by a derandomizer, plus diagnostics."""

    sampled: set[Node]
    method: str
    seed: BitSeed | None = None
    repaired: bool = False
    bits_fixed: int = 0
    residual_phi: set[Node] = field(default_factory=set)
    residual_psi: set[Node] = field(default_factory=set)

    @property
    def clean(self) -> bool:
        """True iff no bad event occurs for the chosen sampled set."""
        return not self.residual_phi and not self.residual_psi


# --------------------------------------------------------------------------
# Exact per-variable method of conditional expectations.
# --------------------------------------------------------------------------
def derandomize_stage_per_variable(events: SparsificationStageEvents,
                                   order: list[Node] | None = None,
                                   ) -> DerandomizationOutcome:
    """Fix the sampling decisions ``X_v`` one at a time, greedily.

    The decision order defaults to sorted-by-string node order (any fixed
    order works; the guarantee only needs the conditional expectation to be
    non-increasing).  For each variable the conditional expectation of the
    affected events is computed exactly for both choices and the smaller one
    is kept.
    """
    active_order = order if order is not None else sorted(events.active, key=str)
    fixed: dict[Node, bool] = {}

    for variable in active_order:
        if variable in fixed:
            continue
        affected = events.dependent_nodes(variable)

        fixed[variable] = False
        expectation_if_zero = events.total_expectation(fixed, nodes=affected)
        fixed[variable] = True
        expectation_if_one = events.total_expectation(fixed, nodes=affected)

        # Strictly smaller wins; ties (in particular the common case where
        # both conditional expectations underflow to 0.0 because many
        # variables are still free) keep the node unsampled, which keeps the
        # output sparse -- the expectation argument re-engages as soon as the
        # remaining slack becomes representable.
        fixed[variable] = expectation_if_one < expectation_if_zero

    sampled = {node for node, decision in fixed.items() if decision}
    phi, psi = events.bad_events(sampled)
    return DerandomizationOutcome(sampled=sampled, method="per-variable",
                                  residual_phi=phi, residual_psi=psi)


# --------------------------------------------------------------------------
# Faithful bit-by-bit seed fixing (Claim 5.6).
# --------------------------------------------------------------------------
def _estimate_expectation(events: SparsificationStageEvents,
                          family: KWiseHashFamily,
                          node_ids: Mapping[Node, int],
                          prefix: BitSeed,
                          rng: random.Random,
                          samples: int) -> float:
    """Estimate ``E[sum_v Phi_v + Psi_v | seed prefix]``.

    Averages the exact (deterministic) event count over ``samples`` random
    completions of the prefix; when few bits remain, enumerates all
    completions exactly.
    """
    remaining = family.seed_bits - len(prefix)
    completions: list[BitSeed] = []
    if remaining <= 0:
        completions.append(prefix)
    elif 2 ** remaining <= samples:
        for value in range(2 ** remaining):
            bits = [(value >> shift) & 1 for shift in range(remaining - 1, -1, -1)]
            completions.append(BitSeed(list(prefix) + bits))
    else:
        for _ in range(samples):
            bits = [rng.randrange(2) for _ in range(remaining)]
            completions.append(BitSeed(list(prefix) + bits))

    total = 0.0
    for completion in completions:
        hash_function = family.from_seed(completion)
        sampled = events.evaluate_with_hash(hash_function, node_ids)
        phi, psi = events.bad_events(sampled)
        total += len(phi) + len(psi)
    return total / max(1, len(completions))


def derandomize_stage_seed_bits(events: SparsificationStageEvents,
                                node_ids: Mapping[Node, int],
                                *,
                                independence: int | None = None,
                                samples_per_bit: int = 8,
                                rng: random.Random | None = None,
                                repair: bool = True,
                                ) -> DerandomizationOutcome:
    """Claim 5.6: fix the seed of a k-wise independent hash family bit by bit.

    Parameters
    ----------
    events:
        The stage's event system.
    node_ids:
        The O(log n)-bit identifiers hashed by the family.
    independence:
        Independence parameter of the family (default: a small constant so
        the simulation stays fast; the paper uses ``8 log n``).
    samples_per_bit:
        Number of random completions used to estimate each conditional
        expectation.  The estimation error is irrelevant in practice because
        every completion is itself a valid random seed whose bad-event count
        is almost surely zero; the verification + repair step below keeps the
        output guarantee unconditional.
    rng:
        Randomness for the estimation (NOT for the output: the chosen seed is
        a deterministic function of the estimates).
    repair:
        When true, fall back to the exact per-variable derandomizer if the
        chosen seed leaves a bad event.
    """
    rng = rng or random.Random(0)
    if not events.active:
        return DerandomizationOutcome(sampled=set(), method="seed-bits", seed=BitSeed())
    if independence is None:
        independence = 4
    family = KWiseHashFamily(independence=independence,
                             domain=max(node_ids.values()) + 1,
                             output_range=2 ** 16)

    prefix = BitSeed()
    for _ in range(family.seed_bits):
        expectation_zero = _estimate_expectation(events, family, node_ids,
                                                 prefix.extended(0), rng, samples_per_bit)
        expectation_one = _estimate_expectation(events, family, node_ids,
                                                prefix.extended(1), rng, samples_per_bit)
        prefix = prefix.extended(0 if expectation_zero <= expectation_one else 1)

    hash_function: KWiseHashFunction = family.from_seed(prefix)
    sampled = events.evaluate_with_hash(hash_function, node_ids)
    phi, psi = events.bad_events(sampled)
    outcome = DerandomizationOutcome(sampled=sampled, method="seed-bits", seed=prefix,
                                     bits_fixed=family.seed_bits,
                                     residual_phi=phi, residual_psi=psi)
    if outcome.clean or not repair:
        return outcome

    fallback = derandomize_stage_per_variable(events)
    fallback.method = "seed-bits+repair"
    fallback.seed = prefix
    fallback.repaired = True
    fallback.bits_fixed = family.seed_bits
    return fallback

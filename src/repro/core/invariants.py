"""Executable checkers for the sparsification guarantees.

These are the programmatic counterparts of Lemma 5.1, Lemma 3.1 and the
invariants I1.1 / I1.2 / I2 of Section 5.3.  They are used by the tests, by
the benchmark harness (which records measured vs. paper bounds in
EXPERIMENTS.md) and are handy for users who want to validate their own runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

import networkx as nx

from repro.core.events import degree_bound
from repro.graphs.power import distance_neighborhood, distance_s_degree
from repro.graphs.properties import max_degree

Node = Hashable

__all__ = [
    "SparsificationCheck",
    "check_power_sparsification",
    "check_sparsification",
    "verify_invariants",
]


@dataclass
class SparsificationCheck:
    """Result of checking a sparsified set against the paper's bounds."""

    max_q_degree: int
    q_degree_bound: float
    max_domination: int
    domination_bound: float
    q_size: int

    @property
    def degree_ok(self) -> bool:
        return self.max_q_degree <= self.q_degree_bound

    @property
    def domination_ok(self) -> bool:
        return self.max_domination <= self.domination_bound

    @property
    def ok(self) -> bool:
        return self.degree_ok and self.domination_ok


def _distance_to_set(graph: nx.Graph, targets: Iterable[Node]) -> dict[Node, int]:
    """Multi-source BFS distances to a set (missing nodes -> n + 1)."""
    targets = set(targets)
    unreachable = graph.number_of_nodes() + 1
    distances = {node: unreachable for node in graph.nodes()}
    from collections import deque

    frontier = deque()
    for node in targets:
        if node in distances:
            distances[node] = 0
            frontier.append(node)
    while frontier:
        node = frontier.popleft()
        for neighbor in graph.neighbors(node):
            if distances[neighbor] > distances[node] + 1:
                distances[neighbor] = distances[node] + 1
                frontier.append(neighbor)
    return distances


def check_sparsification(graph: nx.Graph, active: set[Node], q: set[Node], *,
                         power: int = 1) -> SparsificationCheck:
    """Check Lemma 5.1's guarantees for a single DetSparsification run.

    * bounded Q-degree: ``d_power(v, Q) <= 72 log n`` for every ``v``;
    * domination: ``dist_G(v, Q) <= 2 * power + dist_G(v, A)`` for every ``v``
      (an increase of 2 in ``G^power`` is an increase of ``2 * power`` in
      ``G``).
    """
    n = graph.number_of_nodes()
    max_q_degree = max((distance_s_degree(graph, node, power, restrict_to=q)
                        for node in graph.nodes()), default=0)
    dist_to_q = _distance_to_set(graph, q)
    dist_to_a = _distance_to_set(graph, active)
    max_excess = max((dist_to_q[node] - dist_to_a[node] for node in graph.nodes()), default=0)
    return SparsificationCheck(
        max_q_degree=max_q_degree,
        q_degree_bound=degree_bound(n),
        max_domination=max_excess,
        domination_bound=2 * power,
        q_size=len(q),
    )


def check_power_sparsification(graph: nx.Graph, q0: set[Node], q: set[Node],
                               k: int) -> SparsificationCheck:
    """Check Lemma 3.1's guarantees for the power-graph sparsification.

    * bounded distance-``k`` Q-degree: ``d_k(v, Q) <= 72 log n``;
    * domination: ``dist_G(v, Q) <= k^2 + k + dist_G(v, Q_0)``.
    """
    n = graph.number_of_nodes()
    max_q_degree = max((distance_s_degree(graph, node, k, restrict_to=q)
                        for node in graph.nodes()), default=0)
    dist_to_q = _distance_to_set(graph, q)
    dist_to_q0 = _distance_to_set(graph, q0)
    max_excess = max((dist_to_q[node] - dist_to_q0[node] for node in graph.nodes()), default=0)
    return SparsificationCheck(
        max_q_degree=max_q_degree,
        q_degree_bound=degree_bound(n),
        max_domination=max_excess,
        domination_bound=k * k + k,
        q_size=len(q),
    )


@dataclass
class InvariantReport:
    """Per-iteration invariant check of the sequence ``Q_0 ⊇ Q_1 ⊇ ... ⊇ Q_k``."""

    s: int
    i11_max_degree: int
    i11_bound: float
    i12_max_degree: int
    i12_bound: float
    i2_max_excess: int
    i2_bound: int
    nested: bool

    @property
    def ok(self) -> bool:
        return (self.i11_max_degree <= self.i11_bound
                and self.i12_max_degree <= self.i12_bound
                and self.i2_max_excess <= self.i2_bound
                and self.nested)


def verify_invariants(graph: nx.Graph, sequence: Sequence[set[Node]]) -> list[InvariantReport]:
    """Check I1.1, I1.2 and I2 for every iteration of Algorithm 3.

    ``sequence`` is the list ``[Q_0, Q_1, ..., Q_k]`` produced by
    :func:`repro.core.power_sparsify.power_graph_sparsification`.
    """
    n = graph.number_of_nodes()
    delta = max(1, max_degree(graph))
    bound = degree_bound(n)
    q0 = set(sequence[0]) if sequence else set()
    dist_to_q0 = _distance_to_set(graph, q0)
    reports: list[InvariantReport] = []

    for s in range(1, len(sequence)):
        q_s = set(sequence[s])
        i11 = max((distance_s_degree(graph, node, s, restrict_to=q_s)
                   for node in graph.nodes()), default=0)
        i12 = max((distance_s_degree(graph, node, s + 1, restrict_to=q_s)
                   for node in graph.nodes()), default=0)
        dist_to_qs = _distance_to_set(graph, q_s)
        i2 = max((dist_to_qs[node] - dist_to_q0[node] for node in graph.nodes()), default=0)
        reports.append(InvariantReport(
            s=s,
            i11_max_degree=i11, i11_bound=bound,
            i12_max_degree=i12, i12_bound=delta * bound,
            i2_max_excess=i2, i2_bound=s * s + s,
            nested=q_s <= set(sequence[s - 1]),
        ))
    return reports

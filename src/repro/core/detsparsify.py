"""Algorithm 2: DetSparsification (Lemma 5.1, Lemma 5.5, Lemma 5.7).

DetSparsification has the same stage structure as the randomized sampling
algorithm (Algorithm 1); the only difference is that each stage's sampled set
``M_i`` is chosen by derandomization so that *deterministically*

(i)   every node has at most ``72 log n`` sampled distance-``s`` neighbors,
(ii)  every high-active-degree node is sampled or has a sampled neighbor,
(iii) the maximum active degree halves.

The function below runs on ``G^power`` with communication network ``G`` (for
``power = 1`` this is Lemma 5.1; for ``power = s >= 2`` it is the simulation
of Lemma 5.7 used inside the power-graph sparsification).  Rounds are charged
to the ledger per the paper:

* each stage derandomizes ``gamma = 8 * ceil(log2 n)^2`` seed bits, each
  costing one global convergecast + broadcast, i.e. ``O(diam(G))`` rounds
  (Claim 5.6);
* deactivation flags travel ``2 * power`` hops (2 hops in ``G^power``);
* for ``power >= 2`` the deactivation broadcast of Lemma 4.2 costs an extra
  ``O(power + log n)`` rounds per stage (Lemma 5.7).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Hashable, Mapping

import networkx as nx

from repro.congest.cost import RoundLedger
from repro.core.derandomize import (
    DerandomizationOutcome,
    derandomize_stage_per_variable,
    derandomize_stage_seed_bits,
)
from repro.core.events import SparsificationStageEvents, log_n, stage_count
from repro.core.sampling import sample_stage
from repro.graphs.power import distance_neighborhood
from repro.graphs.properties import ecc_lower_bound

Node = Hashable

__all__ = ["DetSparsificationResult", "DetStageRecord", "det_sparsification"]

#: Supported derandomization methods for one stage.
METHODS = ("per-variable", "seed-bits", "randomized")


@dataclass
class DetStageRecord:
    """Diagnostics of one DetSparsification stage."""

    stage: int
    probability: float
    active_before: int
    active_after: int
    sampled: set[Node]
    outcome: DerandomizationOutcome | None


@dataclass
class DetSparsificationResult:
    """Output of :func:`det_sparsification`.

    ``q`` satisfies the guarantees of Lemma 5.1 (measured in ``G^power``):
    bounded Q-degree and domination ``dist(v, Q) <= 2 + dist(v, A)``.
    """

    q: set[Node]
    stages: list[DetStageRecord] = field(default_factory=list)
    ledger: RoundLedger = field(default_factory=RoundLedger)
    method: str = "per-variable"

    @property
    def rounds(self) -> int:
        return self.ledger.total_rounds

    @property
    def total_violations(self) -> int:
        """Residual bad events across stages (0 for the deterministic methods)."""
        total = 0
        for record in self.stages:
            if record.outcome is not None:
                total += len(record.outcome.residual_phi) + len(record.outcome.residual_psi)
        return total


def _seed_bit_budget(n: int) -> int:
    """``gamma = 8 * ceil(log2 n)^2`` seed bits per stage (Claim 5.6)."""
    bits = max(1, math.ceil(math.log2(max(2, n))))
    return 8 * bits * bits


def det_sparsification(graph: nx.Graph, active: set[Node] | None = None, *,
                       delta_a: float | None = None,
                       power: int = 1,
                       method: str = "per-variable",
                       node_ids: Mapping[Node, int] | None = None,
                       rng: random.Random | None = None,
                       ledger: RoundLedger | None = None,
                       neighborhoods: Mapping[Node, set[Node]] | None = None,
                       diameter_hint: int | None = None,
                       seed_bit_samples: int = 6,
                       ) -> DetSparsificationResult:
    """DetSparsification on ``G^power`` with communication network ``G``.

    Parameters mirror :func:`repro.core.sampling.randomized_sparsification`;
    the additional ones are:

    method:
        ``"per-variable"`` (exact conditional expectations over the sampling
        decisions, the fast deterministic default), ``"seed-bits"`` (the
        faithful Claim 5.6 procedure with estimated conditional expectations
        and verified output) or ``"randomized"`` (plain Algorithm 1 sampling
        of each stage -- used by the derandomization ablation).
    diameter_hint:
        An upper bound on ``diam(G)`` used only for round charging; computed
        with a BFS sweep when omitted.
    seed_bit_samples:
        Completions per conditional-expectation estimate for
        ``method="seed-bits"``.
    """
    if method not in METHODS:
        raise ValueError(f"unknown derandomization method {method!r}; expected one of {METHODS}")
    rng = rng or random.Random(0)
    ledger = ledger if ledger is not None else RoundLedger()
    active = set(graph.nodes()) if active is None else set(active)
    n = graph.number_of_nodes()
    if node_ids is None:
        node_ids = {node: index + 1 for index, node in enumerate(sorted(graph.nodes(), key=str))}
    if diameter_hint is None:
        diameter_hint = max(1, ecc_lower_bound(graph))

    if neighborhoods is None:
        neighborhoods = {node: distance_neighborhood(graph, node, power, restrict_to=active)
                         for node in graph.nodes()}
    if delta_a is None:
        delta_a = max((len(neighbors) for neighbors in neighborhoods.values()), default=0)
    delta_a = max(1.0, float(delta_a))

    result = DetSparsificationResult(q=set(), ledger=ledger, method=method)
    current_active = set(active)
    r = stage_count(delta_a, n)
    gamma = _seed_bit_budget(n)
    id_bits = max(1, math.ceil(math.log2(max(2, max(node_ids.values(), default=1) + 1))))

    for stage in range(1, r + 1):
        events = SparsificationStageEvents(graph=graph, active=current_active,
                                           stage=stage, delta_a=delta_a, power=power,
                                           neighborhoods=neighborhoods)
        outcome: DerandomizationOutcome | None
        if method == "per-variable":
            outcome = derandomize_stage_per_variable(events)
            sampled = outcome.sampled
        elif method == "seed-bits":
            outcome = derandomize_stage_seed_bits(events, node_ids, rng=rng,
                                                  samples_per_bit=seed_bit_samples)
            sampled = outcome.sampled
        else:  # randomized ablation
            sampled = sample_stage(events, rng, node_ids=node_ids)
            phi, psi = events.bad_events(sampled)
            outcome = DerandomizationOutcome(sampled=sampled, method="randomized",
                                             residual_phi=phi, residual_psi=psi)

        # Round cost of the stage (Lemma 5.5 / Lemma 5.7 / Claim 5.6).
        for _ in range(gamma):
            ledger.charge_seed_bit(diameter_hint, label=f"stage-{stage}-seed-bit")
        ledger.charge_flooding(2 * power, label=f"stage-{stage}-deactivation")
        if power >= 2:
            # Deactivated nodes broadcast (deactivated, ID) to N^power (Lemma 5.7).
            hat_delta = max(1, int(math.ceil(72 * log_n(n))))
            ledger.charge_broadcast(power, message_bits=id_bits, hat_delta=hat_delta,
                                    label=f"stage-{stage}-deactivation-broadcast")

        # Deactivate sampled nodes and their distance-2 neighborhood in G^power.
        deactivated = set(sampled)
        for node in sampled:
            deactivated |= distance_neighborhood(graph, node, 2 * power,
                                                 restrict_to=current_active)
        deactivated &= current_active
        next_active = current_active - deactivated

        result.stages.append(DetStageRecord(
            stage=stage, probability=events.probability,
            active_before=len(current_active), active_after=len(next_active),
            sampled=set(sampled), outcome=outcome))
        result.q |= sampled
        current_active = next_active

    # M_{r+1} = H_{r+1}: the remaining active nodes join Q.
    result.q |= current_active
    return result

"""The paper's primary contribution: sparsification of power graphs.

Modules
-------
``events``
    The per-stage event system (the indicator variables ``Phi_v`` and
    ``Psi_v`` of Lemma 5.5, their exact conditional expectations, and the
    bookkeeping of active distance-``s`` neighborhoods).
``sampling``
    Algorithm 1 -- randomized sparsification via sampling (Section 5.1).
``derandomize``
    Claim 5.6 -- derandomizing one stage: bit-by-bit fixing of a k-wise
    independent seed, and an exact per-variable conditional-expectation
    variant used as the fast default in simulation.
``detsparsify``
    Algorithm 2 -- DetSparsification (Lemma 5.1), the single-graph
    deterministic sparsification.
``comm_tools``
    Section 4 -- the communication tools (Lemmas 4.1, 4.2, 4.3, 4.6) used to
    run algorithms on sparse subsets of power graphs.
``power_sparsify``
    Algorithm 3 / Lemma 3.1 -- iterated sparsification on ``G^s`` with the
    invariants I1.1, I1.2, I2, I3, and the network-decomposition variant of
    Lemma 5.8 that removes the diameter dependency.
``invariants``
    Executable checkers for all of the above.
"""

from repro.core.comm_tools import (
    CommunicationTools,
    broadcast_from_q,
    learn_distance_ids,
    q_message,
    simulate_on_power_subgraph,
)
from repro.core.detsparsify import DetSparsificationResult, det_sparsification
from repro.core.events import SparsificationStageEvents, degree_bound, sampling_probability
from repro.core.invariants import (
    check_power_sparsification,
    check_sparsification,
    verify_invariants,
)
from repro.core.power_sparsify import (
    PowerSparsificationResult,
    power_graph_sparsification,
    power_graph_sparsification_low_diameter,
)
from repro.core.sampling import randomized_sparsification

__all__ = [
    "CommunicationTools",
    "DetSparsificationResult",
    "PowerSparsificationResult",
    "SparsificationStageEvents",
    "broadcast_from_q",
    "check_power_sparsification",
    "check_sparsification",
    "degree_bound",
    "det_sparsification",
    "learn_distance_ids",
    "power_graph_sparsification",
    "power_graph_sparsification_low_diameter",
    "q_message",
    "randomized_sparsification",
    "sampling_probability",
    "simulate_on_power_subgraph",
    "verify_invariants",
]

"""Per-stage event system for the sparsification algorithms (Section 5).

One *stage* of the sparsification (randomized or derandomized) works with a
set of active nodes ``H_i`` on the power graph ``G^s`` and two families of
bad events, one per node ``v`` of ``G`` (Lemma 5.5, equations (1) and (2)):

``Phi_v``
    ``v`` has high active degree (``d_s(v, H_i) >= Delta_A / 2^i``) but
    neither ``v`` nor any of its active distance-``s`` neighbors was sampled.
    If no ``Phi`` event occurs, the maximum active degree halves.
``Psi_v``
    ``v`` received more than ``72 log n`` sampled distance-``s`` neighbors.
    If no ``Psi`` event occurs, the output stays sparse.

:class:`SparsificationStageEvents` owns the active distance-``s``
neighborhoods and evaluates the events for a concrete sampled set, as well as
their exact conditional expectations under partially fixed sampling decisions
(used by the per-variable derandomizer and by the bit-by-bit seed fixing as a
ground-truth cross-check in the tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping

import networkx as nx
from scipy import stats

from repro.graphs.power import distance_neighborhood

Node = Hashable

__all__ = [
    "DEGREE_BOUND_FACTOR",
    "SparsificationStageEvents",
    "degree_bound",
    "log_n",
    "sampling_probability",
    "stage_count",
]

#: The constant of Lemma 5.1 / Lemma 5.4 (i): ``d(v, Q) <= 72 log n``.
DEGREE_BOUND_FACTOR = 72

#: The constant in the per-stage sampling probability ``24 * 2^i * log n / Delta_A``.
SAMPLING_FACTOR = 24


def log_n(n: int) -> float:
    """The ``log n`` used in the quality bounds (natural logarithm, >= 1)."""
    return max(1.0, math.log(max(2, n)))


def degree_bound(n: int) -> float:
    """The sparsity bound ``72 log n`` of Lemma 5.1 / Lemma 3.1."""
    return DEGREE_BOUND_FACTOR * log_n(n)


def sampling_probability(stage: int, delta_a: float, n: int) -> float:
    """The stage-``i`` sampling probability ``24 * 2^i * log n / Delta_A`` (capped at 1)."""
    if delta_a <= 0:
        return 1.0
    return min(1.0, SAMPLING_FACTOR * (2 ** stage) * log_n(n) / delta_a)


def stage_count(delta_a: float, n: int) -> int:
    """``r = floor(log2 Delta_A - log2 log n) - 5`` (Algorithm 1 / 2), at least 0."""
    if delta_a <= 0:
        return 0
    r = math.floor(math.log2(max(1.0, delta_a)) - math.log2(log_n(n))) - 5
    return max(0, r)


@dataclass
class SparsificationStageEvents:
    """Events and neighborhood bookkeeping for one sparsification stage.

    Parameters
    ----------
    graph:
        The communication graph ``G``.
    active:
        The stage's active set ``H_i``.
    stage:
        The stage index ``i`` (1-based, as in the paper).
    delta_a:
        The maximum-active-degree parameter ``Delta_A`` of the enclosing
        DetSparsification call (*not* of the stage -- the stage assumption is
        that active degrees are at most ``Delta_A / 2^{i-1}``).
    power:
        The power ``s``: neighborhoods and degrees are measured in ``G^s``.
    neighborhoods:
        Optional precomputed mapping ``v -> N^s(v) ∩ A`` where ``A ⊇ H_i`` is
        the initial active set of the enclosing call.  Passing it avoids
        recomputing BFS for every stage; the constructor intersects it with
        ``active``.
    """

    graph: nx.Graph
    active: set[Node]
    stage: int
    delta_a: float
    power: int = 1
    neighborhoods: Mapping[Node, set[Node]] | None = None
    # Derived fields -----------------------------------------------------
    n: int = field(init=False)
    probability: float = field(init=False)
    threshold: float = field(init=False)
    high_degree_cutoff: float = field(init=False)
    active_neighbors: dict[Node, set[Node]] = field(init=False)
    high_degree_nodes: set[Node] = field(init=False)

    def __post_init__(self) -> None:
        self.active = set(self.active)
        self.n = self.graph.number_of_nodes()
        self.probability = sampling_probability(self.stage, self.delta_a, self.n)
        self.threshold = degree_bound(self.n)
        self.high_degree_cutoff = self.delta_a / (2 ** self.stage)
        self.active_neighbors = self._compute_active_neighborhoods()
        self.high_degree_nodes = {
            v for v, neighbors in self.active_neighbors.items()
            if len(neighbors) >= self.high_degree_cutoff
        }

    # ------------------------------------------------------------ plumbing
    def _compute_active_neighborhoods(self) -> dict[Node, set[Node]]:
        result: dict[Node, set[Node]] = {}
        if self.neighborhoods is not None:
            for node in self.graph.nodes():
                base = self.neighborhoods.get(node, set())
                result[node] = set(base) & self.active
            return result
        for node in self.graph.nodes():
            result[node] = distance_neighborhood(self.graph, node, self.power,
                                                 restrict_to=self.active)
        return result

    def dependent_nodes(self, variable: Node) -> set[Node]:
        """Nodes whose events depend on the sampling decision of ``variable``.

        ``Psi_v`` depends on ``X_w`` for ``w in N^s(v) ∩ H_i``; ``Phi_v``
        additionally depends on ``X_v`` itself.  Hence the events affected by
        ``X_w`` are those of ``w`` itself and of every node that counts ``w``
        among its active distance-``s`` neighbors.
        """
        affected = {variable}
        affected.update(node for node, neighbors in self.active_neighbors.items()
                        if variable in neighbors)
        return affected

    def phi_variables(self, node: Node) -> set[Node]:
        """``vbl(Phi_v)``: the active nodes whose decisions determine ``Phi_v``."""
        variables = set(self.active_neighbors.get(node, set()))
        if node in self.active:
            variables.add(node)
        return variables

    def psi_variables(self, node: Node) -> set[Node]:
        """``vbl(Psi_v)``: the active distance-``s`` neighbors of ``v``."""
        return set(self.active_neighbors.get(node, set()))

    # ------------------------------------------------------ event checking
    def phi_occurs(self, node: Node, sampled: set[Node]) -> bool:
        """``Phi_v = 1`` iff ``v`` is high-degree and ``v ∉ M_i ∪ N^s(M_i)``."""
        if node not in self.high_degree_nodes:
            return False
        if node in sampled:
            return False
        return not (self.active_neighbors[node] & sampled)

    def psi_occurs(self, node: Node, sampled: set[Node]) -> bool:
        """``Psi_v = 1`` iff ``d_s(v, M_i) > 72 log n``."""
        return len(self.active_neighbors[node] & sampled) > self.threshold

    def bad_events(self, sampled: set[Node]) -> tuple[set[Node], set[Node]]:
        """Return ``(phi_violations, psi_violations)`` for a sampled set."""
        phi = {node for node in self.high_degree_nodes if self.phi_occurs(node, sampled)}
        psi = {node for node in self.graph.nodes() if self.psi_occurs(node, sampled)}
        return phi, psi

    # --------------------------------------- exact conditional expectations
    def phi_expectation(self, node: Node, fixed: Mapping[Node, bool]) -> float:
        """``E[Phi_v | fixed]`` under independent sampling of the unfixed variables."""
        if node not in self.high_degree_nodes:
            return 0.0
        variables = self.phi_variables(node)
        unfixed = 0
        for variable in variables:
            decision = fixed.get(variable)
            if decision is True:
                return 0.0
            if decision is None:
                unfixed += 1
        return (1.0 - self.probability) ** unfixed

    def psi_expectation(self, node: Node, fixed: Mapping[Node, bool]) -> float:
        """``E[Psi_v | fixed]`` = ``P(c + Bin(u, q) > 72 log n)``.

        ``c`` is the number of already-fixed sampled neighbors and ``u`` the
        number of still-unfixed active neighbors.
        """
        neighbors = self.active_neighbors[node]
        fixed_sampled = 0
        unfixed = 0
        for neighbor in neighbors:
            decision = fixed.get(neighbor)
            if decision is True:
                fixed_sampled += 1
            elif decision is None:
                unfixed += 1
        if fixed_sampled > self.threshold:
            return 1.0
        if unfixed == 0:
            return 0.0
        # P(Bin(u, q) > threshold - c) = sf(floor(threshold - c)).
        remaining = math.floor(self.threshold - fixed_sampled)
        if remaining >= unfixed:
            return 0.0
        return float(stats.binom.sf(remaining, unfixed, self.probability))

    def total_expectation(self, fixed: Mapping[Node, bool],
                          nodes: Iterable[Node] | None = None) -> float:
        """``E[sum_v Phi_v + Psi_v | fixed]`` restricted to ``nodes`` (default: all)."""
        if nodes is None:
            nodes = self.graph.nodes()
        total = 0.0
        for node in nodes:
            total += self.phi_expectation(node, fixed)
            total += self.psi_expectation(node, fixed)
        return total

    def evaluate_with_hash(self, hash_function, node_ids: Mapping[Node, int]) -> set[Node]:
        """The sampled set induced by a hash function (Claim 5.6).

        ``X_v = 1`` iff ``h(ID(v))`` falls below ``probability * output_range``
        -- the "``h(v) <= 24 * 2^i * log n``" rule of Claim 5.6 expressed
        relative to the family's output range.
        """
        cutoff = self.probability * hash_function.output_range
        return {node for node in self.active
                if hash_function(node_ids[node]) < cutoff}

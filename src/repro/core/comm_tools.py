"""Communication tools for sparse subsets of power graphs (Section 4).

Once a sparse set ``Q`` is available (every node has at most ``hat_delta``
distance-``(s-1)`` ``Q``-neighbors), the paper builds all further
communication out of four primitives:

* **Lemma 4.1** -- every node learns the IDs of its distance-``(s+1)``
  ``Q``-neighborhood from knowledge of the distance-``s`` one, and the BFS
  trees rooted at ``Q`` are extended by one level; cost
  ``O(hat_delta * a / bandwidth)`` rounds.
* **Lemma 4.2 (Broadcast)** -- every ``v in Q`` sends one ``m``-bit message to
  all of ``N^s(v)``; cost ``O(s + m * hat_delta / bandwidth)`` rounds.
* **Lemma 4.2 (Q-message)** -- every ``v in Q`` sends an individual ``m``-bit
  message to each ``w in N^s(v, Q)``; cost
  ``O(s + (m + a) * hat_delta^2 / bandwidth)`` rounds.
* **Lemma 4.3** -- convergecast of a sum over a spanning BFS tree;
  ``O(diam(G) + (m + log n)/bandwidth)`` rounds.
* **Lemma 4.6** -- any CONGEST algorithm on the virtual graph ``G^s[Q]`` can
  be simulated with an ``O(s + hat_delta^2)`` factor slowdown by implementing
  each of its rounds with one Q-message call.

The implementations below compute the *information* these primitives deliver
(ID sets, BFS trees, message deliveries) centrally, charge the corresponding
round costs to a :class:`~repro.congest.cost.RoundLedger`, and optionally
report per-edge congestion (used by the Figure-1 tightness experiment).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Hashable, Mapping

import networkx as nx

from repro.congest.bfs import BFSTree, build_bfs_tree
from repro.congest.cost import RoundLedger
from repro.congest.message import DEFAULT_BANDWIDTH_BITS, id_bits as id_bit_length
from repro.graphs.power import distance_neighborhood, induced_power_subgraph

Node = Hashable

__all__ = [
    "CommunicationTools",
    "broadcast_from_q",
    "learn_distance_ids",
    "q_message",
    "simulate_on_power_subgraph",
]


def _canonical_edge(u: Node, v: Node) -> tuple[Node, Node]:
    return (u, v) if str(u) <= str(v) else (v, u)


@dataclass
class CommunicationTools:
    """The distributed knowledge built by Lemma 4.1 for a sparse set ``Q``.

    Attributes
    ----------
    graph, q, s:
        The communication network, the sparse set and the radius.
    node_ids:
        The O(log n)-bit identifiers.
    trees:
        A depth-``s`` BFS tree rooted at every node of ``Q`` (each node of
        the tree knows its ancestor / descendants -- the :class:`BFSTree`
        structure carries exactly that).
    q_neighborhoods:
        ``v -> N^s(v, Q)`` for every node ``v`` of ``G``.
    hat_delta:
        ``max_v d_{s-1}(v, Q)`` (the sparsity parameter governing the cost of
        Lemma 4.2) and ``hat_delta_s = max_v d_s(v, Q)``.
    ledger:
        Where the construction and all subsequent primitive calls charge
        their rounds.
    """

    graph: nx.Graph
    q: set[Node]
    s: int
    node_ids: dict[Node, int]
    trees: dict[Node, BFSTree]
    q_neighborhoods: dict[Node, set[Node]]
    hat_delta: int
    hat_delta_s: int
    bandwidth_bits: int
    ledger: RoundLedger
    id_bits: int = field(init=False)

    def __post_init__(self) -> None:
        self.id_bits = max(1, math.ceil(math.log2(max(2, max(self.node_ids.values(), default=2) + 1))))

    # ----------------------------------------------------------- helpers
    def q_degree(self, node: Node) -> int:
        """``d_s(node, Q)``."""
        return len(self.q_neighborhoods.get(node, set()))

    def virtual_graph(self) -> nx.Graph:
        """The virtual graph ``G^s[Q]`` (Definition 4.4)."""
        return induced_power_subgraph(self.graph, self.s, self.q)


def learn_distance_ids(graph: nx.Graph, q: set[Node], s: int, *,
                       node_ids: Mapping[Node, int] | None = None,
                       ledger: RoundLedger | None = None,
                       bandwidth_bits: int = DEFAULT_BANDWIDTH_BITS,
                       ) -> CommunicationTools:
    """Iterate Lemma 4.1 to build the distributed knowledge for radius ``s``.

    Starting from ``N^0(v, Q) = {v} ∩ Q``, each of the ``s`` iterations has
    every node forward its current ID set to its neighbors (pipelined), and
    extends the BFS trees rooted at ``Q`` by one level.  The cost charged per
    iteration is ``ceil(hat_delta_j * a / bandwidth)`` rounds where
    ``hat_delta_j`` is the current maximum ``Q``-degree.
    """
    q = set(q)
    ledger = ledger if ledger is not None else RoundLedger(bandwidth_bits=bandwidth_bits)
    if node_ids is None:
        node_ids = {node: index + 1 for index, node in enumerate(sorted(graph.nodes(), key=str))}
    a_bits = max(1, math.ceil(math.log2(max(2, max(node_ids.values(), default=2) + 1))))

    # Centralized construction of what the iterations of Lemma 4.1 deliver.
    q_neighborhoods = {node: distance_neighborhood(graph, node, s, restrict_to=q)
                       for node in graph.nodes()}
    trees = {root: build_bfs_tree(graph, root, depth=s) for root in q}

    # Charge the s pipelining iterations.
    for level in range(1, s + 1):
        hat_delta_level = 0
        for node in graph.nodes():
            degree = len(distance_neighborhood(graph, node, level, restrict_to=q)) if level < s \
                else len(q_neighborhoods[node])
            hat_delta_level = max(hat_delta_level, degree)
        ledger.charge_learn_ids(max(1, hat_delta_level), a_bits,
                                label=f"learn-ids-level-{level}")

    hat_delta_prev = max((len(distance_neighborhood(graph, node, max(0, s - 1), restrict_to=q))
                          for node in graph.nodes()), default=0)
    hat_delta_s = max((len(neighbors) for neighbors in q_neighborhoods.values()), default=0)

    return CommunicationTools(graph=graph, q=q, s=s, node_ids=dict(node_ids), trees=trees,
                              q_neighborhoods=q_neighborhoods,
                              hat_delta=max(1, hat_delta_prev), hat_delta_s=max(1, hat_delta_s),
                              bandwidth_bits=bandwidth_bits, ledger=ledger)


def broadcast_from_q(tools: CommunicationTools, messages: Mapping[Node, Any], *,
                     message_bits: int,
                     track_congestion: bool = False,
                     ) -> tuple[dict[Node, dict[Node, Any]], dict[tuple[Node, Node], int]]:
    """Lemma 4.2 (Broadcast): each ``v in Q`` sends ``messages[v]`` to all of ``N^s(v)``.

    Returns ``(deliveries, congestion)`` where ``deliveries[w][v]`` is the
    message ``w`` received from ``v`` (for every ``w`` within distance ``s``
    of ``v``), and ``congestion`` maps communication edges to the number of
    broadcasts routed through them (only populated when ``track_congestion``).
    """
    deliveries: dict[Node, dict[Node, Any]] = {node: {} for node in tools.graph.nodes()}
    congestion: dict[tuple[Node, Node], int] = {}
    for sender, payload in messages.items():
        if sender not in tools.q:
            raise ValueError(f"broadcast sender {sender!r} is not in Q")
        tree = tools.trees[sender]
        for receiver in tree.nodes:
            if receiver != sender:
                deliveries[receiver][sender] = payload
        if track_congestion:
            for edge in tree.edges():
                congestion[edge] = congestion.get(edge, 0) + 1
    tools.ledger.charge_broadcast(tools.s, message_bits, tools.hat_delta, label="broadcast")
    return deliveries, congestion


def q_message(tools: CommunicationTools, messages: Mapping[Node, Mapping[Node, Any]], *,
              message_bits: int,
              track_congestion: bool = False,
              ) -> tuple[dict[Node, dict[Node, Any]], dict[tuple[Node, Node], int]]:
    """Lemma 4.2 (Q-message): each ``v in Q`` sends ``messages[v][w]`` to ``w in N^s(v, Q)``.

    Returns ``(deliveries, congestion)`` where ``deliveries[w][v]`` is the
    message ``w`` received from ``v`` and ``congestion`` counts, per edge, the
    number of (sender, receiver) pairs routed through it (the two-step
    routing of the paper: distribute over the sender's immediate neighbors,
    then broadcast in the subtrees).
    """
    deliveries: dict[Node, dict[Node, Any]] = {node: {} for node in tools.graph.nodes()}
    congestion: dict[tuple[Node, Node], int] = {}
    for sender, per_receiver in messages.items():
        if sender not in tools.q:
            raise ValueError(f"Q-message sender {sender!r} is not in Q")
        tree = tools.trees[sender]
        for receiver, payload in per_receiver.items():
            if receiver not in tools.q_neighborhoods.get(sender, set()) and receiver != sender:
                raise ValueError(
                    f"Q-message receiver {receiver!r} is not a distance-{tools.s} Q-neighbor "
                    f"of {sender!r}")
            deliveries[receiver][sender] = payload
            if track_congestion and receiver in tree.nodes:
                path = tree.path_to_root(receiver)
                for u, v in zip(path, path[1:]):
                    edge = _canonical_edge(u, v)
                    congestion[edge] = congestion.get(edge, 0) + 1
    tools.ledger.charge_q_message(tools.s, message_bits, tools.id_bits, tools.hat_delta,
                                  label="q-message")
    return deliveries, congestion


@dataclass
class PowerSubgraphSimulation:
    """Handle returned by :func:`simulate_on_power_subgraph` (Lemma 4.6)."""

    tools: CommunicationTools
    virtual_graph: nx.Graph

    def charge_rounds(self, algorithm_rounds: int, *, message_bits: int | None = None,
                      label: str = "simulate-Gs[Q]") -> int:
        """Charge the cost of ``algorithm_rounds`` rounds of a CONGEST algorithm on ``G^s[Q]``."""
        bits = message_bits if message_bits is not None else self.tools.bandwidth_bits
        total = 0
        for _ in range(max(0, algorithm_rounds)):
            total += self.tools.ledger.charge_simulated_round(
                self.tools.s, bits, self.tools.id_bits, self.tools.hat_delta, label=label)
        return total


def simulate_on_power_subgraph(tools: CommunicationTools) -> PowerSubgraphSimulation:
    """Lemma 4.6: prepare the simulation of an arbitrary algorithm on ``G^s[Q]``.

    The returned handle exposes the virtual graph (so the algorithm can be
    run on it directly) and a ``charge_rounds`` method implementing the
    ``O((s + hat_delta^2) * T_A)`` slowdown of the lemma.
    """
    return PowerSubgraphSimulation(tools=tools, virtual_graph=tools.virtual_graph())

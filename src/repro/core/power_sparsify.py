"""Sparsification of power graphs (Section 5.3 / Algorithm 3 / Lemma 3.1)
and its low-diameter variant (Section 5.4 / Lemma 5.8).

The power-graph sparsification runs ``k`` iterations of DetSparsification,
where the ``s``-th iteration is simulated on ``G^s`` with the previous
iteration's output ``Q_{s-1}`` as the active set.  The invariants maintained
after iteration ``s`` (Section 5.3) are:

I1.1  ``d_s(v, Q_s) <= 72 log n`` for every ``v``;
I1.2  ``d_{s+1}(v, Q_s) <= 72 * Delta * log n`` for every ``v``;
I2    ``dist_G(v, Q_s) <= s^2 + s + dist_G(v, Q_0)``;
I3    every node knows the IDs in its distance-``(s+1)`` ``Q_s``-neighborhood
      and the depth-``(s+1)`` BFS trees rooted at ``Q_s`` are known.

The low-diameter variant (Lemma 5.8) removes the ``diam(G)`` factor from the
round complexity by computing a network decomposition with cluster
separation ``2k + 1`` and running the sparsification inside the clusters of
one color class at a time (with the distance-``k`` cluster borders acting as
observers).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Hashable, Mapping

import networkx as nx

from repro.congest.cost import RoundLedger
from repro.core.detsparsify import det_sparsification
from repro.core.events import degree_bound, log_n
from repro.graphs.power import distance_neighborhood
from repro.graphs.properties import ecc_lower_bound, max_degree

Node = Hashable

__all__ = [
    "PowerSparsificationResult",
    "power_graph_sparsification",
    "power_graph_sparsification_low_diameter",
]


@dataclass
class PowerIterationRecord:
    """Diagnostics for one iteration (one power ``s``) of Algorithm 3."""

    s: int
    delta_a: float
    active_before: int
    active_after: int
    max_distance_s_degree: int
    rounds: int


@dataclass
class PowerSparsificationResult:
    """Output of the power-graph sparsification.

    ``q`` satisfies Lemma 3.1: bounded distance-``k`` ``Q``-degree
    (``<= 72 log n``) and domination ``dist(v, Q) <= k^2 + k + dist(v, Q_0)``.
    ``sequence`` holds the intermediate sets ``Q_0 ⊇ Q_1 ⊇ ... ⊇ Q_k`` so the
    invariant checkers and tests can inspect every iteration.
    """

    q: set[Node]
    k: int
    sequence: list[set[Node]] = field(default_factory=list)
    iterations: list[PowerIterationRecord] = field(default_factory=list)
    ledger: RoundLedger = field(default_factory=RoundLedger)

    @property
    def rounds(self) -> int:
        return self.ledger.total_rounds


def power_graph_sparsification(graph: nx.Graph, k: int, *,
                               q0: set[Node] | None = None,
                               method: str = "per-variable",
                               node_ids: Mapping[Node, int] | None = None,
                               rng: random.Random | None = None,
                               ledger: RoundLedger | None = None,
                               diameter_hint: int | None = None,
                               ) -> PowerSparsificationResult:
    """Algorithm 3: ``k`` iterations of DetSparsification on ``G^1, ..., G^k``.

    Parameters
    ----------
    graph:
        The communication network ``G``.
    k:
        The power (``k >= 1``); the output is sparse in ``G^k``.
    q0:
        The initially active set ``Q_0`` (default: all nodes).
    method:
        Per-stage derandomization method forwarded to
        :func:`repro.core.detsparsify.det_sparsification`.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    rng = rng or random.Random(0)
    ledger = ledger if ledger is not None else RoundLedger()
    q_prev = set(graph.nodes()) if q0 is None else set(q0)
    n = graph.number_of_nodes()
    delta = max(1, max_degree(graph))
    if diameter_hint is None:
        diameter_hint = max(1, ecc_lower_bound(graph))
    if node_ids is None:
        node_ids = {node: index + 1 for index, node in enumerate(sorted(graph.nodes(), key=str))}
    a_bits = max(1, math.ceil(math.log2(max(2, max(node_ids.values(), default=2) + 1))))

    result = PowerSparsificationResult(q=set(q_prev), k=k, ledger=ledger)
    result.sequence.append(set(q_prev))

    for s in range(1, k + 1):
        # Delta_A^(1) = Delta, Delta_A^(s) = 72 * Delta * log n for s >= 2
        # (Section 5.3, "Algorithm description").
        delta_a = float(delta) if s == 1 else 72.0 * delta * log_n(n)

        neighborhoods = {node: distance_neighborhood(graph, node, s, restrict_to=q_prev)
                         for node in graph.nodes()}
        max_active_degree = max((len(nb) for nb in neighborhoods.values()), default=0)

        iteration_ledger = RoundLedger(bandwidth_bits=ledger.bandwidth_bits)
        det = det_sparsification(graph, active=q_prev, delta_a=delta_a, power=s,
                                 method=method, node_ids=node_ids, rng=rng,
                                 ledger=iteration_ledger,
                                 neighborhoods=neighborhoods,
                                 diameter_hint=diameter_hint)
        q_next = det.q

        # Maintain invariant I3: every node forwards its distance-s Q_s-ID set
        # to its neighbors (Lemma 4.1), extending the BFS trees to depth s+1.
        hat_delta = max(1, int(math.ceil(degree_bound(n))))
        iteration_ledger.charge_learn_ids(hat_delta, a_bits, label=f"iteration-{s}-extend-ids")

        ledger.merge(iteration_ledger, prefix=f"s={s}:")
        result.iterations.append(PowerIterationRecord(
            s=s, delta_a=delta_a, active_before=len(q_prev), active_after=len(q_next),
            max_distance_s_degree=max_active_degree, rounds=iteration_ledger.total_rounds))
        result.sequence.append(set(q_next))
        q_prev = q_next

    result.q = set(q_prev)
    return result


def power_graph_sparsification_low_diameter(graph: nx.Graph, k: int, *,
                                            q0: set[Node] | None = None,
                                            method: str = "per-variable",
                                            rng: random.Random | None = None,
                                            ledger: RoundLedger | None = None,
                                            decomposition=None,
                                            ) -> PowerSparsificationResult:
    """Lemma 5.8: sparsification with no diameter dependency.

    A weak-diameter network decomposition with cluster separation ``2k + 1``
    is computed first; the clusters of each color class then run Lemma 3.1 in
    parallel (each cluster together with its distance-``k`` border, whose
    nodes act as observers), and globally active nodes within distance ``2k``
    of newly selected nodes are deactivated before the next color.

    Rounds charged: ``T_ND`` for the decomposition plus, per color class, the
    maximum cluster cost (clusters of one color run in parallel) plus ``O(k)``
    for border formation and global deactivation.
    """
    # Imported lazily to avoid a circular import (decomposition uses ruling-set
    # verification helpers in its tests, not in the module itself, but keeping
    # the import local also keeps the core package importable on its own).
    from repro.decomposition.network_decomposition import network_decomposition

    if k < 1:
        raise ValueError("k must be >= 1")
    rng = rng or random.Random(0)
    ledger = ledger if ledger is not None else RoundLedger()
    globally_active = set(graph.nodes()) if q0 is None else set(q0)
    q0_snapshot = set(globally_active)
    n = graph.number_of_nodes()

    if decomposition is None:
        decomposition = network_decomposition(graph, separation=2 * k + 1, rng=rng,
                                              ledger=ledger)

    result = PowerSparsificationResult(q=set(), k=k, ledger=ledger)
    result.sequence.append(set(q0_snapshot))

    for color in range(decomposition.num_colors):
        clusters = decomposition.clusters_of_color(color)
        color_round_cost = 0
        for cluster in clusters:
            cluster_nodes = set(cluster.nodes)
            border = set()
            for node in cluster_nodes:
                border |= distance_neighborhood(graph, node, k)
            participants = cluster_nodes | border
            local_graph = graph.subgraph(participants).copy()
            local_active = globally_active & cluster_nodes
            if not local_active:
                continue
            cluster_ledger = RoundLedger(bandwidth_bits=ledger.bandwidth_bits)
            local = power_graph_sparsification(local_graph, k, q0=local_active,
                                               method=method, rng=rng,
                                               ledger=cluster_ledger)
            result.q |= local.q
            color_round_cost = max(color_round_cost, cluster_ledger.total_rounds)
            # Selected nodes deactivate globally active nodes within 2k hops.
            for node in local.q:
                globally_active -= distance_neighborhood(graph, node, 2 * k,
                                                         restrict_to=globally_active)
                globally_active.discard(node)
        if color_round_cost:
            ledger.charge(color_round_cost, label=f"color-{color}-sparsification")
        ledger.charge_flooding(2 * k, label=f"color-{color}-border-and-deactivation")
        result.iterations.append(PowerIterationRecord(
            s=color, delta_a=float(max_degree(graph)),
            active_before=len(globally_active), active_after=len(globally_active),
            max_distance_s_degree=0, rounds=color_round_cost))

    result.sequence.append(set(result.q))
    return result

"""Theorem 1.2: randomized MIS of ``G^k`` in the CONGEST model (Section 8.2).

The algorithm is the power-graph instantiation of the shattering framework:

1. **Pre-shattering**: ``Theta(log Delta_k)`` steps of BeepingMIS simulated
   on ``G^k`` (ID-tagged beeps, Lemma 8.2; ``O(k)`` rounds per step).
2. **Ruling set of the undecided nodes**: a ``(5k+1, O(k^2 log log n))``-
   ruling set ``R`` of the undecided nodes ``B`` with respect to distances
   in ``G`` ([Gha19, Lemma 2.2]), together with a partition of ``B`` into
   balls around the rulers (Claim 7.6).
3. **Distance-k ball graph** (Lemma 8.3): the balls are extended by disjoint
   radius-``k`` borders; the resulting virtual graph preserves distance-``k``
   adjacency, so distinct connected components can be finished independently.
4. **Network decomposition + post-shattering**: each ball-graph component is
   decomposed into few colors of well-separated clusters; the clusters of one
   color run ``O(log_N n)`` parallel BeepingMIS instances on ``G^k`` with
   fresh short IDs from ``[N]``, ``N = O(Delta^{4k} log n)``, and adopt a
   successful one (Section 8.2, "Final MIS").

The output is a maximal independent set of ``G^k`` (Corollary 8.5 allows
restricting the candidates to a subset ``Q``, which is how the ruling-set
algorithm of Corollary 1.3 uses it).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Hashable, Iterable

import networkx as nx

from repro.congest.cost import RoundLedger
from repro.decomposition.ball_graph import form_distance_k_ball_graph
from repro.decomposition.network_decomposition import network_decomposition
from repro.graphs.power import bounded_bfs, distance_neighborhood, power_adjacency
from repro.graphs.properties import max_degree
from repro.mis.beeping import BeepingMISProcess, default_step_budget
from repro.ruling.greedy import greedy_mis, greedy_ruling_set

Node = Hashable

__all__ = ["PowerMISResult", "power_graph_mis"]


@dataclass
class PowerMISResult:
    """Output and diagnostics of the randomized MIS of ``G^k``."""

    mis: set[Node]
    k: int
    undecided_after_pre: set[Node]
    component_sizes: list[int]
    ruling_set_size: int
    post_instances: int
    ledger: RoundLedger = field(default_factory=RoundLedger)
    phase_rounds: dict[str, int] = field(default_factory=dict)

    @property
    def rounds(self) -> int:
        return self.ledger.total_rounds


def _power_adjacency(graph: nx.Graph, k: int,
                     nodes: Iterable[Node]) -> dict[Node, set[Node]]:
    return power_adjacency(graph, k, set(nodes))


def power_graph_mis(graph: nx.Graph, k: int, *,
                    candidates: set[Node] | None = None,
                    rng: random.Random | None = None,
                    ledger: RoundLedger | None = None,
                    pre_steps: int | None = None,
                    post_instances: int | None = None) -> PowerMISResult:
    """Theorem 1.2 / Corollary 8.5: a maximal independent set of ``G^k[candidates]``.

    Parameters
    ----------
    graph:
        The communication network ``G``.
    k:
        The power.
    candidates:
        Nodes allowed to join (default: all).  Non-candidates relay messages
        but never join; the output is then an MIS of ``G^k[candidates]``.
    pre_steps:
        Override the ``Theta(log Delta_k)`` pre-shattering budget.
    post_instances:
        Number of parallel BeepingMIS instances per cluster in the
        post-shattering phase (default ``ceil(log_N n)``).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    rng = rng or random.Random(0)
    ledger = ledger if ledger is not None else RoundLedger()
    nodes = set(graph.nodes()) if candidates is None else set(candidates)
    n = max(2, graph.number_of_nodes())
    id_bits = max(1, math.ceil(math.log2(n)))
    phase_rounds: dict[str, int] = {}

    # ------------------------------------------------------- pre-shattering
    adjacency = _power_adjacency(graph, k, nodes)
    delta_k = max((len(neighbors) for neighbors in adjacency.values()), default=1)
    if pre_steps is None:
        pre_steps = default_step_budget(delta_k, scale=8)

    before = ledger.total_rounds
    process = BeepingMISProcess(adjacency, candidates=nodes, rng=rng)
    process.run(pre_steps)
    per_step = 2 * k * max(1, math.ceil(id_bits / max(1, ledger.bandwidth_bits)))
    ledger.charge(per_step * process.steps_run, label="pre-shattering")
    mis = set(process.mis)
    undecided = set(process.undecided)
    undecided_after_pre = set(undecided)
    phase_rounds["pre-shattering"] = ledger.total_rounds - before

    if not undecided:
        return PowerMISResult(mis=mis, k=k, undecided_after_pre=undecided_after_pre,
                              component_sizes=[], ruling_set_size=0, post_instances=0,
                              ledger=ledger, phase_rounds=phase_rounds)

    # ------------------------------------------- ruling set of the undecided
    before = ledger.total_rounds
    ruling = greedy_ruling_set(graph, alpha=5 * k + 1, targets=undecided, key=str)
    loglog = max(1, math.ceil(math.log2(1 + math.log2(n))))
    ledger.charge(max(1, k * k * loglog), label="ruling-set")

    balls: dict[Node, set[Node]] = {ruler: {ruler} for ruler in ruling}
    assignment_radius = 5 * k  # the greedy ruling set dominates within 5k hops
    for node in undecided:
        if node in ruling:
            continue
        distances = bounded_bfs(graph, node, assignment_radius)
        reachable = [(distances[ruler], str(ruler), ruler) for ruler in ruling
                     if ruler in distances]
        if reachable:
            balls[min(reachable)[2]].add(node)
        else:
            full = bounded_bfs(graph, node, graph.number_of_nodes())
            closest = min(ruling, key=lambda ruler: (full.get(ruler, math.inf), str(ruler)))
            balls[closest].add(node)
    phase_rounds["ruling-set"] = ledger.total_rounds - before

    # ---------------------------------------------------- distance-k ball graph
    before = ledger.total_rounds
    node_ids = {node: index + 1 for index, node in enumerate(sorted(graph.nodes(), key=str))}
    ball_graph = form_distance_k_ball_graph(graph, balls, k=k, node_ids=node_ids,
                                            undecided=undecided, ledger=ledger)
    phase_rounds["ball-graph"] = ledger.total_rounds - before

    components = [set(component) for component in nx.connected_components(ball_graph.graph)]
    component_sizes = []
    for component in components:
        size = sum(len(balls[center]) for center in component)
        component_sizes.append(size)

    # -------------------------------- network decomposition + post-shattering
    before = ledger.total_rounds
    big_n = max(2, int(component_size_bound_power(n, delta_k)))
    if post_instances is None:
        post_instances = max(1, math.ceil(math.log(n, max(2, big_n))))

    max_component_rounds = 0
    blocked: set[Node] = set()
    for node in mis:
        blocked.add(node)
        blocked |= distance_neighborhood(graph, node, k)

    for component in components:
        component_ledger = RoundLedger(bandwidth_bits=ledger.bandwidth_bits)
        decomposition = network_decomposition(ball_graph.graph.subgraph(component),
                                              separation=2, rng=rng,
                                              ledger=component_ledger)
        for color in range(decomposition.num_colors):
            clusters = decomposition.clusters_of_color(color)
            color_rounds = 0
            for cluster in clusters:
                cluster_undecided: set[Node] = set()
                for center in cluster.nodes:
                    cluster_undecided |= balls[center]
                cluster_undecided = (cluster_undecided & undecided) - blocked
                if not cluster_undecided:
                    continue
                added, instance_rounds = _finish_cluster(
                    graph, k, cluster_undecided, blocked, rng,
                    instances=post_instances, big_n=big_n,
                    bandwidth_bits=ledger.bandwidth_bits)
                for node in added:
                    mis.add(node)
                    blocked.add(node)
                    blocked |= distance_neighborhood(graph, node, k)
                color_rounds = max(color_rounds, instance_rounds)
            if color_rounds:
                component_ledger.charge(color_rounds, label=f"post-color-{color}")
        max_component_rounds = max(max_component_rounds, component_ledger.total_rounds)
    if max_component_rounds:
        ledger.charge(max_component_rounds, label="post-shattering")
    phase_rounds["post-shattering"] = ledger.total_rounds - before

    # Safety net for nodes left undominated (only possible when the step
    # budgets were deliberately truncated): finish greedily so the output is
    # always a valid MIS of G^k[candidates].
    for node in sorted(nodes, key=str):
        if node in blocked:
            continue
        if node in mis:
            continue
        neighborhood = distance_neighborhood(graph, node, k, restrict_to=mis)
        if neighborhood:
            blocked.add(node)
            continue
        mis.add(node)
        blocked.add(node)
        blocked |= distance_neighborhood(graph, node, k)

    return PowerMISResult(mis=mis, k=k, undecided_after_pre=undecided_after_pre,
                          component_sizes=component_sizes,
                          ruling_set_size=len(ruling), post_instances=post_instances,
                          ledger=ledger, phase_rounds=phase_rounds)


def component_size_bound_power(n: int, delta_k: int) -> float:
    """The post-shattering component bound ``N = O(Delta_k^4 * log n)`` (Section 8.2)."""
    return max(2.0, (max(2, delta_k) ** 4) * math.log(max(2, n)))


def _finish_cluster(graph: nx.Graph, k: int, cluster_undecided: set[Node],
                    blocked: set[Node], rng: random.Random, *,
                    instances: int, big_n: float,
                    bandwidth_bits: int) -> tuple[set[Node], int]:
    """Finish one cluster with parallel BeepingMIS instances (Section 8.2).

    The cluster's undecided nodes get fresh IDs from ``[N]``; ``instances``
    independent BeepingMIS executions run in parallel on ``G^k`` restricted
    to the cluster, each allotted ``O(log N)`` bandwidth; the first complete
    one is adopted.  If none completes within the step budget (possible for
    adversarial random bits), the exact completion is used -- the cluster
    leader has collected the whole cluster topology by then, and unbounded
    local computation is free in CONGEST.

    Returns the added MIS nodes and the charged number of rounds.
    """
    adjacency = _power_adjacency(graph, k, cluster_undecided)
    steps = max(1, math.ceil(math.log2(big_n)))
    log_big_n = max(1, math.ceil(math.log2(big_n)))
    per_step = 2 * k * max(1, math.ceil(log_big_n / max(1, bandwidth_bits)))

    chosen: set[Node] | None = None
    for instance in range(max(1, instances)):
        process = BeepingMISProcess(adjacency, rng=rng)
        if process.run_until_complete(steps):
            chosen = process.mis
            break
    if chosen is None:
        chosen = greedy_mis(graph, k=k, candidates=sorted(cluster_undecided, key=str))

    # Respect the globally blocked nodes (decided by earlier colors).
    added = set()
    for node in sorted(chosen, key=str):
        if node in blocked:
            continue
        if distance_neighborhood(graph, node, k, restrict_to=added):
            continue
        added.add(node)
    rounds = per_step * steps + 2 * k  # parallel instances + success aggregation
    return added, rounds

"""BeepingMIS ([Gha17], Section 2.2) on ``G`` and on power graphs (Lemma 8.2).

The algorithm runs in *steps* of two communication rounds.  Every undecided
node ``v`` keeps a marking probability ``p_v`` (initially 1/2):

1. ``v`` marks itself with probability ``p_v`` and beeps if marked;
2. a marked node with no marked neighbor joins the MIS and beeps again;
   the nodes that joined and their neighbors become decided.

The probability update is the beeping rule: if ``v`` heard a marked beep
from a neighbor, ``p_v`` halves; otherwise it doubles (capped at 1/2).
``O(log deg(v) + log 1/eps)`` steps decide ``v`` with probability
``1 - eps`` [Gha17, Theorem 2.1]; ``Theta(log Delta)`` steps shatter the
graph (Lemma 8.1).

On ``G^k`` the beeps are forwarded for ``k`` hops and must carry the ID of
the beeping node so that a beeping node does not confuse a relayed copy of
its own beep with a neighbor's (the paper's "minor but crucial
modification"); each node forwards at most two distinct IDs, which is enough
for every beeper to detect whether it has a beeping distance-``k`` neighbor
(Lemma 8.2).  One step therefore costs ``O(k * ceil(a / bandwidth))``
rounds.

Three entry points are provided:

* :class:`BeepingMISProcess` -- the reusable process over an explicit
  adjacency structure (used by the shattering pipelines, which need to run
  it on residual components and on ``G^k``);
* :func:`beeping_mis` / :func:`beeping_mis_power` -- convenience wrappers
  with round accounting;
* :class:`BeepingMISNode` -- the per-node state machine for the real
  message-passing simulator on ``G``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping

import networkx as nx

from repro.congest.cost import RoundLedger
from repro.congest.network import CongestNetwork
from repro.congest.node import NodeAlgorithm
from repro.congest.simulator import SimulationResult, Simulator
from repro.graphs.power import power_adjacency
from repro.graphs.properties import max_degree

Node = Hashable

__all__ = ["BeepingMISNode", "BeepingMISProcess", "BeepingResult",
           "beeping_mis", "beeping_mis_power", "default_step_budget",
           "simulate_beeping_mis"]


def default_step_budget(delta: int, scale: int = 8) -> int:
    """``Theta(log Delta)`` steps -- the pre-shattering budget of Lemma 8.1."""
    return max(1, scale * max(1, math.ceil(math.log2(max(2, delta)))))


@dataclass
class BeepingResult:
    """Output of a BeepingMIS execution."""

    mis: set[Node]
    undecided: set[Node]
    steps: int
    ledger: RoundLedger = field(default_factory=RoundLedger)

    @property
    def rounds(self) -> int:
        return self.ledger.total_rounds

    @property
    def complete(self) -> bool:
        """True iff every node got decided (the MIS is maximal)."""
        return not self.undecided


class BeepingMISProcess:
    """BeepingMIS over an explicit (symmetric) adjacency structure.

    Parameters
    ----------
    adjacency:
        ``node -> set of neighbors`` in the problem graph (``G`` itself, an
        induced component, or the distance-``k`` adjacency of ``G^k``).
    candidates:
        Nodes allowed to join the MIS (default: all).  Non-candidates start
        decided but their adjacency still blocks candidates -- this realises
        Corollary 8.5 (MIS of ``G^k[Q]``).
    rng:
        Source of randomness.
    initial_probability:
        The starting value of ``p_v`` (1/2 in the paper).
    """

    def __init__(self, adjacency: Mapping[Node, set[Node]], *,
                 candidates: Iterable[Node] | None = None,
                 rng: random.Random | None = None,
                 initial_probability: float = 0.5) -> None:
        self.adjacency = {node: set(neighbors) for node, neighbors in adjacency.items()}
        self.rng = rng or random.Random(0)
        all_nodes = set(self.adjacency)
        self.candidates = all_nodes if candidates is None else set(candidates) & all_nodes
        self.undecided: set[Node] = set(self.candidates)
        self.mis: set[Node] = set()
        self.probability = {node: initial_probability for node in self.candidates}
        self.initial_probability = initial_probability
        self.steps_run = 0

    def step(self) -> set[Node]:
        """Run one step; returns the nodes that joined the MIS in this step."""
        self.steps_run += 1
        marked = {node for node in self.undecided
                  if self.rng.random() < self.probability[node]}

        joined: set[Node] = set()
        for node in marked:
            if not (self.adjacency[node] & marked):
                joined.add(node)

        # Probability update from the beeps of the marking round.
        for node in self.undecided:
            heard_marked_neighbor = bool(self.adjacency[node] & marked)
            if heard_marked_neighbor:
                self.probability[node] = self.probability[node] / 2.0
            else:
                self.probability[node] = min(self.initial_probability,
                                             2.0 * self.probability[node])

        self.mis |= joined
        decided = set(joined)
        for node in joined:
            decided |= self.adjacency[node]
        self.undecided -= decided
        return joined

    def run(self, steps: int) -> None:
        for _ in range(max(0, steps)):
            if not self.undecided:
                return
            self.step()

    def run_until_complete(self, max_steps: int) -> bool:
        """Run up to ``max_steps``; return True iff every candidate got decided."""
        self.run(max_steps)
        return not self.undecided


def beeping_mis(graph: nx.Graph, *, steps: int | None = None,
                rng: random.Random | None = None,
                ledger: RoundLedger | None = None,
                candidates: Iterable[Node] | None = None) -> BeepingResult:
    """BeepingMIS on ``G`` for ``steps`` steps (2 rounds per step).

    ``steps`` defaults to enough steps (``Theta(log n)``) to finish w.h.p.
    """
    rng = rng or random.Random(0)
    ledger = ledger if ledger is not None else RoundLedger()
    n = max(2, graph.number_of_nodes())
    if steps is None:
        steps = default_step_budget(n, scale=16)
    adjacency = {node: set(graph.neighbors(node)) for node in graph.nodes()}
    process = BeepingMISProcess(adjacency, candidates=candidates, rng=rng)
    process.run(steps)
    for _ in range(process.steps_run):
        ledger.charge(2, label="beeping-step")
    return BeepingResult(mis=process.mis, undecided=process.undecided,
                         steps=process.steps_run, ledger=ledger)


def beeping_mis_power(graph: nx.Graph, k: int, *, steps: int | None = None,
                      rng: random.Random | None = None,
                      ledger: RoundLedger | None = None,
                      candidates: Iterable[Node] | None = None,
                      id_bits: int | None = None,
                      bandwidth_bits: int | None = None) -> BeepingResult:
    """BeepingMIS simulated on ``G^k`` with communication network ``G``.

    One step costs ``2 * k * ceil(a / bandwidth)`` rounds (Lemma 8.2): the
    ID-tagged beeps of the marking round and of the joining round are both
    forwarded for ``k`` hops.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    rng = rng or random.Random(0)
    ledger = ledger if ledger is not None else RoundLedger()
    n = max(2, graph.number_of_nodes())
    if bandwidth_bits is None:
        bandwidth_bits = ledger.bandwidth_bits
    if id_bits is None:
        id_bits = max(1, math.ceil(math.log2(n)))

    nodes = set(graph.nodes()) if candidates is None else set(candidates)
    adjacency = power_adjacency(graph, k, nodes)
    if steps is None:
        delta_k = max((len(neighbors) for neighbors in adjacency.values()), default=1)
        steps = default_step_budget(max(delta_k, n), scale=16)

    process = BeepingMISProcess(adjacency, candidates=nodes, rng=rng)
    process.run(steps)
    per_step = 2 * k * max(1, math.ceil(id_bits / max(1, bandwidth_bits)))
    for _ in range(process.steps_run):
        ledger.charge(per_step, label="beeping-power-step")
    return BeepingResult(mis=process.mis, undecided=process.undecided,
                         steps=process.steps_run, ledger=ledger)


class BeepingMISNode(NodeAlgorithm):
    """Per-node BeepingMIS for the message-passing simulator (MIS of ``G``).

    Messages are single beeps (1 bit): a mark-beep in odd rounds, a join-beep
    in even rounds.  Output: ``True`` iff the node joined the MIS.
    """

    def __init__(self, max_steps: int = 200) -> None:
        super().__init__()
        self.max_steps = max_steps
        self.probability = 0.5
        self.marked = False
        self.heard_mark = False
        self.decided = False
        self.in_mis = False

    def send(self, round_number: int) -> Mapping[Node, object]:
        # Beeps are 1-bit messages; their meaning is given by the round
        # parity (odd = "I am marked", even = "I joined the MIS").
        if self.decided:
            return {}
        if round_number % 2 == 1:
            self.marked = self.rng.random() < self.probability
            if self.marked:
                return self.broadcast(None)
            return {}
        if self.marked and not self.heard_mark:
            return self.broadcast(None)
        return {}

    def receive(self, round_number: int, inbox: Mapping[Node, object]) -> None:
        if self.decided:
            return
        if round_number % 2 == 1:
            self.heard_mark = bool(inbox)
            if self.heard_mark:
                self.probability /= 2.0
            else:
                self.probability = min(0.5, 2.0 * self.probability)
            return
        if self.marked and not self.heard_mark:
            self.decided = True
            self.in_mis = True
            self.halt(True)
            return
        if inbox:
            self.decided = True
            self.halt(False)
            return
        if round_number >= 2 * self.max_steps:
            # Out of budget: undecided nodes report False; the driver treats
            # an incomplete run as "not shattered yet".
            self.halt(False)

    def finalize(self) -> None:
        if not self.halted:
            self.halt(self.in_mis)


def simulate_beeping_mis(network: CongestNetwork, *, seed: int = 0,
                         max_steps: int = 200, engine=None, observers=(),
                         max_rounds: int = 10_000,
                         ) -> tuple[set[Node], SimulationResult]:
    """Run :class:`BeepingMISNode` on the layered runtime; returns ``(mis, result)``.

    Like :func:`repro.mis.luby.simulate_luby_mis`, this is the driver that
    wires the per-node state machine into the simulator facade with a
    selectable round engine and observers; ``engine="vector"`` runs
    :class:`BeepingMISNode` as batched numpy rounds, bit-identical to the
    scalar engines for the same seed.
    """
    result = Simulator(network, lambda node: BeepingMISNode(max_steps=max_steps),
                       seed=seed, engine=engine, observers=observers).run(max_rounds)
    mis = {node for node, joined in result.outputs.items() if joined}
    return mis, result

"""Randomized symmetry breaking: MIS and ruling sets on ``G`` and ``G^k``.

Contents
--------
``luby``
    Luby's algorithm on ``G`` (message-passing simulator) and on ``G^k``
    (Section 8.1's baseline, ``O(k log n)`` rounds).
``beeping``
    The BeepingMIS algorithm of [Gha17] on ``G`` and its ID-tagged
    simulation on ``G^k`` (Lemma 8.2).
``shattering``
    Theorem 1.4 -- the revisited shattering MIS of ``G`` with the paper's
    two post-shattering approaches (Section 7).
``kp12``
    The degree-reduction sparsification of [KP12]/[BKP14] used by
    Corollary 1.3.
``power_mis``
    Theorem 1.2 -- randomized MIS of ``G^k`` via shattering, ball graphs and
    network decomposition (Section 8.2).
``power_ruling``
    Corollary 1.3 -- ``beta``-ruling sets of ``G^k`` (Section 8.3).
"""

from repro.mis.beeping import (
    BeepingMISNode,
    BeepingMISProcess,
    beeping_mis,
    beeping_mis_power,
    simulate_beeping_mis,
)
from repro.mis.kp12 import kp12_sparsify, kp12_sparsify_power
from repro.mis.luby import LubyMISNode, luby_mis, luby_mis_power, simulate_luby_mis
from repro.mis.power_mis import PowerMISResult, power_graph_mis
from repro.mis.power_ruling import PowerRulingSetResult, power_graph_ruling_set
from repro.mis.shattering import (
    ShatteringMISResult,
    component_size_bound,
    is_s_connected,
    pre_shattering,
    shattering_mis,
)

__all__ = [
    "BeepingMISNode",
    "BeepingMISProcess",
    "LubyMISNode",
    "PowerMISResult",
    "PowerRulingSetResult",
    "ShatteringMISResult",
    "beeping_mis",
    "beeping_mis_power",
    "component_size_bound",
    "is_s_connected",
    "kp12_sparsify",
    "kp12_sparsify_power",
    "luby_mis",
    "luby_mis_power",
    "power_graph_mis",
    "power_graph_ruling_set",
    "pre_shattering",
    "shattering_mis",
    "simulate_beeping_mis",
    "simulate_luby_mis",
]

"""Theorem 1.4: MIS of ``G`` via shattering, revisited (Section 7).

The algorithm has two phases:

* **Pre-shattering** (Section 7.1): run ``Theta(log Delta)`` steps of the
  randomized base algorithm (BeepingMIS here, matching [Gha16, Gha17]).
  With high probability the undecided nodes ``B`` shatter: every
  ``s``-connected subset of ``B`` has at most ``O(log_Delta n * Delta^4)``
  nodes (Lemma 7.3 (P2)) and no 5-independent, ``(8+s)``-connected subset of
  size ``log_Delta n`` survives (P1).

* **Post-shattering** (Section 7.2): finish the small components.  The paper
  gives two approaches; both are implemented:

  - *Approach 1 (two pre-shattering phases, Section 7.2.1)*: rerun the base
    algorithm on every residual component ``C`` in parallel, compute a
    ``(5, O(log log n))``-ruling set of the still-undecided nodes *with
    respect to distances in C*, build the ball graph, compute a network
    decomposition of it, and finish cluster by cluster.
  - *Approach 2 (one pre-shattering phase, Section 7.2.2)*: compute the
    ruling set of the undecided nodes with respect to distances in ``G``
    together with the connected balls of Claim 7.6, and proceed on the ball
    graph directly.

  In both approaches the simulation finishes each cluster with an exact MIS
  completion (unbounded local computation on information the cluster leader
  has collected, as in the paper's "solving each cluster in time
  proportional to the cluster diameter"), and the rounds are charged per the
  paper's formulas.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Hashable, Iterable

import networkx as nx

from repro.congest.cost import RoundLedger
from repro.decomposition.ball_graph import form_distance_k_ball_graph
from repro.decomposition.network_decomposition import network_decomposition
from repro.graphs.power import bounded_bfs, distance_neighborhood, k_connected_components
from repro.graphs.properties import max_degree
from repro.mis.beeping import BeepingMISProcess, default_step_budget
from repro.ruling.greedy import greedy_mis, greedy_ruling_set

Node = Hashable

__all__ = [
    "ShatteringMISResult",
    "component_size_bound",
    "is_s_connected",
    "pre_shattering",
    "shattering_mis",
]


def component_size_bound(n: int, delta: int) -> float:
    """The Lemma 7.3 (P2) bound ``O(t * Delta^4)`` with ``t = log_Delta n``.

    The constant hidden in the O() is taken as 1 for reporting purposes; the
    shattering experiment records the measured maximum component size next
    to this reference value.
    """
    delta = max(2, delta)
    t = max(1.0, math.log(max(2, n)) / math.log(delta))
    return t * (delta ** 4)


def is_s_connected(graph: nx.Graph, subset: Iterable[Node], s: int) -> bool:
    """True iff ``subset`` is ``s``-connected in ``G`` (``G^s[subset]`` connected)."""
    subset = set(subset)
    if len(subset) <= 1:
        return True
    return len(k_connected_components(graph, subset, s)) == 1


@dataclass
class ShatteringMISResult:
    """Output and diagnostics of the shattering MIS."""

    mis: set[Node]
    pre_shattering_mis: set[Node]
    undecided_after_pre: set[Node]
    component_sizes: list[int]
    ruling_set_sizes: list[int]
    ledger: RoundLedger = field(default_factory=RoundLedger)
    approach: str = "two-phase"

    @property
    def rounds(self) -> int:
        return self.ledger.total_rounds

    @property
    def max_component_size(self) -> int:
        return max(self.component_sizes, default=0)


def pre_shattering(graph: nx.Graph, *, steps: int | None = None,
                   rng: random.Random | None = None,
                   ledger: RoundLedger | None = None,
                   scale: int = 8) -> tuple[set[Node], set[Node]]:
    """Run the pre-shattering phase; returns ``(I, B)``.

    ``I`` is the independent set found by ``Theta(log Delta)`` BeepingMIS
    steps and ``B`` the undecided nodes (not in ``I`` and with no neighbor
    in ``I``).
    """
    rng = rng or random.Random(0)
    ledger = ledger if ledger is not None else RoundLedger()
    delta = max_degree(graph)
    if steps is None:
        steps = default_step_budget(delta, scale=scale)
    adjacency = {node: set(graph.neighbors(node)) for node in graph.nodes()}
    process = BeepingMISProcess(adjacency, rng=rng)
    process.run(steps)
    for _ in range(process.steps_run):
        ledger.charge(2, label="pre-shattering-step")
    return process.mis, process.undecided


def _finish_component_via_ball_graph(graph: nx.Graph,
                                     component: set[Node],
                                     undecided: set[Node],
                                     already_in_mis: set[Node],
                                     rng: random.Random,
                                     ledger: RoundLedger,
                                     domination: int,
                                     ) -> tuple[set[Node], int]:
    """Shared post-shattering machinery for one residual component.

    Computes a ``(5, domination)``-ruling set of the undecided nodes of the
    component (with respect to distances inside the component), forms the
    ball graph, decomposes it, and completes the MIS cluster by cluster in
    color order.  Returns the newly added MIS nodes and the ruling-set size.
    """
    if not undecided:
        return set(), 0
    subgraph = graph.subgraph(component)

    # (5, O(log log n))-ruling set of the undecided nodes w.r.t. distances in C.
    ruling = greedy_ruling_set(subgraph, alpha=5, targets=undecided,
                               key=str)
    loglog = max(1, math.ceil(math.log2(1 + math.log2(max(2, graph.number_of_nodes())))))
    ledger.charge(max(1, 5 * loglog), label="post-ruling-set")

    # Partition the undecided nodes into balls around the closest ruler.
    balls: dict[Node, set[Node]] = {ruler: {ruler} for ruler in ruling}
    for node in undecided:
        if node in ruling:
            continue
        distances = bounded_bfs(subgraph, node, max(1, domination))
        best = None
        best_key = None
        for ruler in ruling:
            if ruler in distances:
                key = (distances[ruler], str(ruler))
                if best_key is None or key < best_key:
                    best_key = key
                    best = ruler
        if best is None:
            # The greedy ruling set dominates within alpha - 1 = 4 hops, so
            # this only happens if domination was set too small; fall back to
            # the nearest ruler without a radius cap.
            full = bounded_bfs(subgraph, node, subgraph.number_of_nodes())
            best = min(ruling, key=lambda ruler: (full.get(ruler, math.inf), str(ruler)))
        balls[best].add(node)

    ball_graph = form_distance_k_ball_graph(subgraph, balls, k=1, ledger=ledger,
                                            undecided=set(undecided))

    # Network decomposition of the ball graph (a graph on <= |ruling| nodes).
    decomposition = network_decomposition(ball_graph.graph, separation=2, rng=rng,
                                          ledger=ledger)

    # Finish cluster by cluster, color by color.  A cluster is the union of
    # its balls; its MIS completion must respect nodes already decided by
    # earlier colors / the pre-shattering phase.
    new_mis: set[Node] = set()
    blocked: set[Node] = set()
    for node in already_in_mis:
        blocked.add(node)
        blocked.update(graph.neighbors(node))
    for color in range(decomposition.num_colors):
        for cluster in decomposition.clusters_of_color(color):
            cluster_nodes: set[Node] = set()
            for center in cluster.nodes:
                cluster_nodes |= balls.get(center, set())
            cluster_nodes &= undecided
            addition = greedy_mis(graph, k=1,
                                  candidates=sorted(cluster_nodes - blocked, key=str))
            addition = {node for node in addition if node not in blocked}
            # Re-filter sequentially to respect intra-call conflicts.
            final_addition: set[Node] = set()
            for node in sorted(addition, key=str):
                if node in blocked:
                    continue
                final_addition.add(node)
                blocked.add(node)
                blocked.update(graph.neighbors(node))
            new_mis |= final_addition
            ledger.charge(max(1, 2 * cluster.radius + 1), label="post-cluster")
    return new_mis, len(ruling)


def shattering_mis(graph: nx.Graph, *, approach: str = "two-phase",
                   rng: random.Random | None = None,
                   ledger: RoundLedger | None = None,
                   pre_steps: int | None = None) -> ShatteringMISResult:
    """Theorem 1.4: a maximal independent set of ``G`` via shattering.

    Parameters
    ----------
    approach:
        ``"two-phase"`` (Section 7.2.1: a second pre-shattering phase is run
        inside every residual component) or ``"one-phase"`` (Section 7.2.2:
        the ruling set is computed directly on the undecided nodes w.r.t.
        distances in ``G``).
    """
    if approach not in ("two-phase", "one-phase"):
        raise ValueError("approach must be 'two-phase' or 'one-phase'")
    rng = rng or random.Random(0)
    ledger = ledger if ledger is not None else RoundLedger()

    mis, undecided = pre_shattering(graph, steps=pre_steps, rng=rng, ledger=ledger)
    pre_mis = set(mis)
    mis = set(mis)
    undecided_after_pre = set(undecided)

    components = [set(component)
                  for component in nx.connected_components(graph.subgraph(undecided))]
    component_sizes = [len(component) for component in components]
    ruling_sizes: list[int] = []

    # Residual components are processed in parallel in the distributed
    # algorithm, so the round cost of the post-shattering phase is the
    # maximum over components, not the sum.
    max_component_rounds = 0
    if approach == "two-phase":
        delta = max_degree(graph)
        second_steps = default_step_budget(delta, scale=8)
        for component in components:
            subgraph = graph.subgraph(component)
            adjacency = {node: set(subgraph.neighbors(node)) for node in component}
            process = BeepingMISProcess(adjacency, rng=rng)
            process.run(second_steps)
            # The second phase's independent set is only valid w.r.t. the
            # component; it is also independent in G because residual
            # components are non-adjacent in G and pre-shattering already
            # removed neighbors of the phase-1 MIS.
            mis |= process.mis
            remaining = process.undecided
            component_ledger = RoundLedger(bandwidth_bits=ledger.bandwidth_bits)
            added, ruling_size = _finish_component_via_ball_graph(
                graph, component, remaining, mis, rng, component_ledger, domination=8)
            mis |= added
            ruling_sizes.append(ruling_size)
            max_component_rounds = max(max_component_rounds, component_ledger.total_rounds)
        if components:
            # All components run the second phase in parallel: charge it once.
            ledger.charge(2 * second_steps, label="second-pre-shattering")
    else:
        for component in components:
            component_ledger = RoundLedger(bandwidth_bits=ledger.bandwidth_bits)
            added, ruling_size = _finish_component_via_ball_graph(
                graph, component, set(component), mis, rng, component_ledger, domination=8)
            mis |= added
            ruling_sizes.append(ruling_size)
            max_component_rounds = max(max_component_rounds, component_ledger.total_rounds)
    if max_component_rounds:
        ledger.charge(max_component_rounds, label="post-shattering")

    # Safety net: any node left uncovered (possible only if the randomized
    # phases were cut short) is finished greedily -- this preserves
    # correctness of the output without affecting the measured shattering
    # statistics.
    uncovered = [node for node in graph.nodes()
                 if node not in mis and not any(neighbor in mis for neighbor in graph.neighbors(node))]
    for node in sorted(uncovered, key=str):
        if node not in mis and not any(neighbor in mis for neighbor in graph.neighbors(node)):
            mis.add(node)

    return ShatteringMISResult(mis=mis, pre_shattering_mis=pre_mis,
                               undecided_after_pre=undecided_after_pre,
                               component_sizes=component_sizes,
                               ruling_set_sizes=ruling_sizes,
                               ledger=ledger, approach=approach)

"""Corollary 1.3: randomized ``beta``-ruling sets of ``G^k`` (Section 8.3).

The algorithm iterates the KP12 degree-reduction sparsification ``beta - 1``
times on ``G^k`` (with the parameter schedule
``f_s = 2^{(log Delta_k)^{1 - s/(beta-1)}}`` that balances the iteration
costs), producing a chain ``V ⊇ Q_1 ⊇ ... ⊇ Q_{beta-1}`` where each ``Q_s``
dominates ``Q_{s-1}`` in ``G^k`` and the maximum degree of
``G^k[Q_{beta-1}]`` is ``O(log n)``.  A maximal independent set of
``G^k[Q_{beta-1}]`` -- computed with the Theorem 1.2 algorithm restricted to
the candidate set (Corollary 8.5) -- is then a ``(k+1, beta*k)``-ruling set
of ``G``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Hashable

import networkx as nx

from repro.congest.cost import RoundLedger
from repro.graphs.power import power_adjacency
from repro.graphs.properties import max_degree
from repro.mis.kp12 import kp12_sparsify
from repro.mis.power_mis import power_graph_mis

Node = Hashable

__all__ = ["PowerRulingSetResult", "kp12_schedule", "power_graph_ruling_set"]


@dataclass
class PowerRulingSetResult:
    """Output of the randomized power-graph ruling set."""

    ruling_set: set[Node]
    k: int
    beta: int
    chain_sizes: list[int] = field(default_factory=list)
    ledger: RoundLedger = field(default_factory=RoundLedger)
    phase_rounds: dict[str, int] = field(default_factory=dict)

    @property
    def alpha(self) -> int:
        return self.k + 1

    @property
    def domination_bound(self) -> int:
        return self.beta * self.k

    @property
    def rounds(self) -> int:
        return self.ledger.total_rounds


def kp12_schedule(delta_k: int, beta: int) -> list[float]:
    """The parameter schedule ``f_s = 2^{(log Delta_k)^{1 - s/(beta-1)}}``.

    Returns the ``beta - 1`` values ``f_1 > f_2 > ... > f_{beta-1}``; the
    last value is ``2^{(log Delta_k)^0} = 2``.
    """
    if beta < 2:
        return []
    log_delta = max(1.0, math.log2(max(2, delta_k)))
    schedule = []
    for s in range(1, beta):
        exponent = 1.0 - s / (beta - 1)
        schedule.append(2.0 ** (log_delta ** exponent))
    return schedule


def power_graph_ruling_set(graph: nx.Graph, k: int, beta: int, *,
                           rng: random.Random | None = None,
                           ledger: RoundLedger | None = None) -> PowerRulingSetResult:
    """Corollary 1.3: a ``(k+1, beta*k)``-ruling set of ``G``.

    ``beta = 1`` degenerates to an MIS of ``G^k`` (Theorem 1.2).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if beta < 1:
        raise ValueError("beta must be >= 1")
    rng = rng or random.Random(0)
    ledger = ledger if ledger is not None else RoundLedger()
    n = max(2, graph.number_of_nodes())
    phase_rounds: dict[str, int] = {}

    candidates = set(graph.nodes())
    chain_sizes = [len(candidates)]

    # Iterated KP12 sparsification on G^k.
    adjacency = power_adjacency(graph, k, candidates)
    delta_k = max((len(neighbors) for neighbors in adjacency.values()), default=1)
    schedule = kp12_schedule(delta_k, beta)

    before = ledger.total_rounds
    for f in schedule:
        result = kp12_sparsify(adjacency, f, n, rng=rng, ledger=ledger,
                               rounds_per_stage=k)
        candidates = result.q
        chain_sizes.append(len(candidates))
        adjacency = {node: adjacency[node] & candidates for node in candidates}
    phase_rounds["kp12-sparsification"] = ledger.total_rounds - before

    # MIS of G^k[Q_{beta-1}] via Theorem 1.2 restricted to the candidates.
    before = ledger.total_rounds
    mis_result = power_graph_mis(graph, k, candidates=candidates, rng=rng, ledger=ledger)
    phase_rounds["final-mis"] = ledger.total_rounds - before

    return PowerRulingSetResult(ruling_set=mis_result.mis, k=k, beta=beta,
                                chain_sizes=chain_sizes, ledger=ledger,
                                phase_rounds=phase_rounds)

"""Luby's algorithm on ``G`` and on power graphs (Section 8.1).

Luby's algorithm [Lub86, ABI86] in the random-priority formulation of
[MRSZ11]: in every step each undecided node draws a random number from
``[n^c]``; a node whose number is strictly smaller than those of all its
undecided neighbors joins the MIS and its neighborhood becomes decided.  The
algorithm finishes in ``O(log n)`` steps w.h.p.

On the power graph ``G^k`` (with communication network ``G``) each step is
simulated with a ``k``-factor slowdown: the minimum of the random values in
the distance-``k`` neighborhood is aggregated over ``k`` hops and joining
nodes alert their distance-``k`` neighborhood (the paper notes that the
degree-independent variant is essential because nodes do not know their
``G^k`` degree).

Two implementations are provided:

* :class:`LubyMISNode` -- the per-node state machine for the real
  message-passing simulator (``k = 1`` only).
* :func:`luby_mis` / :func:`luby_mis_power` -- graph-level executions with
  round accounting, usable for any ``k``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Hashable, Mapping

import networkx as nx

from repro.congest.cost import RoundLedger
from repro.congest.network import CongestNetwork
from repro.congest.node import NodeAlgorithm
from repro.congest.simulator import SimulationResult, Simulator
from repro.graphs.power import power_adjacency

Node = Hashable

__all__ = ["LubyMISNode", "LubyResult", "luby_mis", "luby_mis_power",
           "simulate_luby_mis"]

#: Random priorities are drawn from [n^PRIORITY_EXPONENT] so ties are unlikely
#: (``c`` in [MRSZ11]); ties are broken by ID to keep runs deterministic
#: given the seed.
PRIORITY_EXPONENT = 3

_PRIORITY_SPACES: dict[int, int] = {}


def shared_priority_space(n: int) -> int:
    """``n ** PRIORITY_EXPONENT`` as one shared int object per ``n``.

    Every node of a run stores the same space; sharing the object keeps
    per-instance protocol state O(1) instead of one multi-digit int per
    node (which dwarfs the adjacency arrays at n >= 10^5).
    """
    space = _PRIORITY_SPACES.get(n)
    if space is None:
        space = _PRIORITY_SPACES[n] = n ** PRIORITY_EXPONENT
    return space


@dataclass
class LubyResult:
    """Output of a graph-level Luby execution."""

    mis: set[Node]
    steps: int
    ledger: RoundLedger = field(default_factory=RoundLedger)

    @property
    def rounds(self) -> int:
        return self.ledger.total_rounds


def _luby_on_adjacency(adjacency: Mapping[Node, set[Node]], rng: random.Random,
                       priority_space: int) -> tuple[set[Node], int]:
    """Run Luby's algorithm on an explicit adjacency structure.

    Returns the MIS and the number of steps used.  The adjacency must be
    symmetric; nodes absent from it are treated as isolated (they join the
    MIS immediately).
    """
    undecided = set(adjacency)
    mis: set[Node] = set()
    steps = 0
    while undecided:
        steps += 1
        priorities = {node: (rng.randrange(priority_space), str(node)) for node in undecided}
        winners = set()
        for node in undecided:
            neighbors = adjacency[node] & undecided
            if all(priorities[node] < priorities[other] for other in neighbors):
                winners.add(node)
        mis |= winners
        decided = set(winners)
        for node in winners:
            decided |= adjacency[node]
        undecided -= decided
    return mis, steps


def luby_mis(graph: nx.Graph, *, rng: random.Random | None = None,
             ledger: RoundLedger | None = None) -> LubyResult:
    """Luby's algorithm on ``G`` (graph-level; 2 rounds per step)."""
    rng = rng or random.Random(0)
    ledger = ledger if ledger is not None else RoundLedger()
    adjacency = {node: set(graph.neighbors(node)) for node in graph.nodes()}
    n = max(2, graph.number_of_nodes())
    mis, steps = _luby_on_adjacency(adjacency, rng, n ** PRIORITY_EXPONENT)
    for step in range(steps):
        ledger.charge(2, label="luby-step")
    return LubyResult(mis=mis, steps=steps, ledger=ledger)


def luby_mis_power(graph: nx.Graph, k: int, *, rng: random.Random | None = None,
                   ledger: RoundLedger | None = None,
                   candidates: set[Node] | None = None) -> LubyResult:
    """Luby's algorithm on ``G^k`` with communication network ``G``.

    Each step costs ``2k`` rounds: ``k`` to aggregate the minimum random
    value over the distance-``k`` neighborhood and ``k`` to alert it after
    joining.  ``candidates`` restricts the nodes allowed to join (MIS of
    ``G^k[candidates]``); distances are still measured in ``G``.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    rng = rng or random.Random(0)
    ledger = ledger if ledger is not None else RoundLedger()
    nodes = set(graph.nodes()) if candidates is None else set(candidates)
    adjacency = power_adjacency(graph, k, nodes)
    n = max(2, graph.number_of_nodes())
    mis, steps = _luby_on_adjacency(adjacency, rng, n ** PRIORITY_EXPONENT)
    for step in range(steps):
        ledger.charge(2 * k, label="luby-power-step")
    return LubyResult(mis=mis, steps=steps, ledger=ledger)


class LubyMISNode(NodeAlgorithm):
    """Per-node Luby for the message-passing simulator (MIS of ``G``).

    Protocol per step (2 rounds):

    * odd round: every undecided node broadcasts a fresh random priority;
    * even round: a node that held the strict minimum among itself and its
      undecided neighbors broadcasts ``("join", id)``, joins the MIS and
      halts; nodes hearing a join halt as dominated.

    Output: ``True`` if the node is in the MIS, ``False`` otherwise.
    """

    UNDECIDED = "undecided"
    IN_MIS = "in-mis"
    DOMINATED = "dominated"

    def __init__(self) -> None:
        super().__init__()
        self.state = self.UNDECIDED
        self.priority: tuple[int, int] | None = None
        self._min_neighbor_priority: tuple[int, int] | None = None

    def initialize(self) -> None:
        self._priority_space = shared_priority_space(self.n)

    def send(self, round_number: int) -> Mapping[Node, object]:
        # Message kinds are distinguished by round parity (odd = priority,
        # even = join beep), which keeps every message within O(log n) bits.
        if self.state != self.UNDECIDED:
            return {}
        if round_number % 2 == 1:
            self.priority = (self.rng.randrange(self._priority_space), self.node_id)
            return self.broadcast(self.priority)
        if self._is_local_minimum():
            return self.broadcast(True)
        return {}

    def _is_local_minimum(self) -> bool:
        # Only undecided neighbors broadcast priorities, so the inbox of the
        # odd round is exactly the relevant comparison set; its minimum is
        # cached once per step instead of being recomputed on every check.
        if self.priority is None:
            return False
        minimum = self._min_neighbor_priority
        return minimum is None or self.priority < minimum

    def receive(self, round_number: int, inbox: Mapping[Node, object]) -> None:
        if self.state != self.UNDECIDED:
            return
        if round_number % 2 == 1:
            # Payloads are the (priority, id) tuples sent by the undecided
            # neighbors; only their minimum matters for the local-minimum
            # test (the retained tuple outlives the transport-owned inbox).
            self._min_neighbor_priority = min(inbox.values()) if inbox else None
            return
        joined_neighbor = bool(inbox)
        if self._is_local_minimum():
            self.state = self.IN_MIS
            self.halt(True)
        elif joined_neighbor:
            self.state = self.DOMINATED
            self.halt(False)

    def finalize(self) -> None:
        if not self.halted:
            self.halt(self.state == self.IN_MIS)


def simulate_luby_mis(network: CongestNetwork, *, seed: int = 0, engine=None,
                      observers=(), max_rounds: int = 10_000,
                      ) -> tuple[set[Node], SimulationResult]:
    """Run :class:`LubyMISNode` on the layered runtime; returns ``(mis, result)``.

    The driver for the message-passing Luby execution: it accepts the
    simulator facade's ``engine=`` / ``observers=`` arguments, so the same
    run works under :class:`~repro.congest.engine.SyncEngine`,
    :class:`~repro.congest.engine.ActiveSetEngine` and the vectorized
    :class:`~repro.congest.vector_engine.VectorEngine`, which executes
    :class:`LubyMISNode` as batched numpy rounds drawing from the same
    per-node RNG streams (identical outputs for the same seed).
    """
    result = Simulator(network, LubyMISNode, seed=seed, engine=engine,
                       observers=observers).run(max_rounds)
    mis = {node for node, joined in result.outputs.items() if joined}
    return mis, result

"""Simulator-native power-graph round structures: MIS of ``G^k`` over ``G``.

The paper's distributed algorithms never materialise ``G^k``: one step of a
``G^k`` symmetry-breaking protocol is simulated over the communication
network ``G`` by flooding within ``k`` hops (Section 8.1).  This module
provides the per-node state machines for the two canonical round structures:

* :class:`PowerLubyMISNode` -- Luby's algorithm on ``G^k``: each step costs
  ``2k`` rounds (``k`` to aggregate the minimum random priority over the
  distance-``k`` neighborhood, ``k`` to alert it after joining).
* :class:`PowerDetRulingNode` -- the deterministic distance-``k`` ruling-set
  round structure: iterated ID minima over distance-``k`` neighborhoods,
  computing the greedy-by-ID MIS of ``G^k`` (a ``(k+1, k)``-ruling set of
  ``G``).

Protocol (one step = ``2k`` rounds, sub-round ``s = ((r-1) mod 2k) + 1``):

* **Phase A (s = 1..k)** -- min-flood.  At ``s = 1`` every undecided node
  draws/loads its payload and broadcasts it; in later sub-rounds any node
  whose best-known value improved re-broadcasts it (improvement-pruned
  flooding: a value crosses one hop per sub-round, so after ``k`` sub-rounds
  every node knows the minimum over the undecided nodes within distance
  ``k``).  Decided nodes participate as relays; a relay that heard nothing
  during a whole phase A has no undecided node within distance ``k`` and
  halts.
* **Phase B (s = k+1..2k)** -- winner flood.  A node whose own payload
  equals the phase-A minimum is a local minimum of ``G^k`` restricted to the
  undecided nodes; it floods a 1-bit join flag ``k`` hops.  At ``s = 2k``
  winners join the MIS and undecided nodes that heard a flag become
  dominated; both keep relaying until their neighborhood quiesces.

Winners of one step are pairwise non-adjacent in ``G^k`` (two nodes within
distance ``k`` compare their distinct payloads, and only the smaller can win),
so the output is an independent set of ``G^k``; maximality follows because a
node only becomes dominated when a winner sits within distance ``k``.

Both classes have registered vector programs
(:mod:`repro.congest.vector_engine`), so ``engine="vector"`` executes the
same protocol as batched numpy rounds over the base CSR -- bit-identical
outputs, rounds and traffic, with ``G^k`` never materialised.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.congest.network import CongestNetwork
from repro.congest.node import NodeAlgorithm
from repro.congest.simulator import SimulationResult, Simulator
from repro.mis.luby import shared_priority_space

Node = Hashable

__all__ = ["PowerDetRulingNode", "PowerLubyMISNode",
           "simulate_power_det_ruling", "simulate_power_luby_mis"]


class _PowerFloodNode(NodeAlgorithm):
    """Shared ``2k``-sub-round flood structure of the power protocols."""

    UNDECIDED = "undecided"
    IN_MIS = "in-mis"
    DOMINATED = "dominated"

    def __init__(self, k: int) -> None:
        super().__init__()
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._period = 2 * k
        self.state = self.UNDECIDED
        self.payload = None
        self.best = None
        self.heard_any = False
        self.heard_flag = False
        self._improved = False
        self._flag_new = False

    # Subclasses provide the per-step payload of an undecided node.
    def _draw_payload(self):
        raise NotImplementedError

    def _begin_step(self) -> None:
        self.payload = None
        self.best = None
        self.heard_any = False
        self.heard_flag = False
        self._improved = False
        self._flag_new = False

    def send(self, round_number: int) -> Mapping[Node, object]:
        sub = (round_number - 1) % self._period + 1
        if sub == 1:
            self._begin_step()
            if self.state == self.UNDECIDED:
                self.payload = self._draw_payload()
                self.best = self.payload
                return self.broadcast(self.payload)
            return {}
        if sub <= self.k:
            if self._improved:
                return self.broadcast(self.best)
            return {}
        if sub == self.k + 1:
            if self.state == self.UNDECIDED and self.best == self.payload:
                # Local minimum of G^k among the undecided: flood the join
                # flag.  Marking the flag as already heard suppresses the
                # relayed echoes of our own flood.
                self.heard_flag = True
                return self.broadcast(True)
            return {}
        if self._flag_new:
            return self.broadcast(True)
        return {}

    def receive(self, round_number: int, inbox: Mapping[Node, object]) -> None:
        sub = (round_number - 1) % self._period + 1
        if sub <= self.k:
            self._improved = False
            if inbox:
                self.heard_any = True
                smallest = min(inbox.values())
                if self.best is None or smallest < self.best:
                    self.best = smallest
                    self._improved = True
            if sub == self.k and self.state != self.UNDECIDED and not self.heard_any:
                # No undecided node within distance k: nothing left to relay.
                self.halt(self.state == self.IN_MIS)
            return
        self._flag_new = False
        if inbox and not self.heard_flag:
            self.heard_flag = True
            self._flag_new = True
        if sub == self._period and self.state == self.UNDECIDED:
            if self.best == self.payload:
                self.state = self.IN_MIS
            elif self.heard_flag:
                self.state = self.DOMINATED

    def finalize(self) -> None:
        if not self.halted:
            self.halt(self.state == self.IN_MIS)


class PowerLubyMISNode(_PowerFloodNode):
    """Luby's MIS of ``G^k`` over communication network ``G`` (Section 8.1).

    Payloads are ``(priority, id)`` pairs with fresh random priorities from
    ``[n^3]`` per step (the degree-independent variant -- nodes never need
    their ``G^k`` degree).  Output: ``True`` iff the node joined the MIS.
    """

    def initialize(self) -> None:
        self._priority_space = shared_priority_space(self.n)

    def _draw_payload(self):
        return (self.rng.randrange(self._priority_space), self.node_id)


class PowerDetRulingNode(_PowerFloodNode):
    """Deterministic greedy-by-ID MIS of ``G^k``: a ``(k+1, k)``-ruling set.

    Payloads are the CONGEST identifiers; each step selects the nodes whose
    ID is minimal among the undecided nodes within distance ``k``.
    """

    def _draw_payload(self):
        return self.node_id


def simulate_power_luby_mis(network: CongestNetwork, k: int, *, seed: int = 0,
                            engine=None, observers=(),
                            max_rounds: int = 10_000,
                            ) -> tuple[set[Node], SimulationResult]:
    """Run :class:`PowerLubyMISNode`; returns ``(mis, result)``.

    Under ``engine="vector"`` the run executes as batched numpy rounds over
    the base CSR arrays (same per-node RNG streams, bit-identical results);
    ``G^k`` is never materialised either way.
    """
    result = Simulator(network, lambda node: PowerLubyMISNode(k), seed=seed,
                       engine=engine, observers=observers).run(max_rounds)
    mis = {node for node, joined in result.outputs.items() if joined}
    return mis, result


def simulate_power_det_ruling(network: CongestNetwork, k: int, *, seed: int = 0,
                              engine=None, observers=(),
                              max_rounds: int = 10_000,
                              ) -> tuple[set[Node], SimulationResult]:
    """Run :class:`PowerDetRulingNode`; returns ``(ruling_set, result)``."""
    result = Simulator(network, lambda node: PowerDetRulingNode(k), seed=seed,
                       engine=engine, observers=observers).run(max_rounds)
    chosen = {node for node, joined in result.outputs.items() if joined}
    return chosen, result

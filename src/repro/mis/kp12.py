"""The degree-reduction sparsification of [KP12] / Sparsify-GG of [BKP14].

Given a graph ``H`` with maximum degree ``Delta_H`` and a parameter
``f >= 2``, the algorithm samples a subset ``Q`` in ``O(log_f Delta_H)``
rounds such that (1) the maximum degree of ``H[Q]`` is ``O(f log n)`` with
high probability and (2) ``Q`` dominates ``V_H`` (every node is in ``Q`` or
has a neighbor in ``Q``).  All communication consists of beeps by sampled
nodes, so the algorithm can be simulated on ``G^k`` with a ``k``-factor
slowdown and without knowing one's ``G^k`` degree (Section 8.3).

The implementation mirrors the stage structure of Algorithm 1 with growth
factor ``f`` instead of 2: in stage ``j`` active nodes join ``Q`` with
probability ``~ f^j log n / Delta_H``; nodes that are sampled or have a
sampled neighbor become inactive; after the last stage the remaining active
nodes join ``Q``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping

import networkx as nx

from repro.congest.cost import RoundLedger
from repro.core.events import log_n
from repro.graphs.power import power_adjacency

Node = Hashable

__all__ = ["KP12Result", "kp12_sparsify", "kp12_sparsify_power"]


@dataclass
class KP12Result:
    """Output of one KP12 sparsification pass."""

    q: set[Node]
    stages: int
    f: float
    ledger: RoundLedger = field(default_factory=RoundLedger)

    @property
    def rounds(self) -> int:
        return self.ledger.total_rounds


def kp12_sparsify(adjacency: Mapping[Node, set[Node]], f: float, n: int, *,
                  rng: random.Random | None = None,
                  ledger: RoundLedger | None = None,
                  rounds_per_stage: int = 1,
                  delta_h: int | None = None) -> KP12Result:
    """One KP12 pass over an explicit adjacency structure.

    Parameters
    ----------
    adjacency:
        ``node -> neighbors`` in ``H`` (symmetric).
    f:
        The degree-reduction target: the output degree is ``O(f log n)``.
    n:
        The global number of nodes (used in the ``log n`` factors and the
        w.h.p. guarantees).
    rounds_per_stage:
        Communication rounds charged per stage (1 for ``H = G``, ``k`` when
        the beeps must be forwarded ``k`` hops).
    delta_h:
        Upper bound on the maximum degree of ``H`` (computed when omitted).
    """
    rng = rng or random.Random(0)
    ledger = ledger if ledger is not None else RoundLedger()
    f = max(2.0, float(f))
    nodes = set(adjacency)
    if delta_h is None:
        delta_h = max((len(neighbors) for neighbors in adjacency.values()), default=0)
    delta_h = max(1, delta_h)
    logn = log_n(n)

    stages = max(1, math.ceil(math.log(max(2.0, delta_h / logn), f)))
    active = set(nodes)
    q: set[Node] = set()

    for stage in range(1, stages + 1):
        if not active:
            break
        probability = min(1.0, (f ** stage) * logn / delta_h)
        sampled = {node for node in active if rng.random() < probability}
        q |= sampled
        decided = set(sampled)
        for node in sampled:
            decided |= adjacency[node] & active
        active -= decided
        ledger.charge(rounds_per_stage, label=f"kp12-stage-{stage}")

    q |= active  # leftover low-degree nodes join Q
    return KP12Result(q=q, stages=stages, f=f, ledger=ledger)


def kp12_sparsify_power(graph: nx.Graph, k: int, f: float, *,
                        candidates: Iterable[Node] | None = None,
                        rng: random.Random | None = None,
                        ledger: RoundLedger | None = None) -> KP12Result:
    """KP12 on ``G^k[candidates]`` with communication network ``G``.

    The beeps of sampled nodes are forwarded for ``k`` hops, so each stage
    costs ``k`` rounds (Lemma 8.2 without IDs: beeping nodes do not need to
    listen, so a plain 1-bit flood suffices).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    rng = rng or random.Random(0)
    ledger = ledger if ledger is not None else RoundLedger()
    nodes = set(graph.nodes()) if candidates is None else set(candidates)
    adjacency = power_adjacency(graph, k, nodes)
    return kp12_sparsify(adjacency, f, graph.number_of_nodes(), rng=rng, ledger=ledger,
                         rounds_per_stage=k)

"""Ruling sets: verification, baselines and the deterministic Theorem 1.1.

An ``(alpha, beta)``-ruling set of ``G`` is a set of nodes that is
``alpha``-independent (pairwise distance at least ``alpha``) and
``beta``-dominating (every node has a ruling node within ``beta`` hops).  An
MIS of ``G^k`` is exactly a ``(k+1, k)``-ruling set of ``G``; the paper's
headline deterministic result (Theorem 1.1) computes a ``(k+1, k^2)``-ruling
set -- i.e. a ``k``-ruling set of ``G^k`` -- in polylogarithmic CONGEST time.
"""

from repro.ruling.aglp import aglp_ruling_set, id_based_ruling_set
from repro.ruling.distributed import DetRulingSetNode, simulate_det_ruling_set
from repro.ruling.det_ruling_set import (
    DetRulingSetResult,
    deterministic_mis_of_virtual_graph,
    deterministic_power_ruling_set,
    ruling_set_via_sparsification,
)
from repro.ruling.greedy import greedy_mis, greedy_ruling_set, lexicographic_mis
from repro.ruling.verify import (
    RulingSetReport,
    domination_radius,
    independence_radius,
    is_alpha_independent,
    is_beta_dominating,
    is_mis_of_power_graph,
    is_ruling_set,
    verify_ruling_set,
)

__all__ = [
    "DetRulingSetNode",
    "DetRulingSetResult",
    "RulingSetReport",
    "aglp_ruling_set",
    "simulate_det_ruling_set",
    "deterministic_mis_of_virtual_graph",
    "deterministic_power_ruling_set",
    "domination_radius",
    "greedy_mis",
    "greedy_ruling_set",
    "id_based_ruling_set",
    "independence_radius",
    "is_alpha_independent",
    "is_beta_dominating",
    "is_mis_of_power_graph",
    "is_ruling_set",
    "lexicographic_mis",
    "ruling_set_via_sparsification",
    "verify_ruling_set",
]

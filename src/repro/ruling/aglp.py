"""The classic deterministic ruling-set algorithms (Theorem 6.1, Corollary 6.2).

These are the prior state of the art that Theorem 1.1 improves upon, and the
baselines of the E-RULING experiment.

Theorem 6.1 [AGLP89, SEW13, HKN21, KMW18]: given a distance-``k`` coloring
with ``gamma`` colors and a base ``B >= 2``, a
``(k+1, k * ceil(log_B gamma))``-ruling set can be computed in
``O(k * B * log_B gamma)`` CONGEST rounds: iterate over the ``ceil(log_B
gamma)`` digits of the colors; within a digit iterate over the ``B`` possible
values; nodes holding the current value beep to their distance-``k``
neighborhood and undecided nodes with a larger digit value that hear a beep
drop out.

Corollary 6.2: using the unique IDs as the coloring and ``B = ceil(n^{1/c})``
yields a ``(k+1, ck)``-ruling set in ``O(k * c * n^{1/c})`` rounds -- the
``O(n^{1/k})``-round prior art for constant domination.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, Mapping

import networkx as nx

from repro.congest.cost import RoundLedger
from repro.graphs.power import distance_neighborhood

Node = Hashable

__all__ = ["AGLPResult", "aglp_ruling_set", "id_based_ruling_set"]


@dataclass
class AGLPResult:
    """Output of the digit-iteration ruling-set algorithm."""

    ruling_set: set[Node]
    k: int
    base: int
    digits: int
    ledger: RoundLedger = field(default_factory=RoundLedger)

    @property
    def rounds(self) -> int:
        return self.ledger.total_rounds

    @property
    def domination_bound(self) -> int:
        """The guaranteed domination ``k * digits``."""
        return self.k * self.digits


def _digits_of(value: int, base: int, num_digits: int) -> list[int]:
    """The ``num_digits`` base-``base`` digits of ``value``, most significant first."""
    digits = []
    for _ in range(num_digits):
        digits.append(value % base)
        value //= base
    digits.reverse()
    return digits


def aglp_ruling_set(graph: nx.Graph, k: int, coloring: Mapping[Node, int], *,
                    base: int = 2,
                    ledger: RoundLedger | None = None) -> AGLPResult:
    """Theorem 6.1: a ``(k+1, k * ceil(log_B gamma))``-ruling set from a coloring.

    Parameters
    ----------
    graph:
        The communication graph ``G``.
    k:
        Required independence is ``k + 1`` (i.e. the output is independent in
        ``G^k``).
    coloring:
        A proper distance-``k`` coloring of ``G`` (colors are non-negative
        integers).  Nodes at distance at most ``k`` must receive distinct
        colors -- the unique IDs always qualify.
    base:
        The trade-off parameter ``B >= 2``.
    """
    if base < 2:
        raise ValueError("base must be >= 2")
    if k < 1:
        raise ValueError("k must be >= 1")
    ledger = ledger if ledger is not None else RoundLedger()

    gamma = max(coloring.values(), default=0) + 1
    num_digits = max(1, math.ceil(math.log(max(2, gamma), base)))
    digits = {node: _digits_of(coloring[node], base, num_digits) for node in graph.nodes()}

    undecided = set(graph.nodes())
    for digit_index in range(num_digits):
        for value in range(base):
            beepers = {node for node in undecided if digits[node][digit_index] == value}
            if not beepers:
                continue
            # Beeps propagate k hops; undecided nodes with a larger current
            # digit that hear a beep drop out.
            reached: set[Node] = set()
            for node in beepers:
                reached |= distance_neighborhood(graph, node, k)
            removed = {node for node in undecided
                       if node in reached and digits[node][digit_index] > value}
            undecided -= removed
            ledger.charge_flooding(k, label=f"digit-{digit_index}-value-{value}")

    return AGLPResult(ruling_set=undecided, k=k, base=base, digits=num_digits,
                      ledger=ledger)


def id_based_ruling_set(graph: nx.Graph, k: int, c: int, *,
                        node_ids: Mapping[Node, int] | None = None,
                        ledger: RoundLedger | None = None) -> AGLPResult:
    """Corollary 6.2: a ``(k+1, ck)``-ruling set in ``O(k * c * n^{1/c})`` rounds.

    Uses the unique node identifiers as the (trivially proper) distance-``k``
    coloring with ``B = ceil(n^{1/c})``.
    """
    if c < 1:
        raise ValueError("c must be >= 1")
    n = max(2, graph.number_of_nodes())
    if node_ids is None:
        node_ids = {node: index + 1 for index, node in enumerate(sorted(graph.nodes(), key=str))}
    base = max(2, math.ceil(n ** (1.0 / c)))
    return aglp_ruling_set(graph, k, node_ids, base=base, ledger=ledger)

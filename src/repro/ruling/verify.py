"""Verification of independent sets, dominating sets and ruling sets.

All checks measure distances in the *communication graph* ``G`` (as the
paper does): an ``(alpha, beta)``-ruling set is ``alpha``-independent and
``beta``-dominating in ``G``; an MIS of ``G^k`` is a ``(k+1, k)``-ruling set
of ``G``.  The checkers are used by every test and by the benchmark harness
to certify algorithm outputs before timing them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable, Iterable

import networkx as nx

from repro.graphs.power import bounded_bfs

Node = Hashable

__all__ = [
    "UNREACHABLE",
    "RulingSetReport",
    "domination_radius",
    "independence_radius",
    "is_alpha_independent",
    "is_beta_dominating",
    "is_mis_of_power_graph",
    "is_ruling_set",
    "verify_ruling_set",
]

#: Sentinel distance returned when two nodes are in different components (or a
#: set is empty): larger than any finite distance and any alpha / beta
#: parameter a caller could reasonably pass.
UNREACHABLE = 1 << 30


def independence_radius(graph: nx.Graph, subset: Iterable[Node]) -> int:
    """The minimum pairwise distance within ``subset``.

    A set with independence radius ``r`` is ``alpha``-independent for every
    ``alpha <= r``.  Pairs in different connected components count as
    infinitely far apart; if no finite pair exists the sentinel
    :data:`UNREACHABLE` is returned.
    """
    subset = set(subset)
    if len(subset) < 2:
        return UNREACHABLE
    best = UNREACHABLE
    for node in subset:
        distances = bounded_bfs(graph, node, min(best, graph.number_of_nodes()))
        for other, dist in distances.items():
            if other != node and other in subset and 0 < dist < best:
                best = dist
    return best


def domination_radius(graph: nx.Graph, subset: Iterable[Node],
                      targets: Iterable[Node] | None = None) -> int:
    """The maximum distance from a target node to ``subset``.

    Unreachable targets (or an empty subset) yield :data:`UNREACHABLE`.
    """
    subset = set(subset)
    targets = list(graph.nodes()) if targets is None else list(targets)
    if not targets:
        return 0
    unreachable = UNREACHABLE
    if not subset:
        return unreachable
    distances: dict[Node, int] = {node: 0 for node in subset if node in graph}
    frontier = deque(distances)
    while frontier:
        node = frontier.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                frontier.append(neighbor)
    return max(distances.get(node, unreachable) for node in targets)


def is_alpha_independent(graph: nx.Graph, subset: Iterable[Node], alpha: int) -> bool:
    """True iff all distinct members of ``subset`` are at distance >= ``alpha``."""
    return independence_radius(graph, subset) >= alpha


def is_beta_dominating(graph: nx.Graph, subset: Iterable[Node], beta: int,
                       targets: Iterable[Node] | None = None) -> bool:
    """True iff every target node has a member of ``subset`` within ``beta`` hops."""
    return domination_radius(graph, subset, targets) <= beta


def is_ruling_set(graph: nx.Graph, subset: Iterable[Node], alpha: int, beta: int,
                  targets: Iterable[Node] | None = None) -> bool:
    """True iff ``subset`` is an ``(alpha, beta)``-ruling set (of ``targets``)."""
    subset = set(subset)
    return (is_alpha_independent(graph, subset, alpha)
            and is_beta_dominating(graph, subset, beta, targets))


def is_mis_of_power_graph(graph: nx.Graph, subset: Iterable[Node], k: int,
                          targets: Iterable[Node] | None = None) -> bool:
    """True iff ``subset`` is a maximal independent set of ``G^k``.

    Equivalently (Section 2): a ``(k+1, k)``-ruling set of ``G`` restricted
    to ``targets`` (``targets`` defaults to all nodes; the restricted variant
    is used for MIS of induced power subgraphs ``G^k[Q]``, where only nodes
    of ``Q`` need to be dominated).
    """
    return is_ruling_set(graph, subset, alpha=k + 1, beta=k, targets=targets)


@dataclass
class RulingSetReport:
    """Quantitative report of a candidate ruling set."""

    size: int
    independence: int
    domination: int
    alpha: int
    beta: int

    @property
    def independent_ok(self) -> bool:
        return self.independence >= self.alpha

    @property
    def dominating_ok(self) -> bool:
        return self.domination <= self.beta

    @property
    def ok(self) -> bool:
        return self.independent_ok and self.dominating_ok


def verify_ruling_set(graph: nx.Graph, subset: Iterable[Node], alpha: int, beta: int,
                      targets: Iterable[Node] | None = None) -> RulingSetReport:
    """Measure independence and domination of ``subset`` against ``(alpha, beta)``."""
    subset = set(subset)
    return RulingSetReport(
        size=len(subset),
        independence=independence_radius(graph, subset),
        domination=domination_radius(graph, subset, targets),
        alpha=alpha,
        beta=beta,
    )

"""A deterministic distributed ruling set on the message-passing runtime.

The paper's headline deterministic ruling sets (Theorem 1.1) are computed at
the graph level with analytic round accounting (:mod:`repro.ruling.
det_ruling_set`), because their power-graph machinery is too heavy to
simulate message-by-message.  This module provides their simulator-native
companion: the classic deterministic greedy MIS by iterated ID minima, which
is exactly a ``(2, 1)``-ruling set of ``G`` (an MIS), runs on the real
message-passing runtime, and is deterministic given the network's ID
assignment -- the ``rng`` seed plays no role.

Protocol per step (2 rounds):

* odd round: every undecided node broadcasts its CONGEST ID;
* even round: a node whose ID is the strict minimum among itself and its
  undecided neighbors broadcasts a join beep, enters the ruling set and
  halts; a node hearing a join beep halts as dominated.

Each step decides at least the globally smallest undecided ID, so the
algorithm terminates in at most ``n`` steps; on bounded-degree random
workloads almost all nodes decide within the first few steps, which makes
this the canonical stress test for the
:class:`~repro.congest.engine.ActiveSetEngine`'s O(active) rounds (and for
engine-equivalence testing, since its output is seed-independent).
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.congest.network import CongestNetwork
from repro.congest.node import NodeAlgorithm
from repro.congest.simulator import SimulationResult, Simulator

Node = Hashable

__all__ = ["DetRulingSetNode", "simulate_det_ruling_set"]


class DetRulingSetNode(NodeAlgorithm):
    """Per-node deterministic greedy MIS / ``(2, 1)``-ruling set by ID minima.

    Output: ``True`` iff the node joined the ruling set.
    """

    def __init__(self) -> None:
        super().__init__()
        self._min_neighbor_id: int | None = None

    def send(self, round_number: int) -> Mapping[Node, object]:
        if round_number % 2 == 1:
            return self.broadcast(self.node_id)
        if self._is_local_minimum():
            return self.broadcast(True)
        return {}

    def _is_local_minimum(self) -> bool:
        minimum = self._min_neighbor_id
        return minimum is None or self.node_id < minimum

    def receive(self, round_number: int, inbox: Mapping[Node, object]) -> None:
        if round_number % 2 == 1:
            # Undecided neighbors are exactly the senders this round (halted
            # nodes no longer broadcast); only their minimum ID matters.
            self._min_neighbor_id = min(inbox.values()) if inbox else None
            return
        if self._is_local_minimum():
            self.halt(True)
        elif inbox:
            self.halt(False)

    def finalize(self) -> None:
        if not self.halted:
            self.halt(False)


def simulate_det_ruling_set(network: CongestNetwork, *, engine=None, observers=(),
                            max_rounds: int = 10_000,
                            ) -> tuple[set[Node], SimulationResult]:
    """Run :class:`DetRulingSetNode` on the layered runtime.

    Returns ``(ruling_set, result)``; the ruling set is an MIS of ``G``
    (verify with :func:`repro.ruling.verify.is_mis_of_power_graph`), fully
    determined by the network's ID assignment.  Being seed-independent,
    this is the canonical differential workload for the engine backends --
    ``engine="vector"`` executes it as batched numpy ID-minima rounds,
    bit-identical to the scalar engines.
    """
    result = Simulator(network, DetRulingSetNode, engine=engine,
                       observers=observers).run(max_rounds)
    ruling_set = {node for node, joined in result.outputs.items() if joined}
    return ruling_set, result

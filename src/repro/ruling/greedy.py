"""Centralized greedy reference algorithms.

These are not distributed algorithms; they serve as ground truth for tests
(every distributed output can be compared against a sequentially computed
MIS / ruling set of the same graph) and as the "unbounded local computation"
subroutines a CONGEST node may run on information it has fully collected
(e.g. solving a small cluster once its topology is known, as in the
post-shattering phase).
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable

import networkx as nx

from repro.graphs.power import bounded_bfs, distance_neighborhood

Node = Hashable

__all__ = ["greedy_mis", "greedy_ruling_set", "lexicographic_mis"]


def lexicographic_mis(graph: nx.Graph, *, key: Callable[[Node], object] | None = None,
                      candidates: Iterable[Node] | None = None) -> set[Node]:
    """The greedy MIS obtained by scanning nodes in ``key`` order.

    ``candidates`` restricts the nodes allowed to join (all nodes are still
    used for adjacency); this matches "MIS of ``G[Q]``" semantics when
    ``graph`` is already the virtual graph on ``Q``.
    """
    order = sorted(graph.nodes() if candidates is None else candidates,
                   key=key if key is not None else str)
    chosen: set[Node] = set()
    blocked: set[Node] = set()
    for node in order:
        if node in blocked:
            continue
        chosen.add(node)
        blocked.add(node)
        blocked.update(graph.neighbors(node))
    return chosen


def greedy_mis(graph: nx.Graph, k: int = 1, *,
               candidates: Iterable[Node] | None = None,
               key: Callable[[Node], object] | None = None) -> set[Node]:
    """A greedy MIS of ``G^k`` computed directly on ``G``.

    Nodes are scanned in ``key`` order; a node joins unless a previously
    chosen node lies within distance ``k``.  With ``candidates`` given, only
    those nodes may join (an MIS of ``G^k[candidates]``), but distances are
    still measured in ``G``.
    """
    order = sorted(graph.nodes() if candidates is None else candidates,
                   key=key if key is not None else str)
    chosen: set[Node] = set()
    blocked: set[Node] = set()
    for node in order:
        if node in blocked:
            continue
        chosen.add(node)
        blocked.add(node)
        blocked.update(distance_neighborhood(graph, node, k))
    return chosen


def greedy_ruling_set(graph: nx.Graph, alpha: int, *,
                      targets: Iterable[Node] | None = None,
                      key: Callable[[Node], object] | None = None) -> set[Node]:
    """A greedy ``alpha``-independent set dominating ``targets``.

    Scanning the targets in order and adding every node not within distance
    ``alpha - 1`` of an already chosen node yields an
    ``(alpha, alpha - 1)``-ruling set of the target set -- the classical
    sequential construction used inside the shattering proofs (Lemma 7.3
    (P2) builds a ``(5, 4)``-ruling set exactly this way).
    """
    order = sorted(graph.nodes() if targets is None else targets,
                   key=key if key is not None else str)
    chosen: set[Node] = set()
    blocked: set[Node] = set()
    for node in order:
        if node in blocked:
            continue
        chosen.add(node)
        blocked.add(node)
        blocked.update(distance_neighborhood(graph, node, alpha - 1))
    return chosen

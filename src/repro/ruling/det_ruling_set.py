"""Theorem 1.1: the deterministic ``(k+1, k^2)``-ruling set via sparsification.

The algorithm (Lemma 6.3) has two phases:

1. **Sparsify**: compute a subset ``Q ⊆ V`` such that every node has at most
   ``hat_delta = O(log n)`` distance-``(k-1)`` ``Q``-neighbors while
   ``dist_G(v, Q) <= beta`` for every ``v`` -- this is the power-graph
   sparsification of Lemma 3.1 / Lemma 5.8 run with ``k - 1`` iterations, so
   ``beta = (k-1)^2 + (k-1)``.
2. **MIS of the virtual graph**: compute a maximal independent set of
   ``G^k[Q]`` by simulating any MIS algorithm on the virtual graph with the
   communication tools of Section 4 (an ``O(k + hat_delta^2)`` factor
   slowdown per simulated round, Lemma 4.6).

The result is independent in ``G^k`` and ``(beta + k)``-dominating, i.e. a
``(k+1, k^2)``-ruling set of ``G`` = a ``k``-ruling set of ``G^k``
(Theorem 1.1).

The deterministic MIS subroutine substitutes for [FGG+22] (see DESIGN.md,
substitution 2): we implement a Linial-style color-then-sweep MIS whose round
complexity on the virtual graph is charged with the [FGG+22] formula
``T_MIS(n, Delta') = O(log^2 Delta' * log log Delta' * log n)``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping

import networkx as nx

from repro.congest.cost import RoundLedger
from repro.core.comm_tools import learn_distance_ids, simulate_on_power_subgraph
from repro.core.power_sparsify import (
    power_graph_sparsification,
    power_graph_sparsification_low_diameter,
)
from repro.graphs.properties import max_degree
from repro.ruling.greedy import lexicographic_mis

Node = Hashable

__all__ = [
    "DetRulingSetResult",
    "deterministic_mis_of_virtual_graph",
    "deterministic_power_ruling_set",
    "fgg_mis_round_bound",
    "ruling_set_via_sparsification",
]


@dataclass
class DetRulingSetResult:
    """Output of the deterministic power-graph ruling set."""

    ruling_set: set[Node]
    q: set[Node]
    k: int
    alpha: int
    beta_bound: int
    ledger: RoundLedger = field(default_factory=RoundLedger)
    phase_rounds: dict[str, int] = field(default_factory=dict)

    @property
    def rounds(self) -> int:
        return self.ledger.total_rounds


def fgg_mis_round_bound(n: int, delta: int) -> int:
    """The [FGG+22] deterministic MIS round complexity ``O(log^2 Δ · log log Δ · log n)``."""
    log_n = max(1.0, math.log2(max(2, n)))
    log_d = max(1.0, math.log2(max(2, delta)))
    return max(1, math.ceil(log_d * log_d * max(1.0, math.log2(log_d + 1)) * log_n))


def deterministic_mis_of_virtual_graph(virtual_graph: nx.Graph, *,
                                       node_ids: Mapping[Node, int] | None = None,
                                       ) -> tuple[set[Node], int]:
    """A deterministic MIS of a (virtual) graph plus its charged round count.

    The MIS itself is computed with a Linial-flavoured deterministic rule
    (scan nodes by ID); the returned round count is the [FGG+22] bound for a
    graph with the virtual graph's size and maximum degree, which is what the
    simulation charges per Lemma 6.3.
    """
    if node_ids is None:
        node_ids = {node: index + 1 for index, node in
                    enumerate(sorted(virtual_graph.nodes(), key=str))}
    mis = lexicographic_mis(virtual_graph, key=lambda node: node_ids[node])
    rounds = fgg_mis_round_bound(virtual_graph.number_of_nodes(),
                                 max_degree(virtual_graph))
    return mis, rounds


def ruling_set_via_sparsification(graph: nx.Graph, k: int, *,
                                  sparsifier: Callable[..., object],
                                  beta_bound: int,
                                  ledger: RoundLedger | None = None,
                                  node_ids: Mapping[Node, int] | None = None,
                                  ) -> DetRulingSetResult:
    """Lemma 6.3: generic "sparsify, then MIS of ``G^k[Q]``" recipe.

    ``sparsifier(graph, ledger=...)`` must return an object with a ``q``
    attribute (the sparse set) -- both power-graph sparsifiers of
    :mod:`repro.core.power_sparsify` qualify.  ``beta_bound`` is the
    domination guarantee of the sparsifier; the output is then a
    ``(k+1, beta_bound + k)``-ruling set.
    """
    ledger = ledger if ledger is not None else RoundLedger()
    if node_ids is None:
        node_ids = {node: index + 1 for index, node in enumerate(sorted(graph.nodes(), key=str))}

    phase_rounds: dict[str, int] = {}

    # Phase 1: sparsification (k - 1 iterations; for k = 1 the sparse set is V).
    before = ledger.total_rounds
    if k >= 2:
        sparsification = sparsifier(graph, ledger=ledger)
        q = set(sparsification.q)
    else:
        q = set(graph.nodes())
    phase_rounds["sparsification"] = ledger.total_rounds - before

    # Phase 2: build the communication tools for radius k and simulate an MIS
    # algorithm on G^k[Q].
    before = ledger.total_rounds
    tools = learn_distance_ids(graph, q, k, node_ids=node_ids, ledger=ledger,
                               bandwidth_bits=ledger.bandwidth_bits or 64)
    simulation = simulate_on_power_subgraph(tools)
    phase_rounds["communication-tools"] = ledger.total_rounds - before

    before = ledger.total_rounds
    mis, algorithm_rounds = deterministic_mis_of_virtual_graph(
        simulation.virtual_graph, node_ids=node_ids)
    simulation.charge_rounds(algorithm_rounds, label="mis-of-GkQ")
    phase_rounds["mis"] = ledger.total_rounds - before

    return DetRulingSetResult(ruling_set=mis, q=q, k=k, alpha=k + 1,
                              beta_bound=beta_bound + k, ledger=ledger,
                              phase_rounds=phase_rounds)


def deterministic_power_ruling_set(graph: nx.Graph, k: int, *,
                                   method: str = "per-variable",
                                   use_network_decomposition: bool = False,
                                   rng: random.Random | None = None,
                                   ledger: RoundLedger | None = None,
                                   node_ids: Mapping[Node, int] | None = None,
                                   ) -> DetRulingSetResult:
    """Theorem 1.1: a deterministic ``(k+1, k^2)``-ruling set of ``G``.

    Parameters
    ----------
    graph, k:
        The communication graph and the power.
    method:
        Derandomization method for the sparsification stages (see
        :func:`repro.core.detsparsify.det_sparsification`).
    use_network_decomposition:
        Use the Lemma 5.8 low-diameter sparsifier instead of the plain
        Lemma 3.1 one.  The output guarantees are identical; the round
        complexity loses the ``diam(G)`` factor (at the price of the network
        decomposition).  Plain Lemma 3.1 is the default because the
        benchmark graphs have small diameter anyway.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    rng = rng or random.Random(0)
    ledger = ledger if ledger is not None else RoundLedger()

    sparsify_power = max(1, k - 1)
    if use_network_decomposition:
        def sparsifier(g: nx.Graph, ledger: RoundLedger):
            return power_graph_sparsification_low_diameter(g, sparsify_power, method=method,
                                                           rng=rng, ledger=ledger)
    else:
        def sparsifier(g: nx.Graph, ledger: RoundLedger):
            return power_graph_sparsification(g, sparsify_power, method=method,
                                              rng=rng, ledger=ledger)

    beta_bound = (k - 1) * (k - 1) + (k - 1) if k >= 2 else 0
    result = ruling_set_via_sparsification(graph, k, sparsifier=sparsifier,
                                           beta_bound=beta_bound, ledger=ledger,
                                           node_ids=node_ids)
    return result

"""Plain-text table / series formatting for the benchmark harness.

The benchmarks print the rows and series the paper's Table 1 and the derived
experiments report; these helpers keep the formatting uniform and are also
used to append measured results to EXPERIMENTS.md manually.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_series", "format_table", "record_experiment"]


def format_table(rows: Sequence[Mapping[str, object]], *,
                 columns: Sequence[str] | None = None,
                 title: str | None = None) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
        for row in rows[1:]:
            for key in row:
                if key not in columns:
                    columns.append(key)

    def cell(row: Mapping[str, object], column: str) -> str:
        value = row.get(column, "")
        if isinstance(value, float):
            return f"{value:.3g}"
        return str(value)

    widths = {column: len(str(column)) for column in columns}
    for row in rows:
        for column in columns:
            widths[column] = max(widths[column], len(cell(row, column)))

    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append(" | ".join(cell(row, column).ljust(widths[column]) for column in columns))
    return "\n".join(lines)


def format_series(x_label: str, xs: Iterable[object], series: Mapping[str, Sequence[object]], *,
                  title: str | None = None) -> str:
    """Render one or more y-series against a shared x-axis as a table."""
    xs = list(xs)
    rows = []
    for index, x in enumerate(xs):
        row: dict[str, object] = {x_label: x}
        for name, values in series.items():
            row[name] = values[index] if index < len(values) else ""
        rows.append(row)
    return format_table(rows, columns=[x_label, *series.keys()], title=title)


def record_experiment(path: str, experiment_id: str, content: str) -> None:
    """Append a formatted experiment block to a results file (e.g. EXPERIMENTS.md)."""
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(f"\n## {experiment_id}\n\n```\n{content}\n```\n")

"""Experiment support: metrics and table formatting for the benchmark harness."""

from repro.analysis.metrics import (
    AlgorithmRun,
    mis_quality,
    ruling_set_quality,
    sparsification_quality,
)
from repro.analysis.tables import format_series, format_table, record_experiment

__all__ = [
    "AlgorithmRun",
    "format_series",
    "format_table",
    "mis_quality",
    "record_experiment",
    "ruling_set_quality",
    "sparsification_quality",
]

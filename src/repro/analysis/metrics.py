"""Quality metrics shared by the benchmark harness and EXPERIMENTS.md.

Every benchmark first *verifies* the algorithm output (via the checkers in
:mod:`repro.ruling.verify` / :mod:`repro.core.invariants`), then reports the
round counts and the quality numbers through the helpers below so that the
printed tables have a consistent shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable

import networkx as nx

from repro.core.events import degree_bound
from repro.core.invariants import check_power_sparsification
from repro.ruling.verify import verify_ruling_set

Node = Hashable

__all__ = ["AlgorithmRun", "mis_quality", "ruling_set_quality", "sparsification_quality"]


@dataclass
class AlgorithmRun:
    """One row of an experiment table."""

    algorithm: str
    graph_name: str
    n: int
    delta: int
    k: int
    rounds: int
    extra: dict[str, object] = field(default_factory=dict)

    def as_row(self) -> dict[str, object]:
        row: dict[str, object] = {
            "algorithm": self.algorithm,
            "graph": self.graph_name,
            "n": self.n,
            "Delta": self.delta,
            "k": self.k,
            "rounds": self.rounds,
        }
        row.update(self.extra)
        return row


def ruling_set_quality(graph: nx.Graph, subset: Iterable[Node], alpha: int,
                       beta: int) -> dict[str, object]:
    """Measured independence / domination / size of a ruling set, plus pass flags."""
    report = verify_ruling_set(graph, subset, alpha, beta)
    return {
        "size": report.size,
        "independence": report.independence,
        "alpha": alpha,
        "domination": report.domination,
        "beta": beta,
        "valid": report.ok,
    }


def mis_quality(graph: nx.Graph, subset: Iterable[Node], k: int,
                targets: Iterable[Node] | None = None) -> dict[str, object]:
    """Measured quality of a candidate MIS of ``G^k``."""
    report = verify_ruling_set(graph, subset, alpha=k + 1, beta=k, targets=targets)
    return {
        "size": report.size,
        "independence": report.independence,
        "domination": report.domination,
        "valid": report.ok,
        "k": k,
    }


def sparsification_quality(graph: nx.Graph, q0: Iterable[Node], q: Iterable[Node],
                           k: int) -> dict[str, object]:
    """Measured quality of a power-graph sparsification against Lemma 3.1."""
    check = check_power_sparsification(graph, set(q0), set(q), k)
    return {
        "q_size": check.q_size,
        "max_q_degree": check.max_q_degree,
        "degree_bound": round(degree_bound(graph.number_of_nodes()), 1),
        "max_domination_excess": check.max_domination,
        "domination_bound": k * k + k,
        "valid": check.ok,
    }

"""CONGEST substrate: message-passing simulator and round-cost accounting.

The paper works in the standard CONGEST model: the communication network is a
graph ``G`` with O(log n)-bit node identifiers; computation proceeds in
synchronous rounds; in each round a node may send one B = O(log n)-bit
message to each of its neighbors (Section 1).  This subpackage provides two
complementary ways of running algorithms in that model:

* A genuine synchronous **message-passing simulator**
  (:mod:`repro.congest.simulator`): algorithms are written as per-node state
  machines (:class:`repro.congest.node.NodeAlgorithm`), messages are explicit
  objects with a bit size, and the scheduler enforces the per-edge bandwidth
  every round.  The simpler single-graph algorithms (Luby, BeepingMIS, the
  AGLP ruling set, broadcast / convergecast) run on it directly, and the
  measured round counts feed the Table-1 experiment.

* An analytic **round-cost ledger** (:mod:`repro.congest.cost`): the
  power-graph algorithms (DetSparsification on ``G^s``, the communication
  tools of Section 4, the shattering pipeline of Section 8) perform their
  computation at the graph level while charging rounds exactly according to
  the paper's communication lemmas.  This keeps the Python simulation
  feasible at thousands of nodes while preserving the round-complexity shape
  that the experiments measure.  Every charge is labelled so the benchmark
  harness can break total round counts down by phase.
"""

from repro.congest.cost import RoundLedger
from repro.congest.message import DEFAULT_BANDWIDTH_BITS, Message, id_bits, message_bits
from repro.congest.network import CongestNetwork
from repro.congest.node import NodeAlgorithm
from repro.congest.simulator import BandwidthExceededError, SimulationResult, Simulator
from repro.congest.bfs import BFSTree, build_bfs_tree, build_spanning_bfs_tree, elect_leader

__all__ = [
    "BFSTree",
    "BandwidthExceededError",
    "CongestNetwork",
    "DEFAULT_BANDWIDTH_BITS",
    "Message",
    "NodeAlgorithm",
    "RoundLedger",
    "SimulationResult",
    "Simulator",
    "build_bfs_tree",
    "build_spanning_bfs_tree",
    "elect_leader",
    "id_bits",
    "message_bits",
]

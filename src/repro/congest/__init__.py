"""CONGEST substrate: a layered message-passing runtime and round accounting.

The paper works in the standard CONGEST model: the communication network is a
graph ``G`` with O(log n)-bit node identifiers; computation proceeds in
synchronous rounds; in each round a node may send one B = O(log n)-bit
message to each of its neighbors (Section 1).  This subpackage provides two
complementary ways of running algorithms in that model.

**The layered message-passing runtime** -- algorithms are written as per-node
state machines (:class:`repro.congest.node.NodeAlgorithm`) and executed by
the :class:`repro.congest.simulator.Simulator` facade over four explicit
layers (see ``ARCHITECTURE.md`` for the full picture):

* *topology* (:mod:`repro.congest.topology`) --
  :class:`TopologySnapshot`: integer-indexed CSR adjacency, canonical edge
  indices, ID tables; built once per network and cached;
* *transport* (:mod:`repro.congest.transport`) -- :class:`Transport`: pooled
  lazy inboxes plus the bandwidth accountant that enforces the *aggregate*
  per-edge per-round budget and tracks congestion by edge index;
* *scheduling* (:mod:`repro.congest.engine`) -- pluggable
  :class:`RoundEngine` implementations: :class:`SyncEngine` (reference
  semantics), :class:`ActiveSetEngine` (skips halted nodes; late rounds
  cost O(active) instead of O(n)) and :class:`VectorEngine`
  (:mod:`repro.congest.vector_engine`: whole rounds as batched numpy array
  operations over the CSR snapshot, bit-identical to ``SyncEngine``, with
  automatic scalar fallback when a run is not vectorizable);
* *instrumentation* (:mod:`repro.congest.observers`) -- the
  :class:`RoundObserver` trace API with built-in observers for run
  statistics, per-round congestion profiles and halting timelines.

The simpler single-graph algorithms (Luby, BeepingMIS, the distributed
ruling set of :mod:`repro.ruling.distributed`, broadcast / convergecast) run
on the runtime directly, and the measured round counts feed the Table-1
experiment.

**The analytic round-cost ledger** (:mod:`repro.congest.cost`) -- the
power-graph algorithms (DetSparsification on ``G^s``, the communication
tools of Section 4, the shattering pipeline of Section 8) perform their
computation at the graph level while charging rounds exactly according to
the paper's communication lemmas.  This keeps the Python simulation feasible
at thousands of nodes while preserving the round-complexity shape that the
experiments measure.  Every charge is labelled so the benchmark harness can
break total round counts down by phase.
"""

from repro.congest.cost import RoundLedger
from repro.congest.engine import ActiveSetEngine, RoundEngine, SyncEngine
from repro.congest.message import DEFAULT_BANDWIDTH_BITS, Message, id_bits, message_bits
from repro.congest.network import CongestNetwork
from repro.congest.node import NodeAlgorithm
from repro.congest.observers import (
    CongestionProfileObserver,
    HaltingTimelineObserver,
    RoundObserver,
    RoundSnapshot,
    StatsObserver,
)
from repro.congest.simulator import BandwidthExceededError, SimulationResult, Simulator
from repro.congest.topology import TopologySnapshot
from repro.congest.transport import Transport
from repro.congest.bfs import BFSTree, build_bfs_tree, build_spanning_bfs_tree, elect_leader
from repro.congest.primitives import (
    run_bfs_layering,
    run_convergecast_sum,
    run_flooding,
    run_leader_election,
)

__all__ = [
    "ActiveSetEngine",
    "BFSTree",
    "BandwidthExceededError",
    "CongestNetwork",
    "CongestionProfileObserver",
    "DEFAULT_BANDWIDTH_BITS",
    "HaltingTimelineObserver",
    "Message",
    "NodeAlgorithm",
    "RoundEngine",
    "RoundLedger",
    "RoundObserver",
    "RoundSnapshot",
    "SimulationResult",
    "Simulator",
    "StatsObserver",
    "SyncEngine",
    "TopologySnapshot",
    "Transport",
    "VectorEngine",
    "build_bfs_tree",
    "build_spanning_bfs_tree",
    "elect_leader",
    "id_bits",
    "message_bits",
    "run_bfs_layering",
    "run_convergecast_sum",
    "run_flooding",
    "run_leader_election",
]


def __getattr__(name: str):
    # VectorEngine is exported lazily (PEP 562): importing it pulls numpy,
    # which scalar-only users should never pay for at `import repro` time.
    if name == "VectorEngine":
        from repro.congest.vector_engine import VectorEngine

        return VectorEngine
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""Basic distributed primitives implemented on the layered CONGEST runtime.

These are the textbook building blocks (flooding, BFS layering, leader
election by ID flooding, convergecast of a sum) that the paper takes for
granted.  They serve two purposes in the reproduction:

* they validate the runtime itself (their round counts have well-known
  closed forms -- e.g. flooding completes in ``ecc(source)`` rounds -- which
  the unit tests check against the graph-theoretic quantities);
* they are the concrete counterparts of the analytic charges in
  :class:`repro.congest.cost.RoundLedger` (Lemma 4.3 convergecast,
  leader election, BFS-tree construction).

Each primitive comes in two pieces: the per-node state machine
(:class:`NodeAlgorithm` subclass) and a ``run_*`` driver that wires it into
the :class:`~repro.congest.simulator.Simulator` facade.  The drivers accept
the facade's ``engine=`` / ``observers=`` arguments, so benchmarks can run
the same primitive under :class:`~repro.congest.engine.SyncEngine` and
:class:`~repro.congest.engine.ActiveSetEngine` interchangeably.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Mapping

from repro.congest.bfs import BFSTree, build_spanning_bfs_tree
from repro.congest.network import CongestNetwork
from repro.congest.node import NodeAlgorithm
from repro.congest.simulator import SimulationResult, Simulator

Node = Hashable

__all__ = [
    "BFSLayering",
    "ConvergecastSum",
    "FloodingBroadcast",
    "LeaderElection",
    "run_bfs_layering",
    "run_convergecast_sum",
    "run_flooding",
    "run_leader_election",
]


class FloodingBroadcast(NodeAlgorithm):
    """The source floods a value; every node halts once it has learned it.

    Completes in ``ecc(source)`` communication rounds; the output of every
    node is the broadcast value.
    """

    def __init__(self, is_source: bool = False, value: Any = None) -> None:
        super().__init__()
        self.is_source = is_source
        self.value = value if is_source else None
        self._pending_send = is_source

    def send(self, round_number: int) -> Mapping[Node, Any]:
        if self._pending_send and self.value is not None:
            self._pending_send = False
            return self.broadcast(self.value)
        return {}

    def receive(self, round_number: int, inbox: Mapping[Node, Any]) -> None:
        if self.value is None and inbox:
            self.value = next(iter(inbox.values()))
            self._pending_send = True
        if self.value is not None and not self._pending_send:
            self.halt(self.value)
        elif self.value is not None and self._pending_send:
            # Halt after forwarding once.
            pass

    def finalize(self) -> None:
        if self.value is not None:
            self.halt(self.value)


class BFSLayering(NodeAlgorithm):
    """Every node learns its BFS distance from the source.

    The source starts at distance 0; a node adopts ``1 + min`` of the
    distances it hears.  Output: the distance (or ``None`` if unreachable).
    """

    def __init__(self, is_source: bool = False) -> None:
        super().__init__()
        self.is_source = is_source
        self.distance: int | None = 0 if is_source else None
        self._announce = is_source

    def send(self, round_number: int) -> Mapping[Node, Any]:
        if self._announce:
            self._announce = False
            return self.broadcast(self.distance)
        return {}

    def receive(self, round_number: int, inbox: Mapping[Node, Any]) -> None:
        if self.distance is None and inbox:
            self.distance = 1 + min(inbox.values())
            self._announce = True
        if self.distance is not None and not self._announce:
            self.halt(self.distance)

    def finalize(self) -> None:
        self.halt(self.distance)


class LeaderElection(NodeAlgorithm):
    """Flood the maximum ID; the node holding it becomes the leader.

    Runs for ``rounds_budget`` rounds (callers pass an upper bound on the
    diameter, or ``n``).  Output: ``True`` for the leader, ``False``
    otherwise.
    """

    def __init__(self, rounds_budget: int) -> None:
        super().__init__()
        self.rounds_budget = rounds_budget
        self.best_id = -1
        self._dirty = True

    def initialize(self) -> None:
        self.best_id = self.node_id

    def send(self, round_number: int) -> Mapping[Node, Any]:
        if self._dirty:
            self._dirty = False
            return self.broadcast(self.best_id)
        return {}

    def receive(self, round_number: int, inbox: Mapping[Node, Any]) -> None:
        for value in inbox.values():
            if value > self.best_id:
                self.best_id = value
                self._dirty = True
        if round_number >= self.rounds_budget:
            self.halt(self.best_id == self.node_id)


class ConvergecastSum(NodeAlgorithm):
    """Sum a per-node integer up a precomputed BFS tree.

    Each node is given its parent (``None`` for the root), its children and
    its local value.  Leaves send immediately; internal nodes send once all
    children have reported.  The root's output is the global sum; everyone
    else outputs ``None``.  Completes in ``depth(tree)`` rounds.
    """

    def __init__(self, parent: Node | None, children: set[Node], value: int) -> None:
        super().__init__()
        self.parent = parent
        self.children = set(children)
        self.value = value
        self._received_from: dict[Node, int] = {}
        self._sent = False

    def send(self, round_number: int) -> Mapping[Node, Any]:
        ready = set(self._received_from) >= self.children
        if ready and not self._sent and self.parent is not None:
            self._sent = True
            total = self.value + sum(self._received_from.values())
            return {self.parent: total}
        return {}

    def receive(self, round_number: int, inbox: Mapping[Node, Any]) -> None:
        for sender, value in inbox.items():
            if sender in self.children:
                self._received_from[sender] = value
        done_children = set(self._received_from) >= self.children
        if self.parent is None and done_children:
            self.halt(self.value + sum(self._received_from.values()))
        elif self.parent is not None and self._sent:
            self.halt(None)

    def finalize(self) -> None:
        if self.parent is None and not self.halted:
            self.halt(self.value + sum(self._received_from.values()))


# --------------------------------------------------------------------- drivers
def run_flooding(network: CongestNetwork, source: Node, value: Any, *,
                 engine=None, observers: Iterable = (),
                 max_rounds: int = 10_000) -> SimulationResult:
    """Flood ``value`` from ``source``; every node's output is the value."""
    simulator = Simulator(
        network,
        lambda node: FloodingBroadcast(is_source=(node == source), value=value),
        engine=engine, observers=observers)
    return simulator.run(max_rounds)


def run_bfs_layering(network: CongestNetwork, source: Node, *,
                     engine=None, observers: Iterable = (),
                     max_rounds: int = 10_000) -> SimulationResult:
    """Every node's output is its BFS distance from ``source`` (or ``None``)."""
    simulator = Simulator(
        network, lambda node: BFSLayering(is_source=(node == source)),
        engine=engine, observers=observers)
    return simulator.run(max_rounds)


def run_leader_election(network: CongestNetwork, *, rounds_budget: int | None = None,
                        engine=None, observers: Iterable = (),
                        max_rounds: int = 10_000) -> SimulationResult:
    """Flood the maximum ID for ``rounds_budget`` rounds (default ``n``)."""
    budget = network.n if rounds_budget is None else rounds_budget
    simulator = Simulator(
        network, lambda node: LeaderElection(rounds_budget=budget),
        engine=engine, observers=observers)
    return simulator.run(max_rounds)


def run_convergecast_sum(network: CongestNetwork, values: Mapping[Node, int], *,
                         tree: BFSTree | None = None, engine=None,
                         observers: Iterable = (),
                         max_rounds: int = 10_000) -> SimulationResult:
    """Sum ``values`` up a BFS tree; the root's output is the global sum."""
    if tree is None:
        tree = build_spanning_bfs_tree(network)

    def factory(node: Node) -> ConvergecastSum:
        return ConvergecastSum(parent=tree.parent[node],
                               children=tree.children.get(node, set()),
                               value=values[node])

    simulator = Simulator(network, factory, engine=engine, observers=observers)
    return simulator.run(max_rounds)

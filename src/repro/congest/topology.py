"""Topology layer: an indexed, immutable snapshot of a CONGEST network.

A :class:`TopologySnapshot` is built once per :class:`~repro.congest.network.
CongestNetwork` and gives the round engines everything they need without ever
touching networkx inside the round loop:

* nodes are mapped to dense integer indices ``0..n-1`` (in graph iteration
  order, so the engines process nodes in exactly the order the legacy
  simulator did);
* adjacency is stored CSR-style (``indptr`` / ``neighbor_indices``) over
  those indices;
* every undirected edge gets a canonical integer **edge index**, assigned in
  order of first encounter, so bandwidth accounting and congestion tracking
  are array lookups instead of per-message ``str()`` canonicalisation (the
  legacy scheduler normalised edge keys with ``str(u) <= str(v)``, which is
  slow and wrong for label types whose ``str()`` ordering is inconsistent);
* per-node **route tables** map a neighbor *label* to its
  ``(neighbor_index, edge_index)`` pair, which is what the send phase needs
  to validate and route an outbox entry with a single dict lookup.

The snapshot also carries the CONGEST identifier table and node degrees, so
binding a :class:`~repro.congest.node.NodeAlgorithm` instance requires no
graph queries either.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Hashable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.congest.network import CongestNetwork

Node = Hashable

__all__ = ["TopologySnapshot"]

#: Per-graph structural cache: every snapshot of the same graph object shares
#: one :class:`_GraphStructure` (CSR, routes, numpy arrays, power views).
#: Replica sweeps build B networks over one graph; only the identifier table
#: differs per replica, so the O(n + m) construction happens once per graph.
_STRUCTURES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


class _TopologyArrays:
    """Namespace of the snapshot's cached numpy CSR arrays (see
    :meth:`TopologySnapshot.numpy_arrays`)."""

    def __init__(self, **arrays) -> None:
        self.__dict__.update(arrays)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"_TopologyArrays({', '.join(sorted(self.__dict__))})"


class _GraphStructure:
    """The graph-determined part of a snapshot, shared across networks.

    Everything here depends only on the graph's iteration order and edges --
    not on the network's CONGEST identifier assignment -- so B replica
    networks over one graph share a single instance, including the lazily
    built numpy CSR arrays and ``PowerView`` caches.
    """

    __slots__ = (
        "n",
        "edge_count",
        "labels",
        "index_of",
        "indptr",
        "neighbor_indices",
        "neighbor_labels",
        "routes",
        "broadcast_routes",
        "broadcast_rows",
        "degrees",
        "edge_endpoints",
        "edge_labels",
        "max_degree",
        "numpy_cache",
        "power_views",
        "__weakref__",
    )

    def __init__(self, graph) -> None:
        labels: tuple[Node, ...] = tuple(graph.nodes())
        index_of: dict[Node, int] = {label: i for i, label in enumerate(labels)}

        indptr: list[int] = [0]
        neighbor_indices: list[int] = []
        neighbor_labels: list[tuple[Node, ...]] = []
        routes: list[dict[Node, tuple[int, int, int]]] = []
        edge_of_pair: dict[tuple[int, int], int] = {}
        edge_endpoints: list[tuple[int, int]] = []

        for u, label in enumerate(labels):
            nbr_labels = tuple(graph.neighbors(label))
            route: dict[Node, tuple[int, int, int]] = {}
            for nbr_label in nbr_labels:
                v = index_of[nbr_label]
                pair = (u, v) if u < v else (v, u)
                edge = edge_of_pair.get(pair)
                if edge is None:
                    edge = len(edge_endpoints)
                    edge_of_pair[pair] = edge
                    edge_endpoints.append(pair)
                neighbor_indices.append(v)
                route[nbr_label] = (v, edge, 2 * edge + (0 if u < v else 1))
            indptr.append(len(neighbor_indices))
            neighbor_labels.append(nbr_labels)
            routes.append(route)

        self.n = len(labels)
        self.edge_count = len(edge_endpoints)
        self.labels = labels
        self.index_of = index_of
        self.indptr = indptr
        self.neighbor_indices = neighbor_indices
        self.neighbor_labels = tuple(neighbor_labels)
        self.routes = tuple(routes)
        # Route triples in neighbor order (dicts preserve insertion order),
        # for broadcast-style outboxes that cover every neighbor; the paired
        # flat rows serve the transport's tight full-duplex loop.
        self.broadcast_routes = tuple(tuple(route.values()) for route in routes)
        self.broadcast_rows = tuple(
            (tuple(t[0] for t in triples), tuple(t[1] for t in triples))
            for triples in self.broadcast_routes)
        self.degrees = tuple(indptr[i + 1] - indptr[i] for i in range(len(labels)))
        self.edge_endpoints = edge_endpoints
        self.edge_labels = tuple((labels[u], labels[v]) for u, v in edge_endpoints)
        self.max_degree = max(self.degrees, default=0)
        self.numpy_cache = None
        self.power_views = {}


def _structure_of(graph) -> _GraphStructure:
    """The shared structure of ``graph``, rebuilt if the graph changed size.

    The (n, m) guard catches the common mutation (nodes or edges added or
    removed between networks); graphs are otherwise treated as immutable
    inputs, like the fingerprint memo does.
    """
    structure = _STRUCTURES.get(graph)
    if (structure is None
            or structure.n != graph.number_of_nodes()
            or structure.edge_count != graph.number_of_edges()):
        structure = _GraphStructure(graph)
        try:
            _STRUCTURES[graph] = structure
        except TypeError:  # non-weakrefable graph type: skip the cache
            pass
    return structure


class TopologySnapshot:
    """Integer-indexed, read-only view of a :class:`CongestNetwork`.

    Attributes
    ----------
    labels:
        ``labels[i]`` is the graph label of node index ``i`` (graph iteration
        order).
    index_of:
        Inverse mapping ``label -> index``.
    congest_ids:
        ``congest_ids[i]`` is the unique CONGEST identifier of node ``i``.
    indptr, neighbor_indices:
        CSR adjacency: the neighbors of node ``i`` are
        ``neighbor_indices[indptr[i]:indptr[i + 1]]``, in the same order the
        underlying graph iterates them.
    neighbor_labels:
        ``neighbor_labels[i]`` is the tuple of neighbor labels of node ``i``
        (exactly what :class:`NodeAlgorithm.neighbors` is bound to).
    routes:
        ``routes[i]`` maps a neighbor label of node ``i`` to its
        ``(neighbor_index, edge_index, directed_slot)`` triple, where
        ``directed_slot`` is the precomputed full-duplex bandwidth slot
        (``2 * edge_index`` for the low-to-high index direction,
        ``2 * edge_index + 1`` for the reverse).
    degrees:
        ``degrees[i]`` is the degree of node ``i``.
    edge_endpoints:
        ``edge_endpoints[e]`` is the canonical ``(u_index, v_index)`` pair
        (``u_index < v_index``) of edge ``e``.
    """

    __slots__ = (
        "n",
        "edge_count",
        "labels",
        "index_of",
        "congest_ids",
        "indptr",
        "neighbor_indices",
        "neighbor_labels",
        "routes",
        "broadcast_routes",
        "broadcast_rows",
        "degrees",
        "edge_endpoints",
        "edge_labels",
        "max_degree",
        "_structure",
        "_numpy_cache",
    )

    def __init__(self, network: "CongestNetwork") -> None:
        structure = _structure_of(network.graph)
        self._structure = structure
        for name in ("n", "edge_count", "labels", "index_of", "indptr",
                     "neighbor_indices", "neighbor_labels", "routes",
                     "broadcast_routes", "broadcast_rows", "degrees",
                     "edge_endpoints", "edge_labels", "max_degree"):
            setattr(self, name, getattr(structure, name))
        # The only network-dependent state: the CONGEST identifier table
        # (and, lazily, its numpy mirror inside the arrays namespace).
        node_id = network.node_id
        self.congest_ids = tuple(node_id(label) for label in self.labels)
        self._numpy_cache = None

    # -------------------------------------------------------------- arrays
    def numpy_arrays(self):
        """The snapshot's CSR adjacency as cached ``int64`` numpy arrays.

        Built lazily (numpy is only required by callers that ask, i.e. the
        vectorized round engine) and cached on the snapshot, exactly like
        the snapshot itself is cached on the network.  The returned object
        carries:

        ``indptr`` (n+1), ``neighbor_indices`` (2m), ``rows`` (2m: the
        owning node of each CSR position), ``degrees`` (n), ``congest_ids``
        (n), ``edge_u`` / ``edge_v`` (m: canonical endpoint indices of every
        undirected edge).  All arrays are read-only views shared by every
        run over this snapshot.
        """
        if self._numpy_cache is None:
            import numpy as np

            structure = self._structure
            if structure.numpy_cache is None:
                # Index arrays (node indices and CSR positions) are downcast
                # to int32 when every stored value provably fits: positions
                # go up to 2m (indptr), indices up to n - 1.  This halves
                # the CSR memory of the million-node workloads; value arrays
                # (congest_ids, degrees) stay int64 -- they feed arithmetic,
                # not indexing.  Structural arrays live on the shared
                # per-graph structure, so replica sweeps build them once.
                index_dtype = (np.int32 if max(self.n, 2 * self.edge_count)
                               < 2 ** 31 else np.int64)
                indptr = np.asarray(self.indptr, dtype=index_dtype)
                degrees = np.asarray(self.degrees, dtype=np.int64)
                shared = {
                    "indptr": indptr,
                    "neighbor_indices": np.asarray(self.neighbor_indices,
                                                   dtype=index_dtype),
                    "rows": np.repeat(np.arange(self.n, dtype=index_dtype),
                                      degrees),
                    "degrees": degrees,
                    "edge_u": np.asarray([u for u, _ in self.edge_endpoints],
                                         dtype=index_dtype),
                    "edge_v": np.asarray([v for _, v in self.edge_endpoints],
                                         dtype=index_dtype),
                }
                # No-overflow guard for the downcast: the last CSR pointer
                # is the largest stored position and must round-trip exactly.
                assert int(indptr[-1]) == 2 * self.edge_count
                for array in shared.values():
                    array.setflags(write=False)
                shared["index_dtype"] = index_dtype
                structure.numpy_cache = shared
            congest_ids = np.asarray(self.congest_ids, dtype=np.int64)
            congest_ids.setflags(write=False)
            self._numpy_cache = _TopologyArrays(congest_ids=congest_ids,
                                                **structure.numpy_cache)
        return self._numpy_cache

    def power_view(self, k: int, *, tile_bytes: int | None = None):
        """The cached lazy ``G^k`` adjacency view for power ``k``.

        Built on first request (like :meth:`numpy_arrays`) and cached per
        ``k`` on the shared per-graph structure, so every network over the
        same graph -- in particular the B replicas of a batched sweep --
        reuses one view; see :class:`repro.congest.power_view.PowerView`.
        The view never materialises ``G^k`` -- queries run a tiled
        multi-source BFS over the base CSR arrays.
        """
        views = self._structure.power_views
        view = views.get(k)
        if view is None:
            from repro.congest.power_view import DEFAULT_TILE_BYTES, PowerView

            view = PowerView(self, k,
                             tile_bytes=tile_bytes or DEFAULT_TILE_BYTES)
            views[k] = view
        return view

    # ------------------------------------------------------------- queries
    def neighbors(self, index: int) -> list[int]:
        """Neighbor indices of node ``index`` (CSR slice)."""
        return self.neighbor_indices[self.indptr[index]:self.indptr[index + 1]]

    def degree(self, index: int) -> int:
        return self.degrees[index]

    def edge_label(self, edge: int) -> tuple[Node, Node]:
        """The canonical ``(u, v)`` label pair of edge ``edge``.

        Canonical means ordered by node *index* (graph iteration order) --
        stable within a run and independent of the labels' ``str()``.
        """
        return self.edge_labels[edge]

    def edge_index(self, u: Node, v: Node) -> int:
        """The edge index of the edge between labels ``u`` and ``v``.

        Raises ``KeyError`` if the edge does not exist.
        """
        return self.routes[self.index_of[u]][v][1]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"TopologySnapshot(n={self.n}, m={self.edge_count})"

"""Topology layer: an indexed, immutable snapshot of a CONGEST network.

A :class:`TopologySnapshot` is built once per :class:`~repro.congest.network.
CongestNetwork` and gives the round engines everything they need without ever
touching networkx inside the round loop:

* nodes are mapped to dense integer indices ``0..n-1`` (in graph iteration
  order, so the engines process nodes in exactly the order the legacy
  simulator did);
* adjacency is stored CSR-style (``indptr`` / ``neighbor_indices``) over
  those indices;
* every undirected edge gets a canonical integer **edge index**, assigned in
  order of first encounter, so bandwidth accounting and congestion tracking
  are array lookups instead of per-message ``str()`` canonicalisation (the
  legacy scheduler normalised edge keys with ``str(u) <= str(v)``, which is
  slow and wrong for label types whose ``str()`` ordering is inconsistent);
* per-node **route tables** map a neighbor *label* to its
  ``(neighbor_index, edge_index)`` pair, which is what the send phase needs
  to validate and route an outbox entry with a single dict lookup.

The snapshot also carries the CONGEST identifier table and node degrees, so
binding a :class:`~repro.congest.node.NodeAlgorithm` instance requires no
graph queries either.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.congest.network import CongestNetwork

Node = Hashable

__all__ = ["TopologySnapshot"]


class _TopologyArrays:
    """Namespace of the snapshot's cached numpy CSR arrays (see
    :meth:`TopologySnapshot.numpy_arrays`)."""

    def __init__(self, **arrays) -> None:
        self.__dict__.update(arrays)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"_TopologyArrays({', '.join(sorted(self.__dict__))})"


class TopologySnapshot:
    """Integer-indexed, read-only view of a :class:`CongestNetwork`.

    Attributes
    ----------
    labels:
        ``labels[i]`` is the graph label of node index ``i`` (graph iteration
        order).
    index_of:
        Inverse mapping ``label -> index``.
    congest_ids:
        ``congest_ids[i]`` is the unique CONGEST identifier of node ``i``.
    indptr, neighbor_indices:
        CSR adjacency: the neighbors of node ``i`` are
        ``neighbor_indices[indptr[i]:indptr[i + 1]]``, in the same order the
        underlying graph iterates them.
    neighbor_labels:
        ``neighbor_labels[i]`` is the tuple of neighbor labels of node ``i``
        (exactly what :class:`NodeAlgorithm.neighbors` is bound to).
    routes:
        ``routes[i]`` maps a neighbor label of node ``i`` to its
        ``(neighbor_index, edge_index, directed_slot)`` triple, where
        ``directed_slot`` is the precomputed full-duplex bandwidth slot
        (``2 * edge_index`` for the low-to-high index direction,
        ``2 * edge_index + 1`` for the reverse).
    degrees:
        ``degrees[i]`` is the degree of node ``i``.
    edge_endpoints:
        ``edge_endpoints[e]`` is the canonical ``(u_index, v_index)`` pair
        (``u_index < v_index``) of edge ``e``.
    """

    __slots__ = (
        "n",
        "edge_count",
        "labels",
        "index_of",
        "congest_ids",
        "indptr",
        "neighbor_indices",
        "neighbor_labels",
        "routes",
        "broadcast_routes",
        "broadcast_rows",
        "degrees",
        "edge_endpoints",
        "edge_labels",
        "max_degree",
        "_numpy_cache",
    )

    def __init__(self, network: "CongestNetwork") -> None:
        graph = network.graph
        labels: tuple[Node, ...] = tuple(graph.nodes())
        index_of: dict[Node, int] = {label: i for i, label in enumerate(labels)}
        node_id = network.node_id

        indptr: list[int] = [0]
        neighbor_indices: list[int] = []
        neighbor_labels: list[tuple[Node, ...]] = []
        routes: list[dict[Node, tuple[int, int, int]]] = []
        edge_of_pair: dict[tuple[int, int], int] = {}
        edge_endpoints: list[tuple[int, int]] = []

        for u, label in enumerate(labels):
            nbr_labels = tuple(graph.neighbors(label))
            route: dict[Node, tuple[int, int, int]] = {}
            for nbr_label in nbr_labels:
                v = index_of[nbr_label]
                pair = (u, v) if u < v else (v, u)
                edge = edge_of_pair.get(pair)
                if edge is None:
                    edge = len(edge_endpoints)
                    edge_of_pair[pair] = edge
                    edge_endpoints.append(pair)
                neighbor_indices.append(v)
                route[nbr_label] = (v, edge, 2 * edge + (0 if u < v else 1))
            indptr.append(len(neighbor_indices))
            neighbor_labels.append(nbr_labels)
            routes.append(route)

        self.n = len(labels)
        self.edge_count = len(edge_endpoints)
        self.labels = labels
        self.index_of = index_of
        self.congest_ids = tuple(node_id(label) for label in labels)
        self.indptr = indptr
        self.neighbor_indices = neighbor_indices
        self.neighbor_labels = tuple(neighbor_labels)
        self.routes = tuple(routes)
        # Route triples in neighbor order (dicts preserve insertion order),
        # for broadcast-style outboxes that cover every neighbor; the paired
        # flat rows serve the transport's tight full-duplex loop.
        self.broadcast_routes = tuple(tuple(route.values()) for route in routes)
        self.broadcast_rows = tuple(
            (tuple(t[0] for t in triples), tuple(t[1] for t in triples))
            for triples in self.broadcast_routes)
        self.degrees = tuple(indptr[i + 1] - indptr[i] for i in range(len(labels)))
        self.edge_endpoints = edge_endpoints
        self.edge_labels = tuple((labels[u], labels[v]) for u, v in edge_endpoints)
        self.max_degree = max(self.degrees, default=0)
        self._numpy_cache = None

    # -------------------------------------------------------------- arrays
    def numpy_arrays(self):
        """The snapshot's CSR adjacency as cached ``int64`` numpy arrays.

        Built lazily (numpy is only required by callers that ask, i.e. the
        vectorized round engine) and cached on the snapshot, exactly like
        the snapshot itself is cached on the network.  The returned object
        carries:

        ``indptr`` (n+1), ``neighbor_indices`` (2m), ``rows`` (2m: the
        owning node of each CSR position), ``degrees`` (n), ``congest_ids``
        (n), ``edge_u`` / ``edge_v`` (m: canonical endpoint indices of every
        undirected edge).  All arrays are read-only views shared by every
        run over this snapshot.
        """
        if self._numpy_cache is None:
            import numpy as np

            indptr = np.asarray(self.indptr, dtype=np.int64)
            degrees = np.asarray(self.degrees, dtype=np.int64)
            arrays = _TopologyArrays(
                indptr=indptr,
                neighbor_indices=np.asarray(self.neighbor_indices,
                                            dtype=np.int64),
                rows=np.repeat(np.arange(self.n, dtype=np.int64), degrees),
                degrees=degrees,
                congest_ids=np.asarray(self.congest_ids, dtype=np.int64),
                edge_u=np.asarray([u for u, _ in self.edge_endpoints],
                                  dtype=np.int64),
                edge_v=np.asarray([v for _, v in self.edge_endpoints],
                                  dtype=np.int64),
            )
            for array in vars(arrays).values():
                array.setflags(write=False)
            self._numpy_cache = arrays
        return self._numpy_cache

    # ------------------------------------------------------------- queries
    def neighbors(self, index: int) -> list[int]:
        """Neighbor indices of node ``index`` (CSR slice)."""
        return self.neighbor_indices[self.indptr[index]:self.indptr[index + 1]]

    def degree(self, index: int) -> int:
        return self.degrees[index]

    def edge_label(self, edge: int) -> tuple[Node, Node]:
        """The canonical ``(u, v)`` label pair of edge ``edge``.

        Canonical means ordered by node *index* (graph iteration order) --
        stable within a run and independent of the labels' ``str()``.
        """
        return self.edge_labels[edge]

    def edge_index(self, u: Node, v: Node) -> int:
        """The edge index of the edge between labels ``u`` and ``v``.

        Raises ``KeyError`` if the edge does not exist.
        """
        return self.routes[self.index_of[u]][v][1]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"TopologySnapshot(n={self.n}, m={self.edge_count})"

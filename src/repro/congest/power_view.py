"""Virtual ``G^k`` adjacency: CSR-style queries without materializing ``G^k``.

The paper's algorithms operate on the power graph ``G^k`` while communicating
over ``G``; materializing ``G^k`` costs ``Theta(n * Delta^k)`` memory and is
exactly what the distributed algorithms avoid.  :class:`PowerView` is the
centralized analogue of that discipline: it answers neighbor queries for
``G^k`` *lazily*, by ``k``-bounded frontier expansion over the base CSR
arrays of a :class:`~repro.congest.topology.TopologySnapshot` -- a vectorized
multi-source BFS in numpy, tiled over source nodes so peak memory stays
bounded by a configurable budget (default 8 MiB of boolean frontier state)
regardless of how dense ``G^k`` is.

Views are cached per ``(snapshot, k)`` via
:meth:`TopologySnapshot.power_view`, alongside the snapshot's cached numpy
arrays; a view itself holds only O(n + m) references to the *base* graph.

The same tiled kernel backs :func:`repro.graphs.power.power_adjacency`, the
batch form of ``distance_neighborhood`` used by the graph-level power
pipelines (power-MIS, power ruling sets, KP12), via :class:`ReachKernel`,
which operates on raw CSR arrays and has no snapshot dependency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.congest.topology import TopologySnapshot

Node = Hashable

__all__ = ["PowerView", "ReachKernel"]

#: Default peak-memory budget for one BFS tile (boolean frontier state).
DEFAULT_TILE_BYTES = 8 << 20


class ReachKernel:
    """Tiled ``k``-bounded multi-source BFS over raw CSR arrays.

    ``reach_tile(sources)`` returns the boolean matrix ``R`` with
    ``R[s, j] = (0 < dist(sources[s], j) <= k)`` -- i.e. row ``s`` is the
    (non-inclusive) ``G^k`` adjacency row of ``sources[s]``.  Peak memory per
    tile is ``S * (3n + 2m)`` bytes of booleans; :meth:`tiles` sizes ``S``
    to fit ``tile_bytes``.
    """

    def __init__(self, indptr, neighbor_indices, k: int, *,
                 tile_bytes: int = DEFAULT_TILE_BYTES) -> None:
        import numpy as np

        if k < 0:
            raise ValueError("k must be non-negative")
        self.np = np
        self.k = k
        self.n = len(indptr) - 1
        self.indptr = indptr
        self.neighbor_indices = neighbor_indices
        positions = len(neighbor_indices)
        # reduceat needs in-range segment starts; empty trailing segments
        # (isolated nodes) borrow the last position and are cleared below.
        self._starts = np.minimum(indptr[:-1], max(0, positions - 1))
        self._empty = (indptr[1:] - indptr[:-1]) == 0
        self.tile_bytes = max(1, int(tile_bytes))
        self._bytes_per_source = 3 * self.n + positions + 1

    @property
    def tile_size(self) -> int:
        """Sources per tile under the memory budget (at least 1)."""
        return max(1, self.tile_bytes // self._bytes_per_source)

    def _hop(self, flags: "np.ndarray") -> "np.ndarray":
        """One BFS hop: ``out[s, j] = OR over i in N(j) of flags[s, i]``."""
        np = self.np
        if len(self.neighbor_indices) == 0:
            return np.zeros_like(flags)
        gathered = flags[:, self.neighbor_indices]
        out = np.logical_or.reduceat(gathered, self._starts, axis=1)
        # reduceat yields the next segment's head for empty segments.
        out[:, self._empty] = False
        return out

    def reach_tile(self, sources) -> "np.ndarray":
        """Boolean ``G^k`` adjacency rows for ``sources`` (non-inclusive)."""
        np = self.np
        sources = np.asarray(sources, dtype=np.int64)
        count = len(sources)
        reached = np.zeros((count, self.n), dtype=bool)
        if count == 0 or self.k == 0:
            return reached
        lanes = np.arange(count)
        reached[lanes, sources] = True
        frontier = reached.copy()
        for _ in range(self.k):
            if not frontier.any():
                break
            frontier = self._hop(frontier) & ~reached
            reached |= frontier
        reached[lanes, sources] = False
        return reached

    def tiles(self, sources=None) -> Iterator[tuple["np.ndarray", "np.ndarray"]]:
        """Yield ``(source_indices, reach_matrix)`` pairs tile by tile."""
        np = self.np
        if sources is None:
            sources = np.arange(self.n, dtype=np.int64)
        else:
            sources = np.asarray(sources, dtype=np.int64)
        step = self.tile_size
        for start in range(0, len(sources), step):
            chunk = sources[start:start + step]
            yield chunk, self.reach_tile(chunk)


class PowerView:
    """Lazy CSR-style view of ``G^k`` over a topology snapshot.

    Obtained through :meth:`TopologySnapshot.power_view` (cached per ``k``).
    Never materializes the power graph: every query runs the tiled BFS
    kernel over the base CSR arrays, so the view's own footprint stays
    ``O(n)`` (:attr:`nbytes`) no matter how dense ``G^k`` is.
    """

    def __init__(self, snapshot: "TopologySnapshot", k: int, *,
                 tile_bytes: int = DEFAULT_TILE_BYTES) -> None:
        arrays = snapshot.numpy_arrays()
        self.snapshot = snapshot
        self.k = k
        self.n = snapshot.n
        self.kernel = ReachKernel(arrays.indptr, arrays.neighbor_indices, k,
                                  tile_bytes=tile_bytes)
        self._degrees = None

    # ------------------------------------------------------------- queries
    def neighbors(self, index: int) -> "np.ndarray":
        """``G^k`` neighbor indices of node ``index`` (sorted, CSR-style)."""
        import numpy as np

        return np.flatnonzero(self.kernel.reach_tile([index])[0])

    def neighbor_labels(self, label: Node) -> set[Node]:
        """``N^k(label)`` as a set of graph labels (non-inclusive)."""
        labels = self.snapshot.labels
        index = self.snapshot.index_of[label]
        return {labels[j] for j in self.neighbors(index)}

    def tiles(self, sources=None):
        """Tile iterator over ``(source_indices, boolean adjacency rows)``."""
        return self.kernel.tiles(sources)

    def degrees(self) -> "np.ndarray":
        """``G^k`` degrees of every node (cached after the first full pass)."""
        import numpy as np

        if self._degrees is None:
            degrees = np.zeros(self.n, dtype=np.int64)
            for chunk, reach in self.tiles():
                degrees[chunk] = reach.sum(axis=1)
            degrees.setflags(write=False)
            self._degrees = degrees
        return self._degrees

    def max_degree(self) -> int:
        import numpy as np

        return int(np.max(self.degrees(), initial=0))

    def adjacency_sets(self, nodes: Iterable[Node] | None = None,
                       ) -> dict[Node, set[Node]]:
        """``{v: N^k(v) ∩ nodes for v in nodes}`` as label sets.

        Key iteration order follows ``nodes`` (all nodes in snapshot order
        when omitted); distances are measured in the full base graph even
        when ``nodes`` restricts the vertex set (the paper's ``G^k[X]``).
        """
        import numpy as np

        labels = self.snapshot.labels
        index_of = self.snapshot.index_of
        if nodes is None:
            ordered = list(labels)
        else:
            ordered = list(nodes)
        indices = np.asarray([index_of[label] for label in ordered],
                             dtype=np.int64)
        restrict = None
        if nodes is not None:
            restrict = np.zeros(self.n, dtype=bool)
            restrict[indices] = True
        out: dict[Node, set[Node]] = {}
        position = 0
        for chunk, reach in self.tiles(indices):
            if restrict is not None:
                reach &= restrict
            for row in reach:
                label = ordered[position]
                out[label] = {labels[j] for j in np.flatnonzero(row)}
                position += 1
        return out

    # -------------------------------------------------------------- memory
    @property
    def nbytes(self) -> int:
        """Persistent memory held by the view (excludes shared base CSR)."""
        total = self.kernel._starts.nbytes + self.kernel._empty.nbytes
        if self._degrees is not None:
            total += self._degrees.nbytes
        return total

    def estimated_power_csr_bytes(self, sample: int = 256) -> int:
        """Estimated bytes a materialized ``G^k`` CSR would need.

        Samples evenly spaced source nodes (deterministic, no RNG) to
        estimate the mean ``G^k`` degree; the estimate is what the
        benchmarks compare peak BFS memory against without ever paying for
        the materialization.
        """
        import numpy as np

        if self.n == 0:
            return 0
        sample = max(1, min(self.n, sample))
        sources = np.unique(np.linspace(0, self.n - 1, sample).astype(np.int64))
        total = 0
        for _, reach in self.tiles(sources):
            total += int(reach.sum())
        mean_degree = total / len(sources)
        itemsize = 8
        return int(self.n * mean_degree * itemsize + (self.n + 1) * itemsize)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PowerView(n={self.n}, k={self.k})"

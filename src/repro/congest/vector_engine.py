"""The vectorized array engine: batched numpy rounds over the CSR topology.

:class:`VectorEngine` is the third round engine of the runtime (after
:class:`~repro.congest.engine.SyncEngine` and
:class:`~repro.congest.engine.ActiveSetEngine`).  Instead of driving one
Python ``send``/``receive`` state machine per node, it executes an entire
round as a handful of numpy array operations over the topology snapshot's
CSR adjacency (:meth:`~repro.congest.topology.TopologySnapshot.numpy_arrays`):
per-round neighbor aggregation is a masked segment reduction
(``np.minimum.reduceat`` over the CSR row pointers) and message accounting
is a vectorized scatter over the canonical edge indices.

Equivalence contract
--------------------
The vector engine is an *optimisation*, never a semantic fork: for every
supported algorithm it produces bit-for-bit the outputs, round counts,
total message/bit counts and per-edge congestion of :class:`SyncEngine` for
the same seed.  Randomness is drawn from the very same per-node
``random.Random`` streams the scalar engines use (one draw per undecided
node per step, in the same rounds), so even the RNG consumption is
identical -- a report produced under ``engine="vector"`` replays exactly on
``engine="sync"``.  The differential matrix in
``tests/test_engine_equivalence.py`` and the hypothesis suite in
``tests/test_engine_fuzz.py`` lock this down.

When vectorization applies
--------------------------
A run takes the vector path only when *all* of the following hold; anything
else silently falls back to the (bit-identical) :class:`SyncEngine`, so
``engine="vector"`` is always safe to request:

* numpy is importable;
* every node runs exactly the same :class:`~repro.congest.node.
  NodeAlgorithm` class, and that class has a registered
  :class:`VectorProgram` (shipping programs: ``LubyMISNode``,
  ``BeepingMISNode``, ``DetRulingSetNode``, ``PowerLubyMISNode``,
  ``PowerDetRulingNode``);
* no observers are attached and the transport is not instrumented
  (``profile_slots``): per-message hooks are inherently scalar;
* the transport is full-duplex (the standard CONGEST convention; the
  half-duplex shared budget needs per-slot accounting).

Traffic accounting flows through
:meth:`~repro.congest.transport.Transport.absorb_aggregates`, so the
transport layer remains the single source of truth for
``total_messages`` / ``total_bits`` / per-edge congestion and everything
downstream (``SimulationResult``, ``edge_counts_by_label``, ``cost``
analyses) keeps working unchanged.

Adding a program
----------------
Subclass :class:`VectorProgram`, implement ``run``, and register it with
:func:`register_vector_program` under the *exact* node class (subclasses
intentionally do not inherit a program: they may override ``send`` /
``receive``).
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING

try:  # numpy is an optional accelerator, not a hard dependency
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less hosts
    np = None  # type: ignore[assignment]

from repro.congest.engine import (
    RoundEngine,
    Runtime,
    SyncEngine,
    register_engine,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.congest.transport import Transport

__all__ = ["VectorEngine", "VectorFallbackWarning", "VectorProgram",
           "register_vector_program"]


class VectorFallbackWarning(RuntimeWarning):
    """Emitted when ``engine="vector"`` silently executes on the sync engine.

    The fallback is always *correct* (the engines are bit-identical), but a
    benchmark that believes it measured the vector backend while the run
    fell back would report numbers for the wrong engine.  The warning makes
    the substitution observable; ``SimulationResult.engine_used`` (and the
    ``engine_used`` metric of the simulator-native solve adapters) records
    it machine-readably.
    """

#: Sentinel for "no active neighbor" in segment minima (int64 max).
_SENTINEL = (1 << 63) - 1

#: Registered vector programs, keyed by the node class's dotted name (exact
#: class match -- subclasses must register their own program).
_PROGRAMS: dict[str, type["VectorProgram"]] = {}


def _class_key(node_class: type) -> str:
    return f"{node_class.__module__}.{node_class.__qualname__}"


def register_vector_program(node_class: type,
                            program_class: type["VectorProgram"],
                            ) -> type["VectorProgram"]:
    """Register ``program_class`` as the vector execution of ``node_class``."""
    _PROGRAMS[_class_key(node_class)] = program_class
    return program_class


# --------------------------------------------------------------- primitives
def _bit_lengths(values: "np.ndarray") -> "np.ndarray":
    """Exact ``int.bit_length()`` for a non-negative int64 array (< 2^62).

    Uses a searchsorted over the powers of two -- exact where a float
    ``log2`` could round across an integer boundary.
    """
    return np.searchsorted(_POW2, values, side="right").astype(np.int64)


if np is not None:
    _POW2 = np.array([1 << k for k in range(63)], dtype=np.int64)


def _int_message_bits(values: "np.ndarray") -> "np.ndarray":
    """Vectorized ``message_bits`` of integer payloads (length + sign bit)."""
    return np.maximum(1, _bit_lengths(values)) + 1


class _SegmentOps:
    """Masked neighbor aggregations over the CSR arrays of one topology.

    The per-position gather/mask work happens inside two persistent padded
    buffers (one int64, one bool; last slot holds the segment-pad identity)
    so a reduction's transient footprint is O(1) buffers rather than a
    fresh ``2m``-slot array per expression -- at power scale the round
    loop's peak allocation is gated below a materialized ``G^k`` CSR.
    """

    def __init__(self, arrays) -> None:
        self.starts = arrays.indptr[:-1]
        self.nbr = arrays.neighbor_indices
        self.rows = arrays.rows
        self.empty = arrays.degrees == 0
        self._vals = np.full(len(self.nbr) + 1, _SENTINEL, dtype=np.int64)
        self._flags = np.zeros(len(self.nbr) + 1, dtype=bool)

    def _reduce_min(self) -> "np.ndarray":
        """Min per CSR segment of the padded value buffer."""
        mins = np.minimum.reduceat(self._vals, self.starts)
        # reduceat yields the *next* segment's head for empty segments;
        # degree-0 rows have no neighbors by definition.
        mins[self.empty] = _SENTINEL
        return mins

    def _gather_masked(self, values: "np.ndarray", keep: "np.ndarray",
                       ) -> "np.ndarray":
        """Fill the value buffer with ``values[nbr]`` where ``keep``, else
        sentinel; returns the per-position view (buffer-owned).

        ``mode="clip"`` keeps the take truly in-place: the default
        ``"raise"`` mode buffers through a fresh ``2m``-slot temporary to
        support rollback, which is exactly the allocation the persistent
        buffer exists to avoid (CSR indices are in-range by construction).
        """
        per_position = self._vals[:-1]
        np.take(values, self.nbr, out=per_position, mode="clip")
        np.copyto(per_position, _SENTINEL, where=~keep)
        return per_position

    def min_over_active(self, values: "np.ndarray", active: "np.ndarray",
                        ) -> "np.ndarray":
        """Per-node min of ``values[v]`` over active neighbors ``v`` (else
        sentinel)."""
        self._gather_masked(values, active[self.nbr])
        return self._reduce_min()

    def min_pair_over_active(self, values: "np.ndarray", ids: "np.ndarray",
                             active: "np.ndarray",
                             ) -> tuple["np.ndarray", "np.ndarray"]:
        """Lexicographic per-node min of ``(values[v], ids[v])`` over active
        neighbors: the exact semantics of ``min()`` over a tuple inbox."""
        nbr_active = active[self.nbr]
        per_position = self._gather_masked(values, nbr_active)
        min_values = self._reduce_min()
        # Masked positions hold the sentinel, which only matches
        # min_values[row] when the row has no active neighbor -- the
        # nbr_active conjunction excludes exactly those positions, so the
        # tie set equals the unmasked ``values[nbr] == min`` one.
        ties = nbr_active
        ties &= per_position == min_values[self.rows]
        self._gather_masked(ids, ties)
        return min_values, self._reduce_min()

    def any_neighbor(self, flags: "np.ndarray") -> "np.ndarray":
        """Per-node: does any neighbor have ``flags[v]`` set?"""
        np.take(flags, self.nbr, out=self._flags[:-1], mode="clip")
        hits = np.logical_or.reduceat(self._flags, self.starts)
        hits[self.empty] = False
        return hits


class _Accountant:
    """Accumulates broadcast-round traffic; flushes into the transport.

    Mirrors exactly what the scalar transport would count for a round in
    which every node in ``senders`` broadcasts one payload to all its
    neighbors: ``deg(u)`` messages of ``payload_bits(u)`` each, one message
    per incident edge.  In full-duplex mode every directed slot carries at
    most that single message, so the aggregate bandwidth check reduces to
    the per-payload check -- raised through the transport's own error
    factory so the failure mode is the scalar one.
    """

    def __init__(self, transport: "Transport", arrays) -> None:
        self.transport = transport
        self.topology = transport.topology
        self.degrees = arrays.degrees
        self.edge_u = arrays.edge_u
        self.edge_v = arrays.edge_v
        self.nbr = arrays.neighbor_indices
        self.starts = arrays.indptr[:-1]
        # int32 halves the footprint; counts are bounded by the round limit.
        self.edge_counts = np.zeros(len(arrays.edge_u), dtype=np.int32)
        self.messages = 0
        self.bits = 0

    def broadcast_round(self, senders: "np.ndarray",
                        payload_bits: "int | np.ndarray") -> None:
        if not senders.any():
            return
        degrees = self.degrees
        scalar = isinstance(payload_bits, int)
        if self.transport.enforce:
            # Full duplex + one broadcast per sender per round means every
            # directed slot carries exactly one message, so the aggregate
            # budget check is the per-payload check (only actual deposits
            # count: a sender without neighbors deposits nothing).
            too_big = (payload_bits > self.transport.bandwidth_bits)
            offenders = senders & (degrees > 0) & too_big
            if offenders.any():
                first = int(np.argmax(offenders))
                bits = int(payload_bits if scalar else payload_bits[first])
                raise self.transport._bandwidth_error(
                    self.topology.labels[first],
                    int(self.nbr[self.starts[first]]), bits, bits)
        message_count = int(degrees[senders].sum())
        self.messages += message_count
        if scalar:
            self.bits += message_count * payload_bits
        else:
            self.bits += int((degrees[senders] * payload_bits[senders]).sum())
        self.edge_counts += senders[self.edge_u]
        self.edge_counts += senders[self.edge_v]

    def flush(self) -> None:
        self.transport.absorb_aggregates(self.messages, self.bits,
                                         self.edge_counts)


# ----------------------------------------------------------------- programs
class VectorProgram:
    """Vector execution of one node-algorithm class over one runtime."""

    def __init__(self, runtime: Runtime) -> None:
        self.runtime = runtime
        self.topology = runtime.topology
        self.transport = runtime.transport
        self.instances = runtime.instances
        self.arrays = self.topology.numpy_arrays()
        self.segments = _SegmentOps(self.arrays)
        self.accountant = _Accountant(runtime.transport, self.arrays)
        self.live = np.array([not inst.halted for inst in self.instances],
                             dtype=bool)

    @classmethod
    def supports(cls, runtime: Runtime) -> bool:
        """Instance-level gate (sizes, parameter ranges); class match is
        already established by the engine."""
        return True

    def run(self, max_rounds: int) -> int:
        raise NotImplementedError

    # ----------------------------------------------------------- writeback
    @staticmethod
    def _halt(instance, output) -> None:
        instance.halt(output)


class _LubyProgram(VectorProgram):
    """Batched Luby MIS: priorities drawn from the per-node RNG streams."""

    @classmethod
    def supports(cls, runtime: Runtime) -> bool:
        space = getattr(runtime.instances[0], "_priority_space", None)
        # Drawn priorities must fit the exact-bit-length table (< 2^62).
        return isinstance(space, int) and 0 < space <= (1 << 62)

    def run(self, max_rounds: int) -> int:
        instances = self.instances
        node_class = type(instances[0])
        arrays = self.arrays
        ids = arrays.congest_ids
        id_bits = _int_message_bits(ids)
        rngs = [inst.rng for inst in instances]
        space = instances[0]._priority_space
        undecided = self.live.copy()
        values = np.zeros(len(instances), dtype=np.int64)
        min_values = min_ids = None
        in_mis = np.zeros_like(undecided)
        dominated = np.zeros_like(undecided)

        rounds = 0
        for round_number in range(1, max_rounds + 1):
            if not undecided.any():
                break
            rounds = round_number
            if round_number % 2 == 1:
                active_idx = np.flatnonzero(undecided)
                values[active_idx] = np.fromiter(
                    (rngs[i].randrange(space) for i in active_idx),
                    dtype=np.int64, count=len(active_idx))
                # (priority, id) tuples: value bits + id bits + tuple bit.
                self.accountant.broadcast_round(
                    undecided, _int_message_bits(values) + id_bits + 1)
                min_values, min_ids = self.segments.min_pair_over_active(
                    values, ids, undecided)
            else:
                winners = undecided & (
                    (min_values == _SENTINEL)
                    | (values < min_values)
                    | ((values == min_values) & (ids < min_ids)))
                self.accountant.broadcast_round(winners, 1)
                losers = (undecided & ~winners
                          & self.segments.any_neighbor(winners))
                in_mis |= winners
                dominated |= losers
                undecided &= ~(winners | losers)
        self.accountant.flush()

        for index in np.flatnonzero(in_mis):
            instance = instances[index]
            instance.state = node_class.IN_MIS
            self._halt(instance, True)
        for index in np.flatnonzero(dominated):
            instance = instances[index]
            instance.state = node_class.DOMINATED
            self._halt(instance, False)
        return rounds


class _BeepingProgram(VectorProgram):
    """Batched BeepingMIS: 1-bit beeps, exponential probability updates."""

    def run(self, max_rounds: int) -> int:
        instances = self.instances
        n = len(instances)
        rngs = [inst.rng for inst in instances]
        active = self.live.copy()
        probability = np.array([inst.probability for inst in instances],
                               dtype=np.float64)
        timeout_round = np.array([2 * inst.max_steps for inst in instances],
                                 dtype=np.int64)
        marked = np.zeros(n, dtype=bool)
        heard_mark = np.zeros(n, dtype=bool)
        in_mis = np.zeros(n, dtype=bool)
        dominated = np.zeros(n, dtype=bool)
        timed_out = np.zeros(n, dtype=bool)

        rounds = 0
        for round_number in range(1, max_rounds + 1):
            if not active.any():
                break
            rounds = round_number
            if round_number % 2 == 1:
                active_idx = np.flatnonzero(active)
                draws = np.fromiter((rngs[i].random() for i in active_idx),
                                    dtype=np.float64, count=len(active_idx))
                marked.fill(False)
                marked[active_idx] = draws < probability[active_idx]
                self.accountant.broadcast_round(marked, 1)
                heard_mark = self.segments.any_neighbor(marked)
                halved = probability / 2.0
                doubled = np.minimum(0.5, 2.0 * probability)
                probability = np.where(
                    active, np.where(heard_mark, halved, doubled), probability)
            else:
                joiners = active & marked & ~heard_mark
                self.accountant.broadcast_round(joiners, 1)
                losers = (active & ~joiners
                          & self.segments.any_neighbor(joiners))
                expired = (active & ~joiners & ~losers
                           & (round_number >= timeout_round))
                in_mis |= joiners
                dominated |= losers
                timed_out |= expired
                active &= ~(joiners | losers | expired)
        self.accountant.flush()

        for index in np.flatnonzero(in_mis):
            instance = instances[index]
            instance.decided = instance.in_mis = True
            self._halt(instance, True)
        for index in np.flatnonzero(dominated):
            instance = instances[index]
            instance.decided = True
            self._halt(instance, False)
        for index in np.flatnonzero(timed_out):
            self._halt(instances[index], False)  # decided stays False
        for index in np.flatnonzero(active):  # out of rounds mid-protocol
            instance = instances[index]
            instance.probability = float(probability[index])
            instance.marked = bool(marked[index])
            instance.heard_mark = bool(heard_mark[index])
        return rounds


class _DetRulingProgram(VectorProgram):
    """Batched deterministic greedy MIS by iterated ID minima."""

    def run(self, max_rounds: int) -> int:
        instances = self.instances
        ids = self.arrays.congest_ids
        id_bits = _int_message_bits(ids)
        undecided = self.live.copy()
        min_ids = None
        in_set = np.zeros_like(undecided)
        dominated = np.zeros_like(undecided)

        rounds = 0
        for round_number in range(1, max_rounds + 1):
            if not undecided.any():
                break
            rounds = round_number
            if round_number % 2 == 1:
                self.accountant.broadcast_round(undecided, id_bits)
                min_ids = self.segments.min_over_active(ids, undecided)
            else:
                winners = undecided & ((min_ids == _SENTINEL)
                                       | (ids < min_ids))
                self.accountant.broadcast_round(winners, 1)
                losers = (undecided & ~winners
                          & self.segments.any_neighbor(winners))
                in_set |= winners
                dominated |= losers
                undecided &= ~(winners | losers)
        self.accountant.flush()

        for index in np.flatnonzero(in_set):
            self._halt(instances[index], True)
        for index in np.flatnonzero(dominated):
            self._halt(instances[index], False)
        return rounds


class _PowerFloodProgram(VectorProgram):
    """Shared vector execution of the ``2k``-sub-round power-graph floods
    (:mod:`repro.mis.power_sim`): min-flood over ``k`` hops, winner-flag
    flood over ``k`` hops, relay halting.  ``G^k`` is never materialised --
    every sub-round is one segment reduction over the *base* CSR arrays."""

    #: Subclasses: does phase A flood ``(priority, id)`` pairs (True) or
    #: bare IDs (False)?  Decides payload drawing and message bit widths.
    randomized = True

    @classmethod
    def supports(cls, runtime: Runtime) -> bool:
        first = runtime.instances[0]
        k = getattr(first, "k", None)
        if not (isinstance(k, int) and k >= 1):
            return False
        if any(getattr(inst, "k", None) != k for inst in runtime.instances):
            return False
        if not cls.randomized:
            return True
        space = getattr(first, "_priority_space", None)
        return isinstance(space, int) and 0 < space <= (1 << 62)

    def run(self, max_rounds: int) -> int:
        instances = self.instances
        node_class = type(instances[0])
        n = len(instances)
        ids = self.arrays.congest_ids
        id_bits = _int_message_bits(ids)
        k = instances[0].k
        period = 2 * k
        if self.randomized:
            rngs = [inst.rng for inst in instances]
            space = instances[0]._priority_space

        live = self.live.copy()
        undecided = live.copy()
        in_mis = np.zeros(n, dtype=bool)
        dominated = np.zeros(n, dtype=bool)
        halted = np.zeros(n, dtype=bool)
        pair_v = np.zeros(n, dtype=np.int64)
        pair_i = ids.copy()
        best_v = np.full(n, _SENTINEL, dtype=np.int64)
        best_i = np.full(n, _SENTINEL, dtype=np.int64)
        heard_any = np.zeros(n, dtype=bool)
        heard_flag = np.zeros(n, dtype=bool)
        improved = np.zeros(n, dtype=bool)
        flag_new = np.zeros(n, dtype=bool)

        rounds = 0
        for round_number in range(1, max_rounds + 1):
            if not live.any():
                break
            rounds = round_number
            sub = (round_number - 1) % period + 1
            if sub <= k:
                # ----------------------------------- phase A: min-flood
                if sub == 1:
                    heard_any.fill(False)
                    heard_flag.fill(False)
                    flag_new.fill(False)
                    best_v.fill(_SENTINEL)
                    best_i.fill(_SENTINEL)
                    senders = undecided
                    if self.randomized:
                        active_idx = np.flatnonzero(undecided)
                        pair_v[active_idx] = np.fromiter(
                            (rngs[i].randrange(space) for i in active_idx),
                            dtype=np.int64, count=len(active_idx))
                    best_v[undecided] = pair_v[undecided]
                    best_i[undecided] = pair_i[undecided]
                else:
                    senders = live & improved
                if self.randomized:
                    # (value, id) tuples: value bits + id bits + tuple bit.
                    payload_bits = (_int_message_bits(best_v)
                                    + _int_message_bits(best_i) + 1)
                else:
                    payload_bits = _int_message_bits(best_i)
                self.accountant.broadcast_round(senders, payload_bits)
                min_v, min_i = self.segments.min_pair_over_active(
                    best_v, best_i, senders)
                smaller = live & (
                    (min_v < best_v)
                    | ((min_v == best_v) & (min_i < best_i)))
                best_v = np.where(smaller, min_v, best_v)
                best_i = np.where(smaller, min_i, best_i)
                improved = smaller
                heard_any |= live & self.segments.any_neighbor(senders)
                if sub == k:
                    # Relays with no undecided node within distance k halt.
                    quiet = live & ~undecided & ~heard_any
                    halted |= quiet
                    live &= ~quiet
            else:
                # ----------------------------- phase B: winner-flag flood
                if sub == k + 1:
                    senders = (undecided & (best_v == pair_v)
                               & (best_i == pair_i))
                    heard_flag |= senders
                else:
                    senders = live & flag_new
                self.accountant.broadcast_round(senders, 1)
                incoming = live & self.segments.any_neighbor(senders)
                flag_new = incoming & ~heard_flag
                heard_flag |= incoming
                if sub == period:
                    winners = (undecided & (best_v == pair_v)
                               & (best_i == pair_i))
                    new_dominated = undecided & ~winners & heard_flag
                    in_mis |= winners
                    dominated |= new_dominated
                    undecided &= ~(winners | new_dominated)
        self.accountant.flush()

        for index in np.flatnonzero(in_mis):
            instances[index].state = node_class.IN_MIS
        for index in np.flatnonzero(dominated):
            instances[index].state = node_class.DOMINATED
        for index in np.flatnonzero(halted):
            self._halt(instances[index], bool(in_mis[index]))
        return rounds


class _PowerLubyProgram(_PowerFloodProgram):
    """Batched Luby MIS on ``G^k``: priorities from the per-node RNG streams,
    flooded ``k`` hops over the base CSR."""

    randomized = True

    @classmethod
    def supports(cls, runtime: Runtime) -> bool:
        if not super().supports(runtime):
            return False
        # The lexicographic (priority, id) minimum must match tuple order:
        # requires the same priority space everywhere (it does: n^3).
        first = runtime.instances[0]._priority_space
        return all(inst._priority_space == first for inst in runtime.instances)


class _PowerDetRulingProgram(_PowerFloodProgram):
    """Batched deterministic distance-``k`` ruling set: iterated ID minima
    flooded ``k`` hops over the base CSR."""

    randomized = False


# ------------------------------------------------------------------- engine
class VectorEngine(RoundEngine):
    """Vectorized scheduler; falls back to :class:`SyncEngine` when the run
    is not vectorizable (see the module docstring for the exact rules).

    After every ``run`` the engine records which backend actually executed in
    :attr:`last_engine_used` (``"vector"`` or the fallback's name); the
    simulator copies it into ``SimulationResult.engine_used``.  A fallback
    additionally emits a :class:`VectorFallbackWarning` so benchmarks cannot
    silently measure the wrong backend.
    """

    name = "vector"

    def __init__(self, fallback: RoundEngine | None = None) -> None:
        self.fallback = fallback if fallback is not None else SyncEngine()
        self.last_engine_used = self.name

    def run(self, runtime: Runtime, max_rounds: int) -> int:
        program_class = self.select_program(runtime)
        if program_class is None:
            self.last_engine_used = self.fallback.name
            node_class = (type(runtime.instances[0]).__name__
                          if runtime.instances else "(no instances)")
            warnings.warn(
                f"engine='vector' fell back to '{self.fallback.name}' for "
                f"{node_class} (no vector program applies; results are "
                f"bit-identical, performance is not)",
                VectorFallbackWarning, stacklevel=3)
            return self.fallback.run(runtime, max_rounds)
        self.last_engine_used = self.name
        return program_class(runtime).run(max_rounds)

    @staticmethod
    def select_program(runtime: Runtime) -> type[VectorProgram] | None:
        """The program that will execute ``runtime``, or ``None`` (fallback).

        Exposed for tests and diagnostics: asserting a workload really takes
        the vector path is part of the differential matrix.
        """
        if np is None:
            return None
        instances = runtime.instances
        if not instances:
            return None
        if runtime.transport.profile_slots:
            return None
        if any(not getattr(observer, "vector_compatible", False)
               for observer in runtime.observers):
            # Round/message hooks never fire on the vector path, so only
            # observers that declare themselves run-level-only may ride it.
            return None
        if runtime.transport.half_duplex:
            return None
        node_class = type(instances[0])
        program_class = _PROGRAMS.get(_class_key(node_class))
        if program_class is None:
            return None
        if any(type(instance) is not node_class for instance in instances):
            return None
        if not program_class.supports(runtime):
            return None
        return program_class


register_engine(VectorEngine.name, VectorEngine, "numpy")

_BUILTIN_PROGRAMS = {
    "repro.mis.luby.LubyMISNode": _LubyProgram,
    "repro.mis.beeping.BeepingMISNode": _BeepingProgram,
    "repro.ruling.distributed.DetRulingSetNode": _DetRulingProgram,
    "repro.mis.power_sim.PowerLubyMISNode": _PowerLubyProgram,
    "repro.mis.power_sim.PowerDetRulingNode": _PowerDetRulingProgram,
}
_PROGRAMS.update(_BUILTIN_PROGRAMS)

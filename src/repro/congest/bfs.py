"""BFS trees, spanning trees and leader election (Section 2 / Section 4).

The paper's communication tools are built around BFS trees: a depth-``s`` BFS
tree rooted at ``r`` contains every node in ``N^s(r)`` and each node knows its
ancestor, its descendants, and the root's ID ("known in the distributed
setting", Section 2).  Claim 5.6 additionally needs a *spanning* BFS tree for
the global convergecasts, which is obtained via leader election in
``O(diam(G))`` rounds (Lemma 4.3's discussion).

This module provides a centralized construction of those trees (they carry
enough bookkeeping to answer ancestor/descendant queries) and records the
round cost of building them distributedly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Iterable

import networkx as nx

from repro.congest.network import CongestNetwork

Node = Hashable

__all__ = ["BFSTree", "build_bfs_tree", "build_spanning_bfs_tree", "elect_leader",
           "extend_bfs_tree"]


@dataclass
class BFSTree:
    """A distributedly known BFS tree of depth ``depth`` rooted at ``root``.

    ``parent[v]`` is ``v``'s ancestor (``None`` for the root) and
    ``children[v]`` the set of descendants -- exactly the local knowledge the
    paper requires of a "known" BFS tree.  ``depth_of[v]`` is the tree (and
    graph) distance from the root.
    """

    root: Node
    depth: int
    parent: dict[Node, Node | None] = field(default_factory=dict)
    children: dict[Node, set[Node]] = field(default_factory=dict)
    depth_of: dict[Node, int] = field(default_factory=dict)

    @property
    def nodes(self) -> set[Node]:
        return set(self.parent)

    def path_to_root(self, node: Node) -> list[Node]:
        """The tree path ``node -> ... -> root``."""
        path = [node]
        while self.parent[path[-1]] is not None:
            path.append(self.parent[path[-1]])
        return path

    def edges(self) -> set[tuple[Node, Node]]:
        """Tree edges as canonical (sorted-by-str) pairs."""
        result = set()
        for node, par in self.parent.items():
            if par is None:
                continue
            edge = (node, par) if str(node) <= str(par) else (par, node)
            result.add(edge)
        return result

    def subtree_nodes(self, node: Node) -> set[Node]:
        """All nodes in the subtree rooted at ``node`` (including it)."""
        result = {node}
        frontier = deque([node])
        while frontier:
            current = frontier.popleft()
            for child in self.children.get(current, ()):
                if child not in result:
                    result.add(child)
                    frontier.append(child)
        return result

    def validate(self, graph: nx.Graph) -> None:
        """Raise ``AssertionError`` unless this is a valid BFS tree of ``graph``."""
        assert self.root in self.parent and self.parent[self.root] is None
        for node, par in self.parent.items():
            if par is None:
                assert node == self.root
                assert self.depth_of[node] == 0
                continue
            assert graph.has_edge(node, par), f"tree edge {node}-{par} not in graph"
            assert self.depth_of[node] == self.depth_of[par] + 1
        # BFS property: tree depth equals graph distance.
        distances = nx.single_source_shortest_path_length(graph, self.root,
                                                          cutoff=self.depth)
        for node, depth in self.depth_of.items():
            assert distances.get(node) == depth, (
                f"node {node} at tree depth {depth} but graph distance {distances.get(node)}")


def _build_bfs_tree_indexed(network: CongestNetwork, root: Node, depth: int) -> BFSTree:
    """CSR-based BFS over the network's topology snapshot (no networkx).

    Produces exactly the tree :func:`build_bfs_tree` would (the snapshot
    preserves the graph's neighbor iteration order), but the traversal runs
    on integer indices.
    """
    topology = network.topology()
    indptr = topology.indptr
    neighbor_indices = topology.neighbor_indices
    labels = topology.labels

    root_index = topology.index_of[root]
    tree = BFSTree(root=root, depth=depth)
    tree.parent[root] = None
    tree.children[root] = set()
    tree.depth_of[root] = 0

    depth_of = [-1] * topology.n
    depth_of[root_index] = 0
    frontier = deque([root_index])
    while frontier:
        index = frontier.popleft()
        level = depth_of[index]
        if level == depth:
            continue
        label = labels[index]
        for position in range(indptr[index], indptr[index + 1]):
            neighbor = neighbor_indices[position]
            if depth_of[neighbor] < 0:
                depth_of[neighbor] = level + 1
                neighbor_label = labels[neighbor]
                tree.parent[neighbor_label] = label
                tree.children.setdefault(label, set()).add(neighbor_label)
                tree.children.setdefault(neighbor_label, set())
                tree.depth_of[neighbor_label] = level + 1
                frontier.append(neighbor)
    return tree


def build_bfs_tree(graph: nx.Graph | CongestNetwork, root: Node, depth: int) -> BFSTree:
    """Construct a depth-``depth`` BFS tree rooted at ``root``.

    Distributedly this costs ``depth`` rounds (each level is discovered in
    one round); callers charge that to their ledger.  Passing a
    :class:`CongestNetwork` instead of a raw graph routes the traversal
    through the network's cached topology snapshot (integer-indexed, no
    networkx in the loop) and yields the identical tree.
    """
    if isinstance(graph, CongestNetwork):
        return _build_bfs_tree_indexed(graph, root, depth)
    tree = BFSTree(root=root, depth=depth)
    tree.parent[root] = None
    tree.children[root] = set()
    tree.depth_of[root] = 0
    frontier = deque([root])
    while frontier:
        node = frontier.popleft()
        level = tree.depth_of[node]
        if level == depth:
            continue
        for neighbor in graph.neighbors(node):
            if neighbor not in tree.parent:
                tree.parent[neighbor] = node
                tree.children.setdefault(node, set()).add(neighbor)
                tree.children.setdefault(neighbor, set())
                tree.depth_of[neighbor] = level + 1
                frontier.append(neighbor)
    return tree


def extend_bfs_tree(graph: nx.Graph, tree: BFSTree, extra_depth: int = 1) -> BFSTree:
    """Extend a BFS tree by ``extra_depth`` levels (Lemma 4.1, second part).

    Nodes at distance ``depth + 1`` from the root attach to an arbitrary
    already-included neighbor at depth ``depth`` (the paper: "one such
    neighbor is chosen arbitrarily").  The input tree is not modified.
    """
    extended = BFSTree(root=tree.root, depth=tree.depth + extra_depth,
                       parent=dict(tree.parent),
                       children={node: set(children) for node, children in tree.children.items()},
                       depth_of=dict(tree.depth_of))
    frontier = deque(node for node, depth in extended.depth_of.items() if depth == tree.depth)
    while frontier:
        node = frontier.popleft()
        level = extended.depth_of[node]
        if level == extended.depth:
            continue
        for neighbor in graph.neighbors(node):
            if neighbor not in extended.parent:
                extended.parent[neighbor] = node
                extended.children.setdefault(node, set()).add(neighbor)
                extended.children.setdefault(neighbor, set())
                extended.depth_of[neighbor] = level + 1
                frontier.append(neighbor)
    return extended


def elect_leader(network: CongestNetwork, candidates: Iterable[Node] | None = None) -> Node:
    """Leader election: the candidate with the smallest identifier wins.

    Distributedly this is the classic flooding of BFS tokens where only the
    smallest-root token survives; it costs ``O(diam(G))`` rounds (Lemma 4.3's
    discussion).  Centralized, we simply return the minimum-ID candidate.
    """
    if candidates is None:
        candidates = list(network.nodes())
    else:
        candidates = list(candidates)
    if not candidates:
        raise ValueError("leader election requires at least one candidate")
    return min(candidates, key=network.node_id)


def build_spanning_bfs_tree(network: CongestNetwork,
                            root: Node | None = None) -> BFSTree:
    """A spanning BFS tree rooted at the elected leader (or ``root``).

    Used by the global aggregation of Claim 5.6 / Lemma 4.3.  For a
    disconnected communication graph the tree spans the root's component only
    (the paper assumes a connected ``G``).
    """
    if root is None:
        root = elect_leader(network)
    return build_bfs_tree(network, root, depth=network.n)

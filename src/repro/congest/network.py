"""The communication network wrapper used by the CONGEST simulator.

A :class:`CongestNetwork` wraps a :class:`networkx.Graph` together with the
model parameters of the paper's Section 1: unique ``O(log n)``-bit node
identifiers and the per-round per-edge bandwidth.  Node identifiers are drawn
from ``[n^c]`` (by default a pseudo-random permutation of ``0..n^2``) so that
IDs carry no structural information -- several of the paper's algorithms
(e.g. Corollary 6.2) explicitly use IDs as a fallback coloring, and making
them non-consecutive keeps those code paths honest.
"""

from __future__ import annotations

import math
import random
from types import MappingProxyType
from typing import Hashable, Iterator, Mapping

import networkx as nx

from repro.congest.message import DEFAULT_BANDWIDTH_BITS, id_bits
from repro.congest.topology import TopologySnapshot

Node = Hashable

__all__ = ["CongestNetwork"]


class CongestNetwork:
    """A CONGEST communication network.

    Parameters
    ----------
    graph:
        The undirected communication graph ``G``.
    bandwidth_bits:
        Per-edge per-round bandwidth in bits.  ``None`` means
        ``max(DEFAULT_BANDWIDTH_BITS, 4 * ceil(log2 n))`` -- i.e. Theta(log n)
        with a constant large enough to fit a small constant number of IDs,
        matching the paper's "O(log n) bits" convention.
    id_seed:
        Seed of the pseudo-random ID assignment.  ``None`` assigns
        consecutive IDs ``1..n`` (useful for deterministic unit tests).
    """

    def __init__(self, graph: nx.Graph, *, bandwidth_bits: int | None = None,
                 id_seed: int | None = 0) -> None:
        self.graph = graph
        self.n = graph.number_of_nodes()
        if bandwidth_bits is None:
            bandwidth_bits = max(DEFAULT_BANDWIDTH_BITS, 4 * id_bits(max(2, self.n)))
        self.bandwidth_bits = bandwidth_bits
        self._ids = self._assign_ids(id_seed)
        self._ids_view = MappingProxyType(self._ids)
        self._nodes_by_id = {node_id: node for node, node_id in self._ids.items()}
        self._max_degree: int | None = None
        self._topology: TopologySnapshot | None = None

    # ------------------------------------------------------------------ IDs
    def _assign_ids(self, id_seed: int | None) -> dict[Node, int]:
        nodes = sorted(self.graph.nodes(), key=str)
        if id_seed is None:
            return {node: index + 1 for index, node in enumerate(nodes)}
        rng = random.Random(id_seed)
        id_space = max(4, self.n * self.n)
        chosen = rng.sample(range(1, id_space + 1), k=len(nodes))
        return {node: chosen[index] for index, node in enumerate(nodes)}

    def node_id(self, node: Node) -> int:
        """The unique O(log n)-bit identifier of ``node``."""
        return self._ids[node]

    def node_of_id(self, node_id: int) -> Node:
        """Inverse of :meth:`node_id`."""
        return self._nodes_by_id[node_id]

    @property
    def ids(self) -> Mapping[Node, int]:
        """Read-only view of the full ID assignment.

        This is a :class:`types.MappingProxyType` over the internal table
        (the legacy accessor copied the full dict on every access).
        """
        return self._ids_view

    @property
    def id_bits(self) -> int:
        """Bit length of identifiers (``a`` in the paper's Lemma 4.1/4.2)."""
        return max(1, math.ceil(math.log2(max(2, max(self._ids.values()) + 1))))

    # ----------------------------------------------------------- structure
    def nodes(self) -> Iterator[Node]:
        return iter(self.graph.nodes())

    def neighbors(self, node: Node) -> Iterator[Node]:
        return iter(self.graph.neighbors(node))

    def degree(self, node: Node) -> int:
        return self.graph.degree(node)

    @property
    def max_degree(self) -> int:
        """The maximum degree of the communication graph (cached).

        The graph is treated as immutable once wrapped in a
        :class:`CongestNetwork` (the simulator's topology snapshot relies on
        the same assumption).
        """
        if self._max_degree is None:
            if self.n == 0:
                self._max_degree = 0
            else:
                self._max_degree = max(degree for _, degree in self.graph.degree())
        return self._max_degree

    def has_edge(self, u: Node, v: Node) -> bool:
        return self.graph.has_edge(u, v)

    def topology(self) -> TopologySnapshot:
        """The cached integer-indexed :class:`TopologySnapshot` of this network.

        Built on first use and reused by every simulator constructed over
        this network; the wrapped graph must not be mutated afterwards.
        """
        if self._topology is None:
            self._topology = TopologySnapshot(self)
        return self._topology

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"CongestNetwork(n={self.n}, m={self.graph.number_of_edges()}, "
                f"bandwidth={self.bandwidth_bits} bits)")

"""Instrumentation layer: the observer / trace API of the CONGEST runtime.

The legacy scheduler hard-coded its statistics collection inline in the round
loop.  The layered runtime instead exposes a small set of hooks
(:class:`RoundObserver`) that the engines call at well-defined points:

``on_run_start(context)``
    once, before ``initialize``; ``context`` carries the network, topology
    snapshot, transport and engine name;
``on_round_start(round_number, active_count)``
    at the top of every executed round;
``on_message(round_number, sender, receiver, payload, bits, edge_index)``
    per delivered message -- only called when the observer sets
    ``wants_messages = True`` (per-message hooks are the one instrumentation
    point with a hot-path cost, so observers must opt in);
``on_round_end(round_number, snapshot)``
    at the bottom of every round, with a :class:`RoundSnapshot` of per-round
    aggregates (message/bit counts, peak edge load, newly halted nodes);
``on_run_end(result)``
    once, after ``finalize``, with the final
    :class:`~repro.congest.simulator.SimulationResult`.

Raw counters (total messages / bits, per-edge congestion) live in the
transport layer, which has to track edge loads anyway to enforce bandwidth;
observers *derive* views from them.  Three built-ins cover the needs of the
existing experiments: :class:`StatsObserver` (the ``SimulationResult``
statistics plus a per-round history), :class:`CongestionProfileObserver`
(per-round congestion profiles for the Figure-1 style analyses) and
:class:`HaltingTimelineObserver` (when nodes halt -- the quantity that makes
the :class:`~repro.congest.engine.ActiveSetEngine` pay off).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Hashable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.congest.network import CongestNetwork
    from repro.congest.simulator import SimulationResult
    from repro.congest.topology import TopologySnapshot
    from repro.congest.transport import Transport

Node = Hashable

__all__ = [
    "CongestionProfileObserver",
    "HaltingTimelineObserver",
    "RoundObserver",
    "RoundSnapshot",
    "RunContext",
    "StatsObserver",
    "ambient_observation",
    "ambient_observers",
]


@dataclass(frozen=True)
class RunContext:
    """Handed to observers at ``on_run_start``."""

    network: "CongestNetwork"
    topology: "TopologySnapshot"
    transport: "Transport"
    engine: str


@dataclass(frozen=True)
class RoundSnapshot:
    """Per-round aggregates handed to ``on_round_end``."""

    round_number: int
    active_at_start: int
    messages: int
    bits: int
    max_edge_bits: int
    busiest_edge: int | None
    newly_halted: tuple[Node, ...]

    @property
    def active_after(self) -> int:
        return self.active_at_start - len(self.newly_halted)


class RoundObserver:
    """Base class: every hook is a no-op; subclasses override what they need."""

    #: Observers that need the per-message hook must set this to True; the
    #: engines skip the per-message dispatch entirely otherwise.
    wants_messages = False

    #: Observers that only use the run-level hooks (``on_run_start`` /
    #: ``on_run_end``) may set this to True to declare themselves safe for
    #: vectorized execution: the simulator then skips per-slot transport
    #: profiling for them and the vector engine keeps its batched path
    #: instead of falling back to the scalar loop.  Round- and
    #: message-level hooks are NOT called by the vector engine, so any
    #: observer that overrides them must leave this False (the default).
    vector_compatible = False

    def on_run_start(self, context: RunContext) -> None:
        """Called once before ``initialize``."""

    def on_round_start(self, round_number: int, active_count: int) -> None:
        """Called at the top of every executed round."""

    def on_message(self, round_number: int, sender: Node, receiver: Node,
                   payload: Any, bits: int, edge_index: int) -> None:
        """Called per message iff ``wants_messages`` is True."""

    def on_round_end(self, round_number: int, snapshot: RoundSnapshot) -> None:
        """Called at the bottom of every executed round."""

    def on_run_end(self, result: "SimulationResult") -> None:
        """Called once after ``finalize`` with the final result."""


# ---------------------------------------------------------------------------
# Ambient observers: instrumentation without threading observers through
# every adapter signature.
# ---------------------------------------------------------------------------

_AMBIENT = threading.local()


def ambient_observers() -> "tuple[RoundObserver, ...]":
    """The observers ambiently installed on this thread (usually empty).

    :class:`~repro.congest.simulator.Simulator` appends these to its own
    ``observers=`` list on every ``run()``, so callers *above* the adapter
    layer (the service layer's live solve streaming is the motivating one)
    can watch a run without the adapter's cooperation.  Ambient observers
    participate in engine selection exactly like explicit ones -- in
    particular any that is not ``vector_compatible`` routes a ``vector``
    run through its scalar fallback.
    """
    return tuple(getattr(_AMBIENT, "observers", ()) or ())


@contextmanager
def ambient_observation(*observers: RoundObserver):
    """Install observers on this thread for the duration of the block.

    Nests: inner blocks extend (not replace) the outer set.  The thread
    locality is the isolation contract -- a streamed solve on one worker
    thread never observes a neighbouring worker's rounds.
    """
    previous = ambient_observers()
    _AMBIENT.observers = previous + tuple(observers)
    try:
        yield
    finally:
        _AMBIENT.observers = previous


class StatsObserver(RoundObserver):
    """The ``SimulationResult`` statistics, plus a per-round history.

    ``history[i]`` is the :class:`RoundSnapshot` of round ``i + 1``;
    ``result`` is the final :class:`SimulationResult` (available after the
    run ends).
    """

    def __init__(self) -> None:
        self.history: list[RoundSnapshot] = []
        self.result: "SimulationResult | None" = None

    def on_round_end(self, round_number: int, snapshot: RoundSnapshot) -> None:
        self.history.append(snapshot)

    def on_run_end(self, result: "SimulationResult") -> None:
        self.result = result

    @property
    def rounds(self) -> int:
        return self.history[-1].round_number if self.history else 0


class CongestionProfileObserver(RoundObserver):
    """Per-round congestion rows for the Figure-1 style analyses.

    ``profile`` is a list of dict rows with the round number, message and bit
    counts, the peak per-edge load and the busiest edge (as a label pair).
    """

    def __init__(self) -> None:
        self.profile: list[dict[str, Any]] = []
        self._topology: "TopologySnapshot | None" = None

    def on_run_start(self, context: RunContext) -> None:
        self._topology = context.topology

    def on_round_end(self, round_number: int, snapshot: RoundSnapshot) -> None:
        busiest = None
        if snapshot.busiest_edge is not None and self._topology is not None:
            busiest = self._topology.edge_label(snapshot.busiest_edge)
        self.profile.append({
            "round": round_number,
            "messages": snapshot.messages,
            "bits": snapshot.bits,
            "max_edge_bits": snapshot.max_edge_bits,
            "busiest_edge": busiest,
        })

    def peak_edge_bits(self) -> int:
        """The worst per-edge per-round load seen over the whole run."""
        return max((row["max_edge_bits"] for row in self.profile), default=0)


class HaltingTimelineObserver(RoundObserver):
    """Records when nodes halt and how the active set shrinks.

    ``halt_round[node]`` is the round in which ``node`` halted (nodes still
    running at the end are absent); ``timeline`` is a list of
    ``(round, newly_halted, active_after)`` triples.
    """

    def __init__(self) -> None:
        self.halt_round: dict[Node, int] = {}
        self.timeline: list[tuple[int, int, int]] = []

    def on_round_end(self, round_number: int, snapshot: RoundSnapshot) -> None:
        for node in snapshot.newly_halted:
            self.halt_round[node] = round_number
        self.timeline.append(
            (round_number, len(snapshot.newly_halted), snapshot.active_after))

    def rounds_with_active_below(self, fraction: float, n: int) -> int:
        """How many rounds ran with fewer than ``fraction * n`` active nodes."""
        threshold = fraction * n
        return sum(1 for _, _, active in self.timeline if active < threshold)

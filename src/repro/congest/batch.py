"""Batched-replica execution: B seeds of one algorithm as one array program.

A seed sweep runs the same algorithm on the same graph under ``B`` different
seeds.  Run one replica at a time (or one process per replica, as
``scenarios.runner``'s pool does), every replica pays the full per-round
numpy dispatch overhead and its own copy of the graph.  The replica batch
runner instead executes all ``B`` replicas in *lockstep*: per-node state
becomes arrays of shape ``(B, n)`` with a leading replica dimension, every
round is one set of segment reductions along axis 1 over the **shared** base
CSR arrays, and only the CONGEST identifiers (and hence the RNG streams)
differ per replica -- exactly what differs between the corresponding solo
runs, because ``CongestNetwork(graph, id_seed=seed)`` re-randomises the
identifier assignment per seed while the adjacency structure is fixed.

Bit-identity contract
---------------------
:func:`simulate_replicas` returns one :class:`SimulationResult` per seed that
is **bit-for-bit equal** to the result of the corresponding solo run::

    Simulator(CongestNetwork(graph, id_seed=s), factory,
              seed=s, engine="vector").run(max_rounds)

including outputs, round counts, total messages/bits and per-edge congestion.
Each replica keeps its own per-node ``random.Random(f"{seed}:{id}")``
streams, its own :class:`~repro.congest.transport.Transport` (so bandwidth
enforcement and congestion accounting stay per-replica), and its own round
counter (replicas that converge early simply stop contributing).  The
hypothesis suite in ``tests/test_replica_batch.py`` locks this down.

When a workload has no batch kernel (or the replicas are structurally
incompatible), the runner falls back to sequential solo runs -- still
correct, observable via :class:`BatchFallbackWarning`.
"""

from __future__ import annotations

import random
import warnings
from typing import Callable, Hashable, Sequence

try:  # numpy is an optional accelerator, not a hard dependency
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on numpy-less hosts
    np = None  # type: ignore[assignment]

from repro.congest.engine import resolve_engine
from repro.congest.network import CongestNetwork
from repro.congest.simulator import LazyEdgeCounts, SimulationResult, Simulator
from repro.congest.transport import Transport
from repro.congest.vector_engine import (
    _SENTINEL,
    VectorEngine,
    _class_key,
    _int_message_bits,
)

Node = Hashable

__all__ = ["BatchFallbackWarning", "select_batch_kernel", "simulate_replicas"]


class BatchFallbackWarning(RuntimeWarning):
    """Emitted when a replica batch executes as sequential solo runs.

    The fallback is always correct (solo runs are the reference semantics),
    but a sweep that believes it measured the batched backend while the runs
    executed one by one would report numbers for the wrong code path.
    """


# ------------------------------------------------------------- batched ops
class _BatchSegmentOps:
    """Axis-1 variants of the vector engine's masked segment reductions.

    Operands carry a leading replica dimension: ``(B, n)`` node state and
    ``(B, 2m)`` per-position gathers, reduced per CSR segment with
    ``reduceat(..., axis=1)`` over the shared row pointers.
    """

    def __init__(self, arrays) -> None:
        self.starts = arrays.indptr[:-1]
        self.nbr = arrays.neighbor_indices
        self.rows = arrays.rows
        self.empty = np.asarray(arrays.degrees) == 0

    def _reduce_min(self, per_position: "np.ndarray") -> "np.ndarray":
        # Pad one sentinel column so trailing empty segments (isolated
        # nodes) have an in-range start; clamping the starts instead would
        # silently truncate the last non-empty segment.
        pad = np.full((per_position.shape[0], 1), _SENTINEL,
                      dtype=per_position.dtype)
        padded = np.concatenate([per_position, pad], axis=1)
        mins = np.minimum.reduceat(padded, self.starts, axis=1)
        # reduceat yields the next segment's head for empty segments.
        mins[:, self.empty] = _SENTINEL
        return mins

    def min_over_active(self, values: "np.ndarray", active: "np.ndarray",
                        ) -> "np.ndarray":
        per_position = np.where(active[:, self.nbr], values[:, self.nbr],
                                _SENTINEL)
        return self._reduce_min(per_position)

    def min_pair_over_active(self, values: "np.ndarray", ids: "np.ndarray",
                             active: "np.ndarray",
                             ) -> tuple["np.ndarray", "np.ndarray"]:
        nbr_active = active[:, self.nbr]
        nbr_values = values[:, self.nbr]
        min_values = self._reduce_min(
            np.where(nbr_active, nbr_values, _SENTINEL))
        ties = nbr_active & (nbr_values == min_values[:, self.rows])
        min_ids = self._reduce_min(
            np.where(ties, ids[:, self.nbr], _SENTINEL))
        return min_values, min_ids

    def any_neighbor(self, flags: "np.ndarray") -> "np.ndarray":
        pad = np.zeros((flags.shape[0], 1), dtype=np.int8)
        padded = np.concatenate([flags[:, self.nbr].astype(np.int8), pad],
                                axis=1)
        counts = np.add.reduceat(padded, self.starts, axis=1)
        counts[:, self.empty] = 0
        return counts > 0


class _BatchAccountant:
    """Per-replica traffic accumulation over one shared broadcast round.

    Mirrors the vector engine's ``_Accountant`` with a replica dimension:
    messages, bits and per-edge counts are ``(B,)`` / ``(B, m)`` and flush
    into each replica's own transport, so ``SimulationResult`` accounting is
    per-replica exact.
    """

    def __init__(self, transports: Sequence[Transport], arrays) -> None:
        self.transports = transports
        self.degrees = np.asarray(arrays.degrees)
        self.edge_u = arrays.edge_u
        self.edge_v = arrays.edge_v
        self.nbr = arrays.neighbor_indices
        self.starts = arrays.indptr[:-1]
        count = len(transports)
        self.edge_counts = np.zeros((count, len(arrays.edge_u)),
                                    dtype=np.int64)
        self.messages = np.zeros(count, dtype=np.int64)
        self.bits = np.zeros(count, dtype=np.int64)
        self.bandwidth = np.array([t.bandwidth_bits for t in transports],
                                  dtype=np.int64)
        self.enforce = np.array([t.enforce for t in transports], dtype=bool)

    def broadcast_round(self, senders: "np.ndarray",
                        payload_bits: "int | np.ndarray") -> None:
        if not senders.any():
            return
        degrees = self.degrees
        scalar = isinstance(payload_bits, int)
        if self.enforce.any():
            # Full duplex + one broadcast per sender per round: every
            # directed slot carries at most one message, so the budget check
            # is the per-payload check, per replica.
            if scalar:
                too_big = (payload_bits > self.bandwidth)[:, None]
            else:
                too_big = payload_bits > self.bandwidth[:, None]
            offenders = (senders & (degrees[None, :] > 0) & too_big
                         & self.enforce[:, None])
            if offenders.any():
                replica = int(np.argmax(offenders.any(axis=1)))
                first = int(np.argmax(offenders[replica]))
                transport = self.transports[replica]
                bits = int(payload_bits if scalar
                           else payload_bits[replica, first])
                raise transport._bandwidth_error(
                    transport.topology.labels[first],
                    int(self.nbr[self.starts[first]]), bits, bits)
        counts = (senders * degrees[None, :]).sum(axis=1)
        self.messages += counts
        if scalar:
            self.bits += counts * payload_bits
        else:
            self.bits += (senders * degrees[None, :]
                          * payload_bits).sum(axis=1)
        self.edge_counts += (senders[:, self.edge_u].astype(np.int64)
                             + senders[:, self.edge_v].astype(np.int64))

    def flush(self) -> None:
        for replica, transport in enumerate(self.transports):
            transport.absorb_aggregates(int(self.messages[replica]),
                                        int(self.bits[replica]),
                                        self.edge_counts[replica].tolist())


# ------------------------------------------------------------------ kernels
class _ReplicaContext:
    """The per-replica inputs of a batch kernel, decoupled from where they
    come from: bound :class:`Simulator` instances (the exact path) or
    directly-constructed arrays and RNG streams (the uniform-factory path,
    which never builds per-node instances)."""

    __slots__ = ("arrays", "n", "replicas", "ids", "live0", "rngs", "spaces",
                 "k")

    def __init__(self, arrays, n, replicas, ids, live0, rngs=None,
                 spaces=None, k=None) -> None:
        self.arrays = arrays
        self.n = n
        self.replicas = replicas
        self.ids = ids
        self.live0 = live0
        self.rngs = rngs
        self.spaces = spaces
        self.k = k


class _ReplicaKernel:
    """Lockstep execution of B bound replicas over shared CSR arrays.

    ``run`` executes the rounds and leaves the decision masks in
    ``self.outcome`` (``(B, n)`` boolean arrays); the caller turns them into
    per-replica results -- either by writing them back into bound node
    instances (:meth:`writeback`, the exact path) or by reading the
    ``in_set`` mask directly (the uniform-factory path).
    """

    #: Does the protocol draw random payloads (per-node RNG streams)?
    randomized = True

    def __init__(self, ctx: _ReplicaContext,
                 transports: Sequence[Transport]) -> None:
        self.ctx = ctx
        self.n = ctx.n
        self.replicas = ctx.replicas
        self.arrays = ctx.arrays
        self.segments = _BatchSegmentOps(self.arrays)
        self.accountant = _BatchAccountant(transports, self.arrays)
        self.ids = ctx.ids
        self.live0 = ctx.live0
        self.outcome: dict[str, "np.ndarray"] = {}
        if self.randomized:
            self.rngs = ctx.rngs
            self.spaces = ctx.spaces

    @classmethod
    def supports(cls, instance_rows: Sequence[Sequence[object]]) -> bool:
        """Post-``initialize`` gate (parameter ranges, cross-replica
        consistency); class match is established by the selector.

        ``instance_rows`` holds one row of initialized node instances per
        replica: every bound instance on the exact path, a single template
        instance on the uniform-factory path.
        """
        if not cls.randomized:
            return True
        for row in instance_rows:
            space = getattr(row[0], "_priority_space", None)
            # Drawn payloads must fit the exact-bit-length table (< 2^62),
            # and the lexicographic pair minimum needs one shared space.
            if not (isinstance(space, int) and 0 < space <= (1 << 62)):
                return False
            if any(getattr(inst, "_priority_space", None) != space
                   for inst in row):
                return False
        return True

    def writeback(self, sims: Sequence[Simulator]) -> None:
        """Apply ``self.outcome`` to the bound instances (exact path)."""
        raise NotImplementedError

    def _draw(self, target: "np.ndarray", mask: "np.ndarray") -> None:
        """Draw into ``target[b, i]`` for ``mask[b, i]``, in index order per
        replica -- the exact RNG consumption of each solo run."""
        for replica in range(self.replicas):
            indices = np.flatnonzero(mask[replica])
            if len(indices):
                rngs = self.rngs[replica]
                space = self.spaces[replica]
                target[replica, indices] = np.fromiter(
                    (rngs[i].randrange(space) for i in indices),
                    dtype=np.int64, count=len(indices))

    def run(self, max_rounds: int) -> "np.ndarray":
        raise NotImplementedError


class _ProposeDecideKernel(_ReplicaKernel):
    """Period-2 propose/decide structure (Luby MIS, det ruling set).

    Odd rounds broadcast a payload and take the neighborhood minimum; even
    rounds elect local minima, who alert their neighbors.  The batched loop
    is the vector engine's ``_LubyProgram`` / ``_DetRulingProgram`` with a
    replica axis; converged replicas have all-False masks and contribute
    neither traffic nor RNG draws.
    """

    def run(self, max_rounds: int) -> "np.ndarray":
        ids = self.ids
        id_bits = _int_message_bits(ids)
        undecided = self.live0.copy()
        values = np.zeros(undecided.shape, dtype=np.int64)
        min_v = min_i = None
        in_set = np.zeros_like(undecided)
        dominated = np.zeros_like(undecided)
        rounds = np.zeros(self.replicas, dtype=np.int64)

        for round_number in range(1, max_rounds + 1):
            replica_active = undecided.any(axis=1)
            if not replica_active.any():
                break
            rounds[replica_active] = round_number
            if round_number % 2 == 1:
                if self.randomized:
                    self._draw(values, undecided)
                    # (priority, id) tuples: value + id bits + tuple bit.
                    self.accountant.broadcast_round(
                        undecided, _int_message_bits(values) + id_bits + 1)
                    min_v, min_i = self.segments.min_pair_over_active(
                        values, ids, undecided)
                else:
                    self.accountant.broadcast_round(undecided, id_bits)
                    min_i = self.segments.min_over_active(ids, undecided)
            else:
                if self.randomized:
                    winners = undecided & (
                        (min_v == _SENTINEL)
                        | (values < min_v)
                        | ((values == min_v) & (ids < min_i)))
                else:
                    winners = undecided & ((min_i == _SENTINEL)
                                           | (ids < min_i))
                self.accountant.broadcast_round(winners, 1)
                losers = (undecided & ~winners
                          & self.segments.any_neighbor(winners))
                in_set |= winners
                dominated |= losers
                undecided &= ~(winners | losers)
        self.accountant.flush()
        self.outcome = {"in_set": in_set, "dominated": dominated}
        return rounds


class _LubyReplicaKernel(_ProposeDecideKernel):
    randomized = True

    def writeback(self, sims: Sequence[Simulator]) -> None:
        in_set = self.outcome["in_set"]
        dominated = self.outcome["dominated"]
        for replica, sim in enumerate(sims):
            instances = sim._instances
            node_class = type(instances[0])
            for index in np.flatnonzero(in_set[replica]):
                instance = instances[index]
                instance.state = node_class.IN_MIS
                instance.halt(True)
            for index in np.flatnonzero(dominated[replica]):
                instance = instances[index]
                instance.state = node_class.DOMINATED
                instance.halt(False)


class _DetRulingReplicaKernel(_ProposeDecideKernel):
    randomized = False

    def writeback(self, sims: Sequence[Simulator]) -> None:
        in_set = self.outcome["in_set"]
        dominated = self.outcome["dominated"]
        for replica, sim in enumerate(sims):
            instances = sim._instances
            for index in np.flatnonzero(in_set[replica]):
                instances[index].halt(True)
            for index in np.flatnonzero(dominated[replica]):
                instances[index].halt(False)


class _PowerFloodReplicaKernel(_ReplicaKernel):
    """The ``2k``-sub-round power-graph floods of :mod:`repro.mis.power_sim`
    with a replica axis: min-flood over ``k`` hops, winner-flag flood over
    ``k`` hops, relay halting -- per replica, over the shared base CSR."""

    @classmethod
    def supports(cls, instance_rows: Sequence[Sequence[object]]) -> bool:
        if not super().supports(instance_rows):
            return False
        k = getattr(instance_rows[0][0], "k", None)
        if not (isinstance(k, int) and k >= 1):
            return False
        return all(getattr(inst, "k", None) == k
                   for row in instance_rows for inst in row)

    def run(self, max_rounds: int) -> "np.ndarray":
        shape = (self.replicas, self.n)
        ids = self.ids
        k = self.ctx.k
        period = 2 * k

        live = self.live0.copy()
        undecided = live.copy()
        in_mis = np.zeros(shape, dtype=bool)
        dominated = np.zeros(shape, dtype=bool)
        halted = np.zeros(shape, dtype=bool)
        pair_v = np.zeros(shape, dtype=np.int64)
        pair_i = ids.copy()
        best_v = np.full(shape, _SENTINEL, dtype=np.int64)
        best_i = np.full(shape, _SENTINEL, dtype=np.int64)
        heard_any = np.zeros(shape, dtype=bool)
        heard_flag = np.zeros(shape, dtype=bool)
        improved = np.zeros(shape, dtype=bool)
        flag_new = np.zeros(shape, dtype=bool)
        rounds = np.zeros(self.replicas, dtype=np.int64)

        for round_number in range(1, max_rounds + 1):
            replica_active = live.any(axis=1)
            if not replica_active.any():
                break
            rounds[replica_active] = round_number
            sub = (round_number - 1) % period + 1
            if sub <= k:
                # ----------------------------------- phase A: min-flood
                if sub == 1:
                    heard_any.fill(False)
                    heard_flag.fill(False)
                    flag_new.fill(False)
                    best_v.fill(_SENTINEL)
                    best_i.fill(_SENTINEL)
                    senders = undecided
                    if self.randomized:
                        self._draw(pair_v, undecided)
                    best_v[undecided] = pair_v[undecided]
                    best_i[undecided] = pair_i[undecided]
                else:
                    senders = live & improved
                if self.randomized:
                    payload_bits = (_int_message_bits(best_v)
                                    + _int_message_bits(best_i) + 1)
                else:
                    payload_bits = _int_message_bits(best_i)
                self.accountant.broadcast_round(senders, payload_bits)
                min_v, min_i = self.segments.min_pair_over_active(
                    best_v, best_i, senders)
                smaller = live & (
                    (min_v < best_v)
                    | ((min_v == best_v) & (min_i < best_i)))
                best_v = np.where(smaller, min_v, best_v)
                best_i = np.where(smaller, min_i, best_i)
                improved = smaller
                heard_any |= live & self.segments.any_neighbor(senders)
                if sub == k:
                    quiet = live & ~undecided & ~heard_any
                    halted |= quiet
                    live &= ~quiet
            else:
                # ----------------------------- phase B: winner-flag flood
                if sub == k + 1:
                    senders = (undecided & (best_v == pair_v)
                               & (best_i == pair_i))
                    heard_flag |= senders
                else:
                    senders = live & flag_new
                self.accountant.broadcast_round(senders, 1)
                incoming = live & self.segments.any_neighbor(senders)
                flag_new = incoming & ~heard_flag
                heard_flag |= incoming
                if sub == period:
                    winners = (undecided & (best_v == pair_v)
                               & (best_i == pair_i))
                    new_dominated = undecided & ~winners & heard_flag
                    in_mis |= winners
                    dominated |= new_dominated
                    undecided &= ~(winners | new_dominated)
        self.accountant.flush()
        self.outcome = {"in_set": in_mis, "dominated": dominated,
                        "halted": halted}
        return rounds

    def writeback(self, sims: Sequence[Simulator]) -> None:
        in_mis = self.outcome["in_set"]
        dominated = self.outcome["dominated"]
        halted = self.outcome["halted"]
        for replica, sim in enumerate(sims):
            instances = sim._instances
            node_class = type(instances[0])
            for index in np.flatnonzero(in_mis[replica]):
                instances[index].state = node_class.IN_MIS
            for index in np.flatnonzero(dominated[replica]):
                instances[index].state = node_class.DOMINATED
            for index in np.flatnonzero(halted[replica]):
                instances[index].halt(bool(in_mis[replica, index]))


class _PowerLubyReplicaKernel(_PowerFloodReplicaKernel):
    randomized = True


class _PowerDetRulingReplicaKernel(_PowerFloodReplicaKernel):
    randomized = False


#: Batch kernels, keyed like the vector programs: exact node class match.
_KERNELS: dict[str, type[_ReplicaKernel]] = {
    "repro.mis.luby.LubyMISNode": _LubyReplicaKernel,
    "repro.ruling.distributed.DetRulingSetNode": _DetRulingReplicaKernel,
    "repro.mis.power_sim.PowerLubyMISNode": _PowerLubyReplicaKernel,
    "repro.mis.power_sim.PowerDetRulingNode": _PowerDetRulingReplicaKernel,
}


# ------------------------------------------------------------------- runner
def select_batch_kernel(sims: Sequence[Simulator],
                        ) -> type[_ReplicaKernel] | None:
    """The kernel that would batch ``sims``, or ``None`` (fallback).

    Pre-``initialize`` checks only: numpy present, one exact node class
    across every replica with a registered kernel, no observers, full
    duplex, and structurally identical topologies (same graph object, or
    equal labels + CSR).  Exposed for tests and the benchmark gate.
    """
    if np is None or not sims:
        return None
    first = sims[0]
    if not first._instances:
        return None
    node_class = type(first._instances[0])
    kernel_class = _KERNELS.get(_class_key(node_class))
    if kernel_class is None:
        return None
    t0 = first.topology
    for sim in sims:
        if sim.observers or sim.half_duplex:
            return None
        if any(type(inst) is not node_class for inst in sim._instances):
            return None
        topology = sim.topology
        if topology is t0 or sim.network.graph is first.network.graph:
            continue  # same graph -> identical structure by construction
        if (topology.labels != t0.labels
                or topology.indptr != t0.indptr
                or topology.neighbor_indices != t0.neighbor_indices):
            return None
    return kernel_class


def _run_batched(sims: Sequence[Simulator],
                 kernel_class: type[_ReplicaKernel],
                 max_rounds: int) -> list[SimulationResult] | None:
    """Run the batch kernel; ``None`` if the post-init gate rejects.

    Mirrors ``Simulator.run``'s envelope per replica: initialize, execute,
    finalize, collect -- so results are exactly what each solo vector run
    would have produced.  On ``None`` the instances are already initialized
    and the caller must rebuild its simulators.
    """
    for sim in sims:
        for instance in sim._instances:
            instance.initialize()
    if not kernel_class.supports([sim._instances for sim in sims]):
        return None
    topology = sims[0].topology
    ctx = _ReplicaContext(
        arrays=topology.numpy_arrays(),
        n=topology.n,
        replicas=len(sims),
        ids=np.array([sim.topology.congest_ids for sim in sims],
                     dtype=np.int64),
        live0=np.array([[not inst.halted for inst in sim._instances]
                        for sim in sims], dtype=bool),
        k=getattr(sims[0]._instances[0], "k", None),
    )
    if kernel_class.randomized:
        ctx.rngs = [[inst.rng for inst in sim._instances] for sim in sims]
        ctx.spaces = [sim._instances[0]._priority_space for sim in sims]
    transports = [Transport(sim.topology,
                            bandwidth_bits=sim.network.bandwidth_bits,
                            enforce=sim.enforce_bandwidth,
                            half_duplex=False, profile_slots=False)
                  for sim in sims]
    kernel = kernel_class(ctx, transports)
    rounds = kernel.run(max_rounds)
    kernel.writeback(sims)

    results = []
    for replica, (sim, transport) in enumerate(zip(sims, transports)):
        for instance in sim._instances:
            instance.finalize()
        outputs = {label: instance.output
                   for label, instance in zip(sim.topology.labels,
                                              sim._instances)}
        results.append(SimulationResult(
            rounds=int(rounds[replica]),
            total_messages=transport.total_messages,
            total_bits=transport.total_bits,
            outputs=outputs,
            halted=all(instance.halted for instance in sim._instances),
            edge_message_counts=LazyEdgeCounts(transport),
            engine=VectorEngine.name,
            engine_used=VectorEngine.name,
        ))
    return results


def _bind_template(instance, topology, seed: int):
    """Bind one node instance exactly as ``Simulator._bind`` binds index 0."""
    congest_id = topology.congest_ids[0]
    instance.node = topology.labels[0]
    instance.node_id = congest_id
    instance.neighbors = topology.neighbor_labels[0]
    instance._neighbor_ids = None
    instance._id_binding = (topology, 0)
    instance.n = topology.n
    instance._rng = None
    instance._rng_seed = f"{seed}:{congest_id}"
    instance._lazy_broadcast = True
    return instance


def _run_batched_uniform(networks: Sequence[CongestNetwork],
                         algorithm_factory, seeds: Sequence[int],
                         max_rounds: int, enforce_bandwidth: bool,
                         ) -> list[SimulationResult] | None:
    """Batch without building per-node instances; ``None`` when no kernel
    applies (the caller falls back to the exact path).

    The caller vouches that ``algorithm_factory`` is *node-uniform*: it
    returns identically-configured instances for every node label, and
    ``initialize`` depends only on ``(class, parameters, n)`` and never
    halts.  Under that contract one template instance per replica pins down
    everything the kernel needs -- class, parameters, priority space -- and
    the per-node RNG streams are rebuilt directly from the seed/ID strings,
    so results are still bit-identical to the solo runs while skipping the
    ``O(B * n)`` instance construction entirely.
    """
    if np is None or not networks:
        return None
    topologies = [network.topology() for network in networks]
    t0 = topologies[0]
    if t0.n == 0:
        return None
    first_graph = networks[0].graph
    for topology, network in zip(topologies, networks):
        if topology is t0 or network.graph is first_graph:
            continue  # same graph -> identical structure by construction
        if (topology.labels != t0.labels
                or topology.indptr != t0.indptr
                or topology.neighbor_indices != t0.neighbor_indices):
            return None

    templates = []
    for topology, seed in zip(topologies, seeds):
        template = _bind_template(
            Simulator._instantiate(algorithm_factory, topology.labels[0]),
            topology, seed)
        template.initialize()
        if template.halted:
            return None  # initialize() halts: outside the uniform contract
        templates.append(template)
    node_class = type(templates[0])
    kernel_class = _KERNELS.get(_class_key(node_class))
    if kernel_class is None:
        return None
    if any(type(template) is not node_class for template in templates):
        return None
    if not kernel_class.supports([[template] for template in templates]):
        return None

    replicas = len(networks)
    ctx = _ReplicaContext(
        arrays=t0.numpy_arrays(),
        n=t0.n,
        replicas=replicas,
        ids=np.array([topology.congest_ids for topology in topologies],
                     dtype=np.int64),
        live0=np.ones((replicas, t0.n), dtype=bool),
        k=getattr(templates[0], "k", None),
    )
    if kernel_class.randomized:
        ctx.rngs = [[random.Random(f"{seed}:{congest_id}")
                     for congest_id in topology.congest_ids]
                    for seed, topology in zip(seeds, topologies)]
        ctx.spaces = [template._priority_space for template in templates]
    transports = [Transport(topology,
                            bandwidth_bits=network.bandwidth_bits,
                            enforce=enforce_bandwidth,
                            half_duplex=False, profile_slots=False)
                  for topology, network in zip(topologies, networks)]
    kernel = kernel_class(ctx, transports)
    rounds = kernel.run(max_rounds)

    # All registered node classes settle every node in finalize() with
    # output ``state == IN_MIS``, so the result is fully determined by the
    # kernel's membership mask (the contract the exact path's writeback +
    # finalize envelope arrives at instance by instance).
    in_set = kernel.outcome["in_set"]
    labels = t0.labels
    results = []
    for replica, transport in enumerate(transports):
        results.append(SimulationResult(
            rounds=int(rounds[replica]),
            total_messages=transport.total_messages,
            total_bits=transport.total_bits,
            outputs=dict(zip(labels, in_set[replica].tolist())),
            halted=True,
            edge_message_counts=LazyEdgeCounts(transport),
            engine=VectorEngine.name,
            engine_used=VectorEngine.name,
        ))
    return results


def simulate_replicas(graph, algorithm_factory, seeds: Sequence[int], *,
                      engine="vector", max_rounds: int = 10_000,
                      enforce_bandwidth: bool = True,
                      network_factory: Callable[[int], CongestNetwork] | None = None,
                      uniform_factory: bool = False,
                      ) -> list[SimulationResult]:
    """Run one algorithm under many seeds; one ``SimulationResult`` per seed.

    Each seed ``s`` reproduces exactly the solo run over
    ``network_factory(s)`` (default ``CongestNetwork(graph, id_seed=s)``)
    with ``Simulator(..., seed=s, engine=engine)``: the seed re-randomises
    both the identifier assignment and the per-node RNG streams, as the
    solve adapters do.  When ``engine="vector"`` and a batch kernel covers
    the algorithm, all replicas execute in lockstep as one ``(B, n)`` array
    program over the shared CSR; otherwise the runner warns
    (:class:`BatchFallbackWarning`) and runs the replicas sequentially.

    ``uniform_factory=True`` asserts that ``algorithm_factory`` ignores the
    node label (and that ``initialize`` depends only on the class,
    parameters and ``n`` -- true for every registered kernel class).  The
    batch then skips building the ``B * n`` node instances and verifies the
    factory against one template instance per replica instead; outputs stay
    bit-identical.  By default (``False``) every instance is built and
    checked, so arbitrary per-node factories are detected and safely fall
    back to sequential runs.
    """
    seeds = list(seeds)
    if not seeds:
        return []
    if network_factory is None:
        if graph is None:
            raise ValueError("either graph or network_factory is required")
        network_factory = lambda seed: CongestNetwork(graph, id_seed=seed)
    networks = [network_factory(seed) for seed in seeds]

    if uniform_factory and resolve_engine(engine).name == VectorEngine.name:
        results = _run_batched_uniform(networks, algorithm_factory, seeds,
                                       max_rounds, enforce_bandwidth)
        if results is not None:
            return results

    def build() -> list[Simulator]:
        return [Simulator(network, algorithm_factory, seed=seed,
                          engine=engine,
                          enforce_bandwidth=enforce_bandwidth)
                for network, seed in zip(networks, seeds)]

    sims = build()
    if sims[0].engine.name == VectorEngine.name:
        kernel_class = select_batch_kernel(sims)
        if kernel_class is not None:
            results = _run_batched(sims, kernel_class, max_rounds)
            if results is not None:
                return results
            sims = build()  # the failed attempt initialized the instances
        node_class = (type(sims[0]._instances[0]).__name__
                      if sims[0]._instances else "(no instances)")
        warnings.warn(
            f"replica batch fell back to sequential runs for {node_class} "
            f"(no batch kernel applies; results are bit-identical, "
            f"performance is not)", BatchFallbackWarning, stacklevel=2)
    return [sim.run(max_rounds) for sim in sims]

"""Analytic round-cost accounting (the "round ledger").

The power-graph algorithms of the paper are built from a small set of
communication primitives whose CONGEST round costs are established once and
for all in Section 4 (Lemmas 4.1-4.3, 4.6) and Claim 5.6.  Re-simulating
every one of those primitives message-by-message would make the Python
simulation quadratic or worse in ``n`` for no experimental benefit: the
experiments measure *round counts*, and the round counts of the primitives
are exactly the closed forms proven in the paper.

The :class:`RoundLedger` therefore lets an algorithm perform its computation
at the graph level while *charging* rounds for every communication step it
performs, with one labelled entry per primitive invocation.  Benchmarks sum
the ledger to obtain the algorithm's round complexity and can break it down
by phase (pre-shattering, sparsification stages, network decomposition, ...).

The costs charged for the primitives follow the paper:

=====================================  =============================================
primitive                              rounds charged
=====================================  =============================================
one hop of flooding / BFS level        1
learning distance-(s+1) Q-IDs          ``ceil(hat_delta * a / bandwidth)``   (Lemma 4.1)
Broadcast from Q to N^s(Q)             ``s + ceil(m * hat_delta / bandwidth)``  (Lemma 4.2)
Q-message                              ``s + ceil((m + a) * hat_delta^2 / bandwidth)`` (Lemma 4.2)
convergecast in a spanning tree        ``diam + ceil((m + log n) / bandwidth)``  (Lemma 4.3)
one simulated round on G^s[Q]          ``s + ceil((m + a) * hat_delta^2 / bandwidth)`` (Lemma 4.6)
fixing one seed bit (Claim 5.6)        ``2 * diam + O(1)``  (convergecast + broadcast of the bit)
=====================================  =============================================

All charges take the ceiling of the bandwidth division and are at least 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["RoundLedger"]


@dataclass
class LedgerEntry:
    label: str
    rounds: int


@dataclass
class RoundLedger:
    """Accumulates labelled round charges for one algorithm execution."""

    bandwidth_bits: int = 64
    entries: list[LedgerEntry] = field(default_factory=list)

    # ------------------------------------------------------------- charging
    def charge(self, rounds: float, label: str) -> int:
        """Charge ``rounds`` (rounded up, at least 1 if positive) under ``label``."""
        rounded = int(math.ceil(rounds))
        if rounds > 0:
            rounded = max(1, rounded)
        if rounded > 0:
            self.entries.append(LedgerEntry(label=label, rounds=rounded))
        return rounded

    def charge_flooding(self, hops: int, label: str = "flooding") -> int:
        """``hops`` rounds of flooding / beeps propagated ``hops`` hops."""
        return self.charge(hops, label)

    def charge_learn_ids(self, hat_delta: int, id_bits: int,
                         label: str = "learn-distance-ids") -> int:
        """Lemma 4.1: pipeline ``hat_delta`` IDs of ``id_bits`` bits over one hop."""
        return self.charge(math.ceil(hat_delta * id_bits / self.bandwidth_bits), label)

    def charge_broadcast(self, s: int, message_bits: int, hat_delta: int,
                         label: str = "broadcast") -> int:
        """Lemma 4.2 (Broadcast): ``O(s + m * hat_delta / bandwidth)`` rounds."""
        return self.charge(s + math.ceil(message_bits * hat_delta / self.bandwidth_bits), label)

    def charge_q_message(self, s: int, message_bits: int, id_bits: int, hat_delta: int,
                         label: str = "q-message") -> int:
        """Lemma 4.2 (Q-message): ``O(s + (m + a) * hat_delta^2 / bandwidth)`` rounds."""
        payload = (message_bits + id_bits) * hat_delta * hat_delta
        return self.charge(s + math.ceil(payload / self.bandwidth_bits), label)

    def charge_convergecast(self, diameter: int, message_bits: int,
                            label: str = "convergecast") -> int:
        """Lemma 4.3: aggregate an ``m``-bit value at the root of a spanning tree."""
        extra = math.ceil((message_bits + math.ceil(math.log2(max(2, diameter + 2)))) /
                          self.bandwidth_bits)
        return self.charge(diameter + extra, label)

    def charge_simulated_round(self, s: int, message_bits: int, id_bits: int,
                               hat_delta: int, label: str = "simulate-Gs[Q]") -> int:
        """Lemma 4.6: one round of a CONGEST algorithm on ``G^s[Q]``."""
        return self.charge_q_message(s, message_bits, id_bits, hat_delta, label=label)

    def charge_seed_bit(self, diameter: int, label: str = "fix-seed-bit") -> int:
        """Claim 5.6: one bit = convergecast of the two sums + broadcast of the choice."""
        return self.charge(2 * max(1, diameter) + 1, label)

    # -------------------------------------------------------------- queries
    @property
    def total_rounds(self) -> int:
        return sum(entry.rounds for entry in self.entries)

    def rounds_by_label(self) -> dict[str, int]:
        """Total rounds grouped by label (phase breakdown for the benchmarks)."""
        grouped: dict[str, int] = {}
        for entry in self.entries:
            grouped[entry.label] = grouped.get(entry.label, 0) + entry.rounds
        return grouped

    def merge(self, other: "RoundLedger", prefix: str = "") -> None:
        """Fold another ledger's entries into this one (optionally prefixed)."""
        for entry in other.entries:
            label = f"{prefix}{entry.label}" if prefix else entry.label
            self.entries.append(LedgerEntry(label=label, rounds=entry.rounds))

    def subtotal(self, labels: Iterable[str]) -> int:
        wanted = set(labels)
        return sum(entry.rounds for entry in self.entries if entry.label in wanted)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RoundLedger(total={self.total_rounds}, entries={len(self.entries)})"

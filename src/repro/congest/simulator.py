"""The synchronous CONGEST scheduler.

The simulator drives one :class:`~repro.congest.node.NodeAlgorithm` instance
per node through synchronous rounds, delivering messages between neighbors
and enforcing the per-edge per-round bandwidth of the CONGEST model.  It also
records the statistics the experiments need: total rounds, total messages,
total bits, and per-edge message counts (congestion).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Mapping, Type

from repro.congest.message import Message, message_bits
from repro.congest.network import CongestNetwork
from repro.congest.node import NodeAlgorithm

Node = Hashable

__all__ = ["BandwidthExceededError", "SimulationResult", "Simulator"]


class BandwidthExceededError(RuntimeError):
    """Raised when a message exceeds the per-edge per-round bandwidth."""


@dataclass
class SimulationResult:
    """Outcome of one simulator run."""

    rounds: int
    total_messages: int
    total_bits: int
    outputs: dict[Node, Any]
    halted: bool
    edge_message_counts: dict[tuple[Node, Node], int] = field(default_factory=dict)

    def max_edge_congestion(self) -> int:
        """The maximum number of messages carried by any single edge."""
        if not self.edge_message_counts:
            return 0
        return max(self.edge_message_counts.values())


class Simulator:
    """Run a per-node algorithm on a :class:`CongestNetwork`.

    Parameters
    ----------
    network:
        The communication network.
    algorithm_factory:
        Either a :class:`NodeAlgorithm` subclass or a callable
        ``node -> NodeAlgorithm`` (the latter allows per-node inputs).
    seed:
        Seed for the per-node random generators.
    enforce_bandwidth:
        When true (the default), a message larger than the network bandwidth
        raises :class:`BandwidthExceededError`.  Experiments that only want to
        *measure* congestion (Figure 1) set this to ``False``.
    """

    def __init__(self, network: CongestNetwork,
                 algorithm_factory: Type[NodeAlgorithm] | Callable[[Node], NodeAlgorithm],
                 *, seed: int = 0, enforce_bandwidth: bool = True) -> None:
        self.network = network
        self.seed = seed
        self.enforce_bandwidth = enforce_bandwidth
        self.nodes: dict[Node, NodeAlgorithm] = {}
        for node in network.nodes():
            instance = self._instantiate(algorithm_factory, node)
            self._bind(instance, node)
            self.nodes[node] = instance

    # ------------------------------------------------------------ plumbing
    @staticmethod
    def _instantiate(factory: Type[NodeAlgorithm] | Callable[[Node], NodeAlgorithm],
                     node: Node) -> NodeAlgorithm:
        if isinstance(factory, type) and issubclass(factory, NodeAlgorithm):
            return factory()
        instance = factory(node)
        if not isinstance(instance, NodeAlgorithm):
            raise TypeError("algorithm_factory must produce NodeAlgorithm instances")
        return instance

    def _bind(self, instance: NodeAlgorithm, node: Node) -> None:
        network = self.network
        instance.node = node
        instance.node_id = network.node_id(node)
        instance.neighbors = tuple(network.neighbors(node))
        instance.neighbor_ids = {nbr: network.node_id(nbr) for nbr in instance.neighbors}
        instance.n = network.n
        instance.rng = random.Random(f"{self.seed}:{network.node_id(node)}")

    # ----------------------------------------------------------------- run
    def run(self, max_rounds: int = 10_000) -> SimulationResult:
        """Run until every node halts or ``max_rounds`` is reached."""
        for instance in self.nodes.values():
            instance.initialize()

        total_messages = 0
        total_bits = 0
        edge_counts: dict[tuple[Node, Node], int] = {}
        rounds = 0

        for round_number in range(1, max_rounds + 1):
            if all(instance.halted for instance in self.nodes.values()):
                break
            rounds = round_number

            # Collect outgoing messages.
            inboxes: dict[Node, dict[Node, Any]] = {node: {} for node in self.nodes}
            edge_load: dict[tuple[Node, Node], int] = {}
            any_message = False
            for node, instance in self.nodes.items():
                if instance.halted:
                    continue
                outbox = instance.send(round_number) or {}
                for neighbor, payload in outbox.items():
                    if payload is Ellipsis:
                        continue
                    if not self.network.has_edge(node, neighbor):
                        raise ValueError(
                            f"node {node!r} attempted to send to non-neighbor {neighbor!r}")
                    size = message_bits(payload)
                    key = (node, neighbor) if str(node) <= str(neighbor) else (neighbor, node)
                    edge_load[key] = edge_load.get(key, 0) + size
                    if self.enforce_bandwidth and size > self.network.bandwidth_bits:
                        raise BandwidthExceededError(
                            f"message of {size} bits from {node!r} to {neighbor!r} exceeds "
                            f"bandwidth {self.network.bandwidth_bits}")
                    inboxes[neighbor][node] = payload
                    edge_counts[key] = edge_counts.get(key, 0) + 1
                    total_messages += 1
                    total_bits += size
                    any_message = True

            # Deliver.
            for node, instance in self.nodes.items():
                if instance.halted:
                    continue
                instance.receive(round_number, inboxes[node])

            if not any_message and all(inst.halted for inst in self.nodes.values()):
                break

        for instance in self.nodes.values():
            instance.finalize()

        outputs = {node: instance.output for node, instance in self.nodes.items()}
        halted = all(instance.halted for instance in self.nodes.values())
        return SimulationResult(
            rounds=rounds,
            total_messages=total_messages,
            total_bits=total_bits,
            outputs=outputs,
            halted=halted,
            edge_message_counts=edge_counts,
        )

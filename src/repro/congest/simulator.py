"""The CONGEST simulator facade over the layered runtime.

:class:`Simulator` keeps the seed repository's original constructor and
``run`` signature, but is now a thin facade that wires four explicit layers
together (see ``ARCHITECTURE.md``):

1. **topology** (:mod:`repro.congest.topology`) -- an integer-indexed
   snapshot of the network, built once and cached on the
   :class:`CongestNetwork`, so the round loop never touches networkx and
   never canonicalises edge keys with ``str()``;
2. **transport** (:mod:`repro.congest.transport`) -- pooled lazy inboxes and
   the aggregate per-edge per-round bandwidth accountant;
3. **scheduling** (:mod:`repro.congest.engine`) -- a pluggable
   :class:`RoundEngine`; the default :class:`SyncEngine` reproduces the
   legacy semantics bit for bit, :class:`ActiveSetEngine` skips halted
   nodes entirely, and :class:`~repro.congest.vector_engine.VectorEngine`
   (``engine="vector"``) executes supported algorithms as batched numpy
   rounds -- all three bit-identical for the same seed;
4. **instrumentation** (:mod:`repro.congest.observers`) -- a
   :class:`RoundObserver` trace API replacing the legacy inlined counters.

The facade still returns the same :class:`SimulationResult`; its
``edge_message_counts`` are keyed by canonical label pairs ordered by node
*index* (graph iteration order) rather than by ``str()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Iterator, Mapping, Type

from repro.congest.engine import RoundEngine, Runtime, SyncEngine, resolve_engine
from repro.congest.network import CongestNetwork
from repro.congest.node import NodeAlgorithm
from repro.congest.observers import (
    RoundObserver,
    RunContext,
    ambient_observers,
)
from repro.congest.transport import BandwidthExceededError, Transport

Node = Hashable

__all__ = ["BandwidthExceededError", "LazyEdgeCounts", "SimulationResult",
           "Simulator"]


class LazyEdgeCounts(Mapping):
    """``edge -> message count`` mapping, materialised on first access.

    The transport tracks congestion by integer edge index; converting that to
    the label-keyed dictionary costs O(m), which short simulator runs would
    pay on every ``run()`` even when nobody reads the congestion.  This view
    defers the conversion until the result is actually inspected.
    """

    __slots__ = ("_transport", "_dict")

    def __init__(self, transport: Transport) -> None:
        self._transport = transport
        self._dict: dict[tuple[Node, Node], int] | None = None

    def _materialized(self) -> dict[tuple[Node, Node], int]:
        if self._dict is None:
            self._dict = self._transport.edge_counts_by_label()
            self._transport = None
        return self._dict

    def __getitem__(self, key: tuple[Node, Node]) -> int:
        return self._materialized()[key]

    def __iter__(self) -> Iterator[tuple[Node, Node]]:
        return iter(self._materialized())

    def __len__(self) -> int:
        return len(self._materialized())

    def __contains__(self, key: object) -> bool:
        return key in self._materialized()

    def keys(self):
        return self._materialized().keys()

    def values(self):
        return self._materialized().values()

    def items(self):
        return self._materialized().items()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LazyEdgeCounts):
            return self._materialized() == other._materialized()
        if isinstance(other, Mapping):
            return self._materialized() == dict(other)
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return repr(self._materialized())


@dataclass
class SimulationResult:
    """Outcome of one simulator run."""

    rounds: int
    total_messages: int
    total_bits: int
    outputs: dict[Node, Any]
    halted: bool
    #: ``(u, v) -> messages`` per canonical edge; a plain dict or a
    #: :class:`LazyEdgeCounts` view (same mapping API, compares equal).
    edge_message_counts: Mapping[tuple[Node, Node], int] = field(default_factory=dict)
    engine: str = SyncEngine.name
    #: The engine that *actually* executed the run: equals ``engine`` except
    #: when the vector engine fell back to its scalar reference (then
    #: ``engine="vector"`` but ``engine_used="sync"``).  Empty string on
    #: results built before the field existed.
    engine_used: str = ""

    def max_edge_congestion(self) -> int:
        """The maximum number of messages carried by any single edge."""
        if not self.edge_message_counts:
            return 0
        return max(self.edge_message_counts.values())


class Simulator:
    """Run a per-node algorithm on a :class:`CongestNetwork`.

    Parameters
    ----------
    network:
        The communication network.
    algorithm_factory:
        Either a :class:`NodeAlgorithm` subclass or a callable
        ``node -> NodeAlgorithm`` (the latter allows per-node inputs).
    seed:
        Seed for the per-node random generators.
    enforce_bandwidth:
        When true (the default), exceeding the per-edge per-round bandwidth
        raises :class:`BandwidthExceededError`.  Experiments that only want
        to *measure* congestion (Figure 1) set this to ``False``.
    engine:
        The round engine: an instance, class, name (``"sync"`` /
        ``"active-set"`` / ``"vector"``) or ``None`` for the default
        :class:`SyncEngine`.
    observers:
        Iterable of :class:`RoundObserver` instances to attach for this
        simulator's runs.
    half_duplex:
        When true, both directions of an edge share one ``bandwidth_bits``
        budget per round; by default each direction has its own (the
        standard CONGEST convention).
    """

    def __init__(self, network: CongestNetwork,
                 algorithm_factory: Type[NodeAlgorithm] | Callable[[Node], NodeAlgorithm],
                 *, seed: int = 0, enforce_bandwidth: bool = True,
                 engine: RoundEngine | type[RoundEngine] | str | None = None,
                 observers: Iterable[RoundObserver] = (),
                 half_duplex: bool = False) -> None:
        self.network = network
        self.topology = network.topology()
        self.seed = seed
        self.enforce_bandwidth = enforce_bandwidth
        self.half_duplex = half_duplex
        self.engine = resolve_engine(engine)
        self.observers: list[RoundObserver] = list(observers)
        self._instances: list[NodeAlgorithm] = []
        for index, label in enumerate(self.topology.labels):
            instance = self._instantiate(algorithm_factory, label)
            self._bind(instance, index)
            self._instances.append(instance)
        #: Backward-compatible ``label -> instance`` view (iteration order is
        #: the network's node order, as in the legacy simulator).
        self.nodes: dict[Node, NodeAlgorithm] = dict(
            zip(self.topology.labels, self._instances))

    # ------------------------------------------------------------ plumbing
    @staticmethod
    def _instantiate(factory: Type[NodeAlgorithm] | Callable[[Node], NodeAlgorithm],
                     node: Node) -> NodeAlgorithm:
        if isinstance(factory, type) and issubclass(factory, NodeAlgorithm):
            return factory()
        instance = factory(node)
        if not isinstance(instance, NodeAlgorithm):
            raise TypeError("algorithm_factory must produce NodeAlgorithm instances")
        return instance

    def _bind(self, instance: NodeAlgorithm, index: int) -> None:
        topology = self.topology
        congest_id = topology.congest_ids[index]
        instance.node = topology.labels[index]
        instance.node_id = congest_id
        instance.neighbors = topology.neighbor_labels[index]
        # rng / neighbor_ids materialise on first access (NodeAlgorithm's
        # lazy-binding properties); the streams and tables are identical to
        # eager construction, but paths that never read them (the array
        # backends, deterministic kernels) skip the O(n) setup entirely.
        instance._neighbor_ids = None
        instance._id_binding = (topology, index)
        instance.n = topology.n
        instance._rng = None
        instance._rng_seed = f"{self.seed}:{congest_id}"
        instance._lazy_broadcast = True

    # ----------------------------------------------------------------- run
    def run(self, max_rounds: int = 10_000) -> SimulationResult:
        """Run until every node halts or ``max_rounds`` is reached."""
        topology = self.topology
        # Ambient observers (repro.congest.observers.ambient_observation)
        # join the explicit ones for this run only; their presence routes
        # engine selection exactly like explicit observers.
        observers = tuple(self.observers) + ambient_observers()
        # Per-slot transport profiling only pays off for observers that
        # consume round snapshots; run-level (``vector_compatible``)
        # observers skip it, which also keeps the vector engine eligible.
        profiling = any(not getattr(o, "vector_compatible", False)
                        for o in observers)
        transport = Transport(topology,
                              bandwidth_bits=self.network.bandwidth_bits,
                              enforce=self.enforce_bandwidth,
                              half_duplex=self.half_duplex,
                              profile_slots=profiling)
        if observers:
            context = RunContext(network=self.network, topology=topology,
                                 transport=transport, engine=self.engine.name)
            for observer in observers:
                observer.on_run_start(context)

        instances = self._instances
        for instance in instances:
            instance.initialize()

        runtime = Runtime(topology=topology, transport=transport,
                          instances=instances, observers=observers)
        rounds = self.engine.run(runtime, max_rounds)

        for instance in instances:
            instance.finalize()

        outputs = {label: instance.output
                   for label, instance in zip(topology.labels, instances)}
        halted = all(instance.halted for instance in instances)
        result = SimulationResult(
            rounds=rounds,
            total_messages=transport.total_messages,
            total_bits=transport.total_bits,
            outputs=outputs,
            halted=halted,
            edge_message_counts=LazyEdgeCounts(transport),
            engine=self.engine.name,
            engine_used=getattr(self.engine, "last_engine_used",
                                self.engine.name),
        )
        for observer in observers:
            observer.on_run_end(result)
        return result

"""Scheduling layer: pluggable round engines for the CONGEST runtime.

A :class:`RoundEngine` drives the per-node state machines through synchronous
rounds on top of the topology and transport layers.  Two engines ship with
the runtime:

* :class:`SyncEngine` -- the reference scheduler.  Every round it scans all
  nodes, exactly like the legacy monolithic loop (minus its per-message
  networkx and ``str()`` work), so its semantics are bit-for-bit those of the
  pre-refactor simulator.
* :class:`ActiveSetEngine` -- maintains the set of non-halted nodes across
  rounds and iterates only over it, making late-phase rounds ``O(active)``
  instead of ``O(n)``.  Because a halted :class:`NodeAlgorithm` can never
  un-halt (there is no API for it), the two engines produce identical
  outputs, round counts and message statistics for the same seed; the
  equivalence is locked down by ``tests/test_engine_equivalence.py``.

Writing a new engine means subclassing :class:`RoundEngine` and implementing
:meth:`RoundEngine.run` over a :class:`Runtime` bundle.  The contract an
engine must honour (it is what the algorithms in this repository rely on):

1. each executed round first collects all outboxes (``send``), then delivers
   all inboxes (``receive``);
2. ``send``/``receive`` are only called on non-halted nodes, and a node that
   halts during the send phase does not receive that round;
3. messages addressed to nodes that halt are still counted (the transport
   accounts for them) but never processed;
4. the engine stops as soon as every node has halted, or after
   ``max_rounds`` rounds, and returns the number of executed rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.congest.message import Broadcast
from repro.congest.node import NodeAlgorithm
from repro.congest.observers import RoundObserver, RoundSnapshot
from repro.congest.topology import TopologySnapshot
from repro.congest.transport import EMPTY_INBOX, Transport

__all__ = ["ActiveSetEngine", "RoundEngine", "Runtime", "SyncEngine",
           "register_engine", "resolve_engine"]


@dataclass
class Runtime:
    """Everything an engine needs to run one simulation."""

    topology: TopologySnapshot
    transport: Transport
    instances: Sequence[NodeAlgorithm]  # aligned with topology indices
    observers: tuple[RoundObserver, ...] = ()


class RoundEngine:
    """Protocol for round schedulers; see the module docstring for the contract."""

    name = "abstract"

    def run(self, runtime: Runtime, max_rounds: int) -> int:
        """Drive the instances until all halt or ``max_rounds``; return rounds."""
        raise NotImplementedError

    # ------------------------------------------------------ shared plumbing
    @staticmethod
    def _send_phase(runtime: Runtime, round_number: int, live: Sequence[int],
                    msg_observers: tuple[RoundObserver, ...]) -> None:
        """Collect and route the outboxes of the ``live`` node indices.

        Precondition: every index in ``live`` is non-halted when the phase
        starts (both engines rebuild/maintain the list from fresh halted
        flags, and a node can only halt itself, so no entry can become
        halted before its own ``send`` runs).
        """
        instances = runtime.instances
        transport = runtime.transport
        neighbor_rows = runtime.topology.neighbor_labels
        deposit_outbox = transport.deposit_outbox
        deposit_broadcast = transport.deposit_broadcast
        for index in live:
            outbox = instances[index].send(round_number)
            if not outbox:
                continue
            # Fast path only for a pristine lazy Broadcast over *the* bound
            # neighbor row (identity check): any mutation clears _neighbors,
            # and a Broadcast over a subset or foreign tuple falls back to
            # the per-entry path, so it can never be misdelivered.
            if (type(outbox) is Broadcast
                    and outbox._neighbors is neighbor_rows[index]):
                payload = outbox.payload
                if payload is not Ellipsis:
                    deposit_broadcast(index, payload, round_number, msg_observers)
            else:
                deposit_outbox(index, outbox, round_number, msg_observers)

    @staticmethod
    def _emit_round_end(runtime: Runtime, round_number: int, active_at_start: int,
                        newly_halted: tuple, observers) -> None:
        profile = runtime.transport.round_profile()
        snapshot = RoundSnapshot(
            round_number=round_number,
            active_at_start=active_at_start,
            messages=profile.messages,
            bits=profile.bits,
            max_edge_bits=profile.max_edge_bits,
            busiest_edge=profile.busiest_edge,
            newly_halted=newly_halted,
        )
        for observer in observers:
            observer.on_round_end(round_number, snapshot)


class SyncEngine(RoundEngine):
    """Reference engine: scans every node every round (legacy semantics)."""

    name = "sync"

    def run(self, runtime: Runtime, max_rounds: int) -> int:
        instances = runtime.instances
        transport = runtime.transport
        labels = runtime.topology.labels
        observers = tuple(runtime.observers)
        msg_observers = tuple(o for o in observers if o.wants_messages)
        inbox_table = transport.inbox_table
        empty = EMPTY_INBOX
        n = len(instances)
        rounds = 0
        for round_number in range(1, max_rounds + 1):
            live = [index for index in range(n) if not instances[index].halted]
            if not live:
                break
            rounds = round_number
            for observer in observers:
                observer.on_round_start(round_number, len(live))

            self._send_phase(runtime, round_number, live, msg_observers)

            for index in live:
                instance = instances[index]
                if instance.halted:  # halted during its own send phase
                    continue
                box = inbox_table[index]
                instance.receive(round_number, empty if box is None else box)

            if observers:
                newly_halted = tuple(labels[index] for index in live
                                     if instances[index].halted)
                self._emit_round_end(runtime, round_number, len(live),
                                     newly_halted, observers)
            transport.end_round()
        return rounds


class ActiveSetEngine(RoundEngine):
    """Maintains the non-halted set across rounds; late rounds are O(active)."""

    name = "active-set"

    def run(self, runtime: Runtime, max_rounds: int) -> int:
        instances = runtime.instances
        transport = runtime.transport
        labels = runtime.topology.labels
        observers = tuple(runtime.observers)
        msg_observers = tuple(o for o in observers if o.wants_messages)
        inbox_table = transport.inbox_table
        empty = EMPTY_INBOX

        active = [index for index in range(len(instances))
                  if not instances[index].halted]
        rounds = 0
        for round_number in range(1, max_rounds + 1):
            if not active:
                break
            rounds = round_number
            for observer in observers:
                observer.on_round_start(round_number, len(active))

            self._send_phase(runtime, round_number, active, msg_observers)

            next_active: list[int] = []
            newly_halted: list = []
            for index in active:
                instance = instances[index]
                if not instance.halted:  # skip nodes halted in the send phase
                    box = inbox_table[index]
                    instance.receive(round_number, empty if box is None else box)
                    if not instance.halted:
                        next_active.append(index)
                        continue
                if observers:
                    newly_halted.append(labels[index])
            if observers:
                self._emit_round_end(runtime, round_number, len(active),
                                     tuple(newly_halted), observers)
            active = next_active
            transport.end_round()
        return rounds


_ENGINES = {
    SyncEngine.name: SyncEngine,
    "legacy": SyncEngine,  # alias: the semantics-compatible reference engine
    ActiveSetEngine.name: ActiveSetEngine,
    "active": ActiveSetEngine,
}


def register_engine(name: str, engine_class: type,
                    *aliases: str) -> None:
    """Add an engine class to the name registry used by :func:`resolve_engine`.

    Called by engine modules that live outside this file (the vectorized
    array engine registers itself as ``"vector"`` on import); re-registering
    the same class under the same name is a no-op, a *different* class under
    a taken name is an error.
    """
    for key in (name, *aliases):
        existing = _ENGINES.get(key)
        if existing is not None and existing is not engine_class:
            raise ValueError(f"engine name {key!r} already registered "
                             f"for {existing.__name__}")
        _ENGINES[key] = engine_class


def resolve_engine(engine: "RoundEngine | type[RoundEngine] | str | None",
                   ) -> RoundEngine:
    """Normalise the ``engine=`` argument of the simulator facade.

    Accepts an engine instance, an engine class, a name (``"sync"``,
    ``"active-set"``/``"active"``, ``"vector"``) or ``None`` (the default
    :class:`SyncEngine`).
    """
    if engine is None:
        return SyncEngine()
    if isinstance(engine, RoundEngine):
        return engine
    if isinstance(engine, type) and issubclass(engine, RoundEngine):
        return engine()
    if isinstance(engine, str):
        if engine not in _ENGINES:
            # The vector engine registers on import; resolving by name must
            # work even when only `repro.congest.engine` was imported.
            try:
                import repro.congest.vector_engine  # noqa: F401 (registers)
            except ImportError:  # pragma: no cover - numpy-less fallback
                pass
        try:
            return _ENGINES[engine]()
        except KeyError:
            raise ValueError(
                f"unknown engine {engine!r}; known: {sorted(_ENGINES)}") from None
    raise TypeError(f"engine must be a RoundEngine, class, name or None, "
                    f"got {engine!r}")

"""Transport layer: pooled inboxes and the per-edge bandwidth accountant.

The transport owns everything that happens to a message between ``send`` and
``receive``:

* **Inbox pool** -- inboxes are allocated lazily, only for nodes that
  actually receive a message this round, and the dicts are recycled between
  rounds.  (The legacy scheduler rebuilt a fresh ``{node: {}}`` mapping for
  *every* node *every* round, halted or not.)  Because inboxes are recycled,
  they are only valid for the duration of the ``receive`` call; algorithms
  that want to keep messages must copy them -- every algorithm in this
  repository already does.
* **Bandwidth accountant** -- enforces the *aggregate* per-edge per-round
  budget.  The legacy check only rejected single oversized messages, so
  several messages crossing the same edge in one round could silently exceed
  ``bandwidth_bits``.  The accountant accumulates bits per directed edge slot
  and raises :class:`BandwidthExceededError` as soon as the aggregate
  exceeds the budget.  By default each *direction* of an edge has its own
  ``bandwidth_bits`` budget (full-duplex, the standard CONGEST convention of
  one B-bit message per edge per direction); ``half_duplex=True`` makes both
  directions share a single budget.
* **Congestion tracking by edge index** -- per-edge message counts are plain
  integer-array increments; the simulator converts them to label-keyed
  dictionaries only once, when the run finishes.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Any, Hashable, Mapping

from repro.congest.message import message_bits
from repro.congest.topology import TopologySnapshot

Node = Hashable

__all__ = ["BandwidthExceededError", "RoundProfile", "Transport", "EMPTY_INBOX"]


class BandwidthExceededError(RuntimeError):
    """Raised when the per-edge per-round bandwidth budget is exceeded."""


#: Shared immutable inbox handed to nodes that received nothing this round.
EMPTY_INBOX: Mapping[Node, Any] = MappingProxyType({})

#: Sentinel for the deposit_outbox same-payload bit-size cache.
_UNSET = object()


@dataclass(frozen=True)
class RoundProfile:
    """Per-round transport aggregates (computed only when observers ask)."""

    messages: int
    bits: int
    max_edge_bits: int
    busiest_edge: int | None


class Transport:
    """Inbox pool + bandwidth accountant over a :class:`TopologySnapshot`."""

    __slots__ = (
        "topology",
        "bandwidth_bits",
        "enforce",
        "half_duplex",
        "profile_slots",
        "_slot_bits",
        "_touched_slots",
        "inbox_table",
        "_touched_inboxes",
        "_pool",
        "edge_message_counts",
        "total_messages",
        "total_bits",
        "round_messages",
        "round_bits",
        "_bulk_stamps",
        "_round_token",
    )

    def __init__(self, topology: TopologySnapshot, *, bandwidth_bits: int,
                 enforce: bool = True, half_duplex: bool = False,
                 profile_slots: bool = False) -> None:
        self.topology = topology
        self.bandwidth_bits = bandwidth_bits
        self.enforce = enforce
        self.half_duplex = half_duplex
        #: When true (instrumented runs), bulk deposits always take the
        #: fully-accounted path so :meth:`round_profile` sees per-slot loads.
        self.profile_slots = profile_slots
        # Per-slot load tracking backs the deposit paths only; engines that
        # account traffic in aggregate (absorb_aggregates) never deposit, so
        # the O(m) lists materialise lazily on the first deposit.  The
        # touched-slot sweeps in round_profile/end_round are safe either
        # way: nothing is touched until a deposit runs.
        self._slot_bits: list[int] | None = None
        self._touched_slots: list[int] = []
        #: ``inbox_table[i]`` is node ``i``'s inbox for the round in flight,
        #: or ``None`` if it received nothing yet.  Engines read it directly
        #: in their delivery loop; everyone else should use :meth:`inbox`.
        self.inbox_table: list[dict[Node, Any] | None] = [None] * topology.n
        self._touched_inboxes: list[int] = []
        self._pool: list[dict[Node, Any]] = []
        self.edge_message_counts = [0] * topology.edge_count
        self.total_messages = 0
        self.total_bits = 0
        self.round_messages = 0
        self.round_bits = 0
        # Round stamp per sender, detecting repeated bulk deposits within one
        # round (which force the slow, fully-accounted path).  Lazy with
        # _slot_bits: only deposit paths read it.
        self._bulk_stamps: list[int] | None = None
        self._round_token = 1

    def _ensure_slot_state(self) -> None:
        """Materialise the per-slot deposit bookkeeping on first use."""
        topology = self.topology
        slots = (topology.edge_count if self.half_duplex
                 else 2 * topology.edge_count)
        self._slot_bits = [0] * slots
        self._bulk_stamps = [0] * topology.n

    # ------------------------------------------------------------- sending
    def deposit(self, sender_label: Node, sender_index: int, receiver_index: int,
                edge_index: int, payload: Any) -> int:
        """Account for and enqueue one message; returns its size in bits.

        Raises :class:`BandwidthExceededError` when the aggregate load of the
        message's edge slot exceeds ``bandwidth_bits`` (and enforcement is
        on).  The message is still counted and delivered when enforcement is
        off, so congestion-measurement runs see the true load.
        """
        bits = message_bits(payload)
        if self._slot_bits is None:
            self._ensure_slot_state()
        # Stamp the sender so a bulk deposit later in this round takes the
        # fully-accounted path and sees this message's slot load.
        self._bulk_stamps[sender_index] = self._round_token
        if self.half_duplex:
            slot = edge_index
        else:
            slot = 2 * edge_index + (1 if sender_index > receiver_index else 0)
        load = self._slot_bits[slot] + bits
        if load == bits:
            self._touched_slots.append(slot)
        self._slot_bits[slot] = load
        if self.enforce and load > self.bandwidth_bits:
            raise self._bandwidth_error(sender_label, receiver_index, bits, load)
        box = self.inbox_table[receiver_index]
        if box is None:
            box = self._pool.pop() if self._pool else {}
            self.inbox_table[receiver_index] = box
            self._touched_inboxes.append(receiver_index)
        box[sender_label] = payload
        self.edge_message_counts[edge_index] += 1
        self.total_messages += 1
        self.total_bits += bits
        self.round_messages += 1
        self.round_bits += bits
        return bits

    def deposit_outbox(self, sender_index: int, outbox: Mapping[Node, Any],
                       round_number: int = 0, observers: tuple = ()) -> None:
        """Route and account a whole outbox (the engines' send-phase hot path).

        Semantically equivalent to calling :meth:`deposit` per entry, but
        with everything bound locally and one optimisation the per-message
        API cannot offer: when consecutive entries carry the *same payload
        object* (the ``broadcast`` idiom), its bit size is computed once
        instead of once per neighbor.  Raises ``ValueError`` for a
        non-neighbor target and :class:`BandwidthExceededError` on aggregate
        overload.
        """
        topology = self.topology
        route_get = topology.routes[sender_index].get
        sender_label = topology.labels[sender_index]
        if self._slot_bits is None:
            self._ensure_slot_state()
        slot_bits = self._slot_bits
        touched_slots = self._touched_slots
        inbox_table = self.inbox_table
        touched_inboxes = self._touched_inboxes
        pool = self._pool
        edge_counts = self.edge_message_counts
        enforce = self.enforce
        bandwidth = self.bandwidth_bits
        # Slot position within the route triple: 1 = edge index (half duplex,
        # both directions share the budget), 2 = precomputed directed slot.
        slot_position = 1 if self.half_duplex else 2
        messages = 0
        bits_total = 0
        last_payload = _UNSET
        last_bits = 0
        for neighbor, payload in outbox.items():
            if payload is Ellipsis:
                continue
            target = route_get(neighbor)
            if target is None:
                raise ValueError(
                    f"node {sender_label!r} attempted to send to "
                    f"non-neighbor {neighbor!r}")
            receiver_index = target[0]
            edge_index = target[1]
            if payload is not last_payload:
                last_bits = message_bits(payload)
                last_payload = payload
            slot = target[slot_position]
            load = slot_bits[slot] + last_bits
            if load == last_bits:
                touched_slots.append(slot)
            slot_bits[slot] = load
            if enforce and load > bandwidth:
                self._flush_counts(messages, bits_total)
                raise self._bandwidth_error(sender_label, receiver_index,
                                            last_bits, load)
            box = inbox_table[receiver_index]
            if box is None:
                box = pool.pop() if pool else {}
                inbox_table[receiver_index] = box
                touched_inboxes.append(receiver_index)
            box[sender_label] = payload
            edge_counts[edge_index] += 1
            messages += 1
            bits_total += last_bits
            if observers:
                for observer in observers:
                    observer.on_message(round_number, sender_label, neighbor,
                                        payload, last_bits, edge_index)
        self._flush_counts(messages, bits_total)

    def deposit_broadcast(self, sender_index: int, payload: Any,
                          round_number: int = 0, observers: tuple = ()) -> None:
        """Route one payload to *every* neighbor of ``sender_index``.

        The fast path for pristine :class:`~repro.congest.message.Broadcast`
        outboxes: the bit size is computed once and the messages are routed
        over the topology's precomputed neighbor row, with no per-message
        route lookup.  Semantics are identical to a :meth:`deposit_outbox`
        whose entries all carry ``payload``.

        In full-duplex mode a single broadcast puts exactly one message on
        each directed edge slot, so the aggregate bandwidth check reduces to
        the (hoisted) single-message check and per-slot accounting is
        skipped entirely.  The slow path -- with full slot accounting -- is
        taken in half-duplex mode (the reverse direction shares the budget),
        on instrumented runs (``profile_slots`` / message observers, which
        need per-slot loads in the round profile), and whenever this sender
        already deposited anything this round -- bulk or message-level, both
        stamp the sender -- so earlier load on its slots is always seen.
        Only the reverse interleaving (:meth:`deposit` *after* a fast-path
        bulk deposit by the same sender in the same round) is unsupported;
        the engines never do this -- use :meth:`deposit` throughout for such
        traffic patterns.
        """
        topology = self.topology
        triples = topology.broadcast_routes[sender_index]
        if not triples:
            return
        sender_label = topology.labels[sender_index]
        bits = message_bits(payload)
        if self._slot_bits is None:
            self._ensure_slot_state()
        if not (self.half_duplex or observers or self.profile_slots
                or self._bulk_stamps[sender_index] == self._round_token):
            self._bulk_stamps[sender_index] = self._round_token
            if self.enforce and bits > self.bandwidth_bits:
                raise self._bandwidth_error(sender_label, triples[0][0],
                                            bits, bits)
            inbox_table = self.inbox_table
            touched_inboxes = self._touched_inboxes
            pool = self._pool
            edge_counts = self.edge_message_counts
            receiver_row, edge_row = topology.broadcast_rows[sender_index]
            for receiver_index, edge_index in zip(receiver_row, edge_row):
                box = inbox_table[receiver_index]
                if box is None:
                    box = pool.pop() if pool else {}
                    inbox_table[receiver_index] = box
                    touched_inboxes.append(receiver_index)
                box[sender_label] = payload
                edge_counts[edge_index] += 1
            count = len(receiver_row)
            self._flush_counts(count, count * bits)
            return
        slot_bits = self._slot_bits
        touched_slots = self._touched_slots
        inbox_table = self.inbox_table
        touched_inboxes = self._touched_inboxes
        pool = self._pool
        edge_counts = self.edge_message_counts
        enforce = self.enforce
        bandwidth = self.bandwidth_bits
        slot_position = 1 if self.half_duplex else 2
        messages = 0
        neighbor_labels = (topology.neighbor_labels[sender_index]
                           if observers else ())
        for target in triples:
            receiver_index = target[0]
            edge_index = target[1]
            slot = target[slot_position]
            load = slot_bits[slot] + bits
            if load == bits:
                touched_slots.append(slot)
            slot_bits[slot] = load
            if enforce and load > bandwidth:
                self._flush_counts(messages, messages * bits)
                raise self._bandwidth_error(sender_label, receiver_index,
                                            bits, load)
            box = inbox_table[receiver_index]
            if box is None:
                box = pool.pop() if pool else {}
                inbox_table[receiver_index] = box
                touched_inboxes.append(receiver_index)
            box[sender_label] = payload
            edge_counts[edge_index] += 1
            messages += 1
            if observers:
                neighbor = neighbor_labels[messages - 1]
                for observer in observers:
                    observer.on_message(round_number, sender_label, neighbor,
                                        payload, bits, edge_index)
        self._flush_counts(messages, messages * bits)

    def _flush_counts(self, messages: int, bits: int) -> None:
        self.total_messages += messages
        self.total_bits += bits
        self.round_messages += messages
        self.round_bits += bits

    def absorb_aggregates(self, messages: int, bits: int,
                          edge_message_counts) -> None:
        """Fold externally-computed traffic into the run-level accountants.

        The array-engine escape hatch: an engine that routes whole rounds as
        batched array operations (no per-message :meth:`deposit` calls)
        still reports its traffic through the transport, so
        ``total_messages`` / ``total_bits`` / per-edge congestion -- and
        everything downstream of them (:class:`~repro.congest.simulator.
        SimulationResult`, ``edge_counts_by_label``) -- stay the single
        source of truth regardless of the engine.  ``edge_message_counts``
        is an iterable of per-edge message counts aligned with the
        topology's canonical edge indices.
        """
        self.total_messages += int(messages)
        self.total_bits += int(bits)
        counts = self.edge_message_counts
        for edge, count in enumerate(edge_message_counts):
            if count:
                counts[edge] += int(count)

    def _bandwidth_error(self, sender_label: Node, receiver_index: int,
                         bits: int, load: int) -> BandwidthExceededError:
        receiver_label = self.topology.labels[receiver_index]
        return BandwidthExceededError(
            f"aggregate load of {load} bits on edge "
            f"{sender_label!r}-{receiver_label!r} (last message: {bits} bits "
            f"from {sender_label!r}) exceeds the per-round bandwidth of "
            f"{self.bandwidth_bits} bits")

    # ----------------------------------------------------------- receiving
    def inbox(self, receiver_index: int) -> Mapping[Node, Any]:
        """The inbox of node ``receiver_index`` for the current round.

        The returned mapping is owned by the transport and recycled after the
        round: it is valid only for the duration of ``receive``.
        """
        box = self.inbox_table[receiver_index]
        return EMPTY_INBOX if box is None else box

    # ------------------------------------------------------------ lifecycle
    def round_profile(self) -> RoundProfile:
        """Aggregates for the round in flight (call before :meth:`end_round`)."""
        max_bits = 0
        busiest: int | None = None
        slot_bits = self._slot_bits
        for slot in self._touched_slots:
            bits = slot_bits[slot]
            if bits > max_bits:
                max_bits = bits
                busiest = slot if self.half_duplex else slot // 2
        return RoundProfile(messages=self.round_messages, bits=self.round_bits,
                            max_edge_bits=max_bits, busiest_edge=busiest)

    def end_round(self) -> None:
        """Reset per-round state: recycle inboxes, zero edge loads."""
        slot_bits = self._slot_bits
        for slot in self._touched_slots:
            slot_bits[slot] = 0
        self._touched_slots.clear()
        inbox_table = self.inbox_table
        pool = self._pool
        for index in self._touched_inboxes:
            box = inbox_table[index]
            if box is not None:
                box.clear()
                pool.append(box)
                inbox_table[index] = None
        self._touched_inboxes.clear()
        self.round_messages = 0
        self.round_bits = 0
        self._round_token += 1

    # -------------------------------------------------------------- results
    def edge_counts_by_label(self) -> dict[tuple[Node, Node], int]:
        """Per-edge message counts keyed by canonical label pairs."""
        edge_labels = self.topology.edge_labels
        return {pair: count
                for pair, count in zip(edge_labels, self.edge_message_counts)
                if count}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"Transport(bandwidth={self.bandwidth_bits}, "
                f"messages={self.total_messages}, bits={self.total_bits})")

"""Per-node algorithm interface for the message-passing simulator.

Algorithms for the simulator are written as subclasses of
:class:`NodeAlgorithm`.  One instance is created per node; the scheduler
drives all instances in lockstep through synchronous rounds:

1. :meth:`NodeAlgorithm.initialize` is called once before round 1;
2. every round, :meth:`NodeAlgorithm.send` produces the outgoing messages
   (a mapping ``neighbor -> payload``) based purely on local state;
3. the scheduler delivers messages and calls :meth:`NodeAlgorithm.receive`
   with the inbox (a mapping ``neighbor -> payload``);
4. a node may declare itself finished by calling :meth:`halt`; the simulation
   stops when every node has halted (or a round limit is hit).

Local computation is unbounded, exactly as in the CONGEST model; only
communication is restricted (the scheduler enforces per-edge bandwidth).
"""

from __future__ import annotations

import random
from typing import Any, Hashable, Mapping

from repro.congest.message import Broadcast

Node = Hashable

__all__ = ["NodeAlgorithm"]


class NodeAlgorithm:
    """Base class for per-node CONGEST algorithms.

    Subclasses typically override :meth:`initialize`, :meth:`send` and
    :meth:`receive`.  The attributes below are populated by the simulator
    before :meth:`initialize` runs:

    ``node``
        this node's graph label;
    ``node_id``
        this node's unique O(log n)-bit identifier;
    ``neighbors``
        tuple of neighboring graph labels;
    ``neighbor_ids``
        mapping ``neighbor -> identifier`` (knowledge of the IDs of one's
        neighbors after a single round is standard; algorithms that must not
        rely on it simply ignore the attribute);
    ``n``
        the number of nodes (global knowledge of ``n`` -- standard in the
        paper's algorithms);
    ``rng``
        a per-node :class:`random.Random` seeded from the simulation seed and
        the node ID, so randomized algorithms are reproducible.
    """

    def __init__(self) -> None:
        self.node: Node = None
        self.node_id: int = -1
        self.neighbors: tuple[Node, ...] = ()
        self.neighbor_ids = {}
        self.n: int = 0
        self.rng = None  # type: ignore[assignment]
        self._halted = False
        self.output: Any = None
        #: Set by the layered simulator at bind time: its transport routes
        #: pristine broadcasts without reading the outbox dict, so the dict
        #: fill can be deferred (and usually skipped).  Schedulers that
        #: iterate outboxes entry by entry leave this off and get an eagerly
        #: filled mapping.
        self._lazy_broadcast = False

    # ------------------------------------------------------------ lifecycle
    def initialize(self) -> None:
        """Called once before the first round."""

    def send(self, round_number: int) -> Mapping[Node, Any]:
        """Return the messages to send this round (``neighbor -> payload``).

        Returning an empty mapping (the default) sends nothing.  A payload of
        ``...`` (Ellipsis) broadcasts nothing; use ``None`` for a 1-bit beep.
        """
        return {}

    def receive(self, round_number: int, inbox: Mapping[Node, Any]) -> None:
        """Process the messages received this round.

        ``inbox`` is owned by the runtime's transport layer and recycled
        between rounds: it is only valid for the duration of this call.
        Copy it (``dict(inbox)``) before storing it on ``self``.
        """

    def finalize(self) -> None:
        """Called once after the simulation stops."""

    # --------------------------------------------------------------- control
    def halt(self, output: Any = None) -> None:
        """Mark this node as finished (optionally recording its output)."""
        self._halted = True
        if output is not None:
            self.output = output

    @property
    def halted(self) -> bool:
        return self._halted

    # --------------------------------------------------------- lazy bindings
    # The simulator binds ``rng`` and ``neighbor_ids`` lazily: the RNG stream
    # is a pure function of the stored seed string and the neighbor-ID table
    # a pure function of the topology row, so first-access construction is
    # bit-identical to eager binding -- and the vector/batch backends, which
    # read IDs straight from the topology arrays, never pay for either.

    @property
    def rng(self) -> "random.Random | None":
        rng = self._rng
        if rng is None and self._rng_seed is not None:
            rng = self._rng = random.Random(self._rng_seed)
        return rng

    @rng.setter
    def rng(self, value) -> None:
        self._rng = value
        self._rng_seed: str | None = None

    @property
    def neighbor_ids(self) -> dict[Node, int]:
        ids = self._neighbor_ids
        if ids is None:
            topology, index = self._id_binding
            congest_ids = topology.congest_ids
            route = topology.routes[index]
            ids = self._neighbor_ids = {
                nbr: congest_ids[route[nbr][0]]
                for nbr in topology.neighbor_labels[index]}
        return ids

    @neighbor_ids.setter
    def neighbor_ids(self, value) -> None:
        self._neighbor_ids = value
        self._id_binding: "tuple[Any, int] | None" = None

    # -------------------------------------------------------------- helpers
    def broadcast(self, payload: Any) -> dict[Node, Any]:
        """Convenience: the same payload to every neighbor.

        Returns a :class:`~repro.congest.message.Broadcast` (a dict
        subclass), which the transport layer routes over the precomputed
        neighbor row instead of resolving each entry individually.
        """
        return Broadcast(self.neighbors, payload, lazy=self._lazy_broadcast)

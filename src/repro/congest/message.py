"""Messages and bit-size accounting for the CONGEST simulator.

CONGEST restricts every message to ``O(log n)`` bits.  The simulator measures
message sizes explicitly so that experiments can (a) verify that algorithms
respect the bandwidth and (b) report congestion (messages per edge) for the
Figure-1 experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Hashable

Node = Hashable

__all__ = ["DEFAULT_BANDWIDTH_BITS", "Message", "id_bits", "message_bits"]

#: Default bandwidth: Theta(log n) bits with a comfortable constant.  The
#: simulator scales this with the actual network size (see
#: :class:`repro.congest.network.CongestNetwork`).
DEFAULT_BANDWIDTH_BITS = 64


def id_bits(n: int) -> int:
    """Number of bits of a unique identifier in an ``n``-node network."""
    return max(1, math.ceil(math.log2(max(2, n))))


def message_bits(payload: Any) -> int:
    """Conservative bit-size estimate of a message payload.

    The estimate only needs to be *consistent* (the same payload always costs
    the same) and of the right order of magnitude:

    * ``None`` / booleans cost 1 bit (a beep);
    * integers cost their binary length;
    * floats cost 32 bits (algorithms only send O(log n)-bit precision
      values; the paper's algorithms never send real numbers wider than
      that);
    * strings cost 8 bits per character;
    * tuples / lists / sets / dicts cost the sum of their items.
    """
    if payload is None or isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, payload.bit_length()) + 1  # + sign bit
    if isinstance(payload, float):
        return 32
    if isinstance(payload, str):
        return 8 * max(1, len(payload))
    if isinstance(payload, (tuple, list, set, frozenset)):
        return sum(message_bits(item) for item in payload) + 1
    if isinstance(payload, dict):
        return sum(message_bits(k) + message_bits(v) for k, v in payload.items()) + 1
    # Fallback: repr length in bytes.
    return 8 * max(1, len(repr(payload)))


@dataclass(frozen=True)
class Message:
    """A single CONGEST message.

    Attributes
    ----------
    sender, receiver:
        Node identifiers (graph nodes, not CONGEST IDs).
    payload:
        Arbitrary (picklable) content.  Its size in bits is computed by
        :func:`message_bits` unless ``size_override`` is given.
    size_override:
        Explicit size in bits; used when a payload is a compact encoding
        whose Python representation is larger than its bit content.
    """

    sender: Node
    receiver: Node
    payload: Any
    size_override: int | None = field(default=None, compare=False)

    @property
    def size_bits(self) -> int:
        if self.size_override is not None:
            return self.size_override
        return message_bits(self.payload)

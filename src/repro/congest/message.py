"""Messages and bit-size accounting for the CONGEST simulator.

CONGEST restricts every message to ``O(log n)`` bits.  The simulator measures
message sizes explicitly so that experiments can (a) verify that algorithms
respect the bandwidth and (b) report congestion (messages per edge) for the
Figure-1 experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import repeat
from typing import Any, Hashable

Node = Hashable

__all__ = ["Broadcast", "DEFAULT_BANDWIDTH_BITS", "Message", "id_bits",
           "message_bits"]

#: Default bandwidth: Theta(log n) bits with a comfortable constant.  The
#: simulator scales this with the actual network size (see
#: :class:`repro.congest.network.CongestNetwork`).
DEFAULT_BANDWIDTH_BITS = 64


def id_bits(n: int) -> int:
    """Number of bits of a unique identifier in an ``n``-node network."""
    return max(1, math.ceil(math.log2(max(2, n))))


def message_bits(payload: Any) -> int:
    """Conservative bit-size estimate of a message payload.

    The estimate only needs to be *consistent* (the same payload always costs
    the same) and of the right order of magnitude:

    * ``None`` / booleans cost 1 bit (a beep);
    * integers cost their binary length;
    * floats cost 32 bits (algorithms only send O(log n)-bit precision
      values; the paper's algorithms never send real numbers wider than
      that);
    * strings cost 8 bits per character;
    * tuples / lists / sets / dicts cost the sum of their items.
    """
    if payload is None or isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, payload.bit_length()) + 1  # + sign bit
    if isinstance(payload, float):
        return 32
    if isinstance(payload, str):
        return 8 * max(1, len(payload))
    if isinstance(payload, (tuple, list, set, frozenset)):
        return sum(message_bits(item) for item in payload) + 1
    if isinstance(payload, dict):
        return sum(message_bits(k) + message_bits(v) for k, v in payload.items()) + 1
    # Fallback: repr length in bytes.
    return 8 * max(1, len(repr(payload)))


class Broadcast(dict):
    """An outbox that sends the same payload to every neighbor.

    :meth:`NodeAlgorithm.broadcast` returns this instead of a plain dict.  It
    *is* a dict (``neighbor -> payload``), so any consumer that iterates
    outboxes works unchanged; but the layered transport recognises a pristine
    ``Broadcast`` and routes it over the topology snapshot's precomputed
    neighbor row -- one bit-size computation, no per-message route lookup and
    (in the ``lazy`` mode the layered simulator enables) no dict fill at all.

    In lazy mode the entries are materialised on first access through the
    mapping API; always go through that API -- C-level shortcuts that read
    the raw dict storage of a *lazy, untouched* instance (``dict(b)``,
    ``{**b}``) would see an empty mapping.  The engines and every algorithm
    in this repository only use the mapping API.

    The engines take the fast path only while ``_neighbors`` is still the
    simulator-bound neighbor row (an identity check); any mutation
    materialises the entries and clears it, so a modified or subset
    broadcast always falls back to the generic per-entry path and can never
    be misdelivered.
    """

    __slots__ = ("payload", "_neighbors")

    def __init__(self, neighbors: Any, payload: Any, *, lazy: bool = False) -> None:
        if lazy:
            dict.__init__(self)
            # Kept as the *original* tuple: the engine's fast path requires
            # identity with the simulator-bound neighbor row, so a Broadcast
            # over a subset or copy always routes entry by entry.
            self._neighbors = neighbors if isinstance(neighbors, tuple) \
                else tuple(neighbors)
        else:
            dict.__init__(self, zip(neighbors, repeat(payload)))
            self._neighbors = None
        self.payload = payload

    def _fill(self) -> None:
        if self._neighbors is not None:
            dict.update(self, zip(self._neighbors, repeat(self.payload)))
            self._neighbors = None

    # ------------------------------------------------------------- reading
    def __bool__(self) -> bool:
        if self._neighbors is not None:
            return bool(self._neighbors)
        return dict.__len__(self) > 0

    def __len__(self) -> int:
        self._fill()
        return dict.__len__(self)

    def __iter__(self) -> Any:
        self._fill()
        return dict.__iter__(self)

    def __contains__(self, key: Any) -> bool:
        self._fill()
        return dict.__contains__(self, key)

    def __getitem__(self, key: Any) -> Any:
        self._fill()
        return dict.__getitem__(self, key)

    def get(self, key: Any, default: Any = None) -> Any:
        self._fill()
        return dict.get(self, key, default)

    def keys(self) -> Any:
        self._fill()
        return dict.keys(self)

    def values(self) -> Any:
        self._fill()
        return dict.values(self)

    def items(self) -> Any:
        self._fill()
        return dict.items(self)

    def __eq__(self, other: Any) -> bool:
        self._fill()
        return dict.__eq__(self, other)

    def __ne__(self, other: Any) -> bool:
        self._fill()
        return dict.__ne__(self, other)

    def __or__(self, other: Any) -> dict:
        self._fill()
        return dict(dict.items(self)) | other

    def __ror__(self, other: Any) -> dict:
        self._fill()
        return other | dict(dict.items(self))

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        self._fill()
        return dict.__repr__(self)

    def copy(self) -> dict:
        self._fill()
        return dict(dict.items(self))

    # ------------------------------------------------------------ mutating
    def __setitem__(self, key: Any, value: Any) -> None:
        self._fill()
        dict.__setitem__(self, key, value)

    def __delitem__(self, key: Any) -> None:
        self._fill()
        dict.__delitem__(self, key)

    def update(self, *args: Any, **kwargs: Any) -> None:
        self._fill()
        dict.update(self, *args, **kwargs)

    def __ior__(self, other: Any) -> "Broadcast":
        # dict.__ior__ mutates the C storage directly; fill first so the
        # fast-path invariant (_neighbors cleared on mutation) holds.
        self._fill()
        dict.update(self, other)
        return self

    def pop(self, *args: Any) -> Any:
        self._fill()
        return dict.pop(self, *args)

    def popitem(self) -> tuple[Any, Any]:
        self._fill()
        return dict.popitem(self)

    def setdefault(self, key: Any, default: Any = None) -> Any:
        self._fill()
        return dict.setdefault(self, key, default)

    def clear(self) -> None:
        self._neighbors = None
        dict.clear(self)


@dataclass(frozen=True)
class Message:
    """A single CONGEST message.

    Attributes
    ----------
    sender, receiver:
        Node identifiers (graph nodes, not CONGEST IDs).
    payload:
        Arbitrary (picklable) content.  Its size in bits is computed by
        :func:`message_bits` unless ``size_override`` is given.
    size_override:
        Explicit size in bits; used when a payload is a compact encoding
        whose Python representation is larger than its bit content.
    """

    sender: Node
    receiver: Node
    payload: Any
    size_override: int | None = field(default=None, compare=False)

    @property
    def size_bits(self) -> int:
        if self.size_override is not None:
            return self.size_override
        return message_bits(self.payload)

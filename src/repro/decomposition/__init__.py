"""Network decompositions with separation, and distance-k ball graphs.

The paper uses two clustering tools as subroutines:

* a weak-diameter **network decomposition** of ``G^k`` -- i.e. a partition of
  the nodes into low-diameter clusters colored with few colors such that
  same-colored clusters are more than ``k`` hops apart (Definition 2.1,
  Theorem A.1).  It powers the diameter-free sparsification (Lemma 5.8) and
  the post-shattering phase of the randomized algorithms.
* **distance-k ball graphs** (Lemma 8.3): given a partition of the undecided
  nodes into balls around ruling-set nodes, the balls are extended by
  disjoint borders so that the resulting virtual graph preserves distance-k
  adjacency; a network decomposition of the ball graph then induces one of
  ``G^k`` (Claim 8.4).
"""

from repro.decomposition.ball_graph import BallGraph, form_distance_k_ball_graph
from repro.decomposition.network_decomposition import (
    Cluster,
    NetworkDecomposition,
    network_decomposition,
)

__all__ = [
    "BallGraph",
    "Cluster",
    "NetworkDecomposition",
    "form_distance_k_ball_graph",
    "network_decomposition",
]

"""Distance-k ball graphs (Lemma 8.3, Claim 8.4 and Claim 7.6's bookkeeping).

In the post-shattering phase the undecided nodes ``B`` are partitioned into
balls around the nodes of a ruling set ``R``.  The *ball graph* has vertex
set ``R`` and an edge whenever two balls are adjacent in ``G``.  For the
power-graph algorithm a plain ball graph is not enough: two balls may be
within distance ``k`` of each other in ``G`` while being far apart in the
ball graph.  Lemma 8.3 fixes this by growing disjoint *borders* of radius
``k`` around the balls out of the decided nodes, which guarantees that
``dist_G(Ball(v), Ball(w)) <= k`` implies ``dist_B(v, w) <= k`` -- the
*distance-k ball graph* property.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Mapping

import networkx as nx

from repro.congest.cost import RoundLedger
from repro.graphs.power import bounded_bfs

Node = Hashable

__all__ = ["BallGraph", "form_distance_k_ball_graph"]


@dataclass
class BallGraph:
    """A (distance-k) ball graph over the ruling set ``R``.

    Attributes
    ----------
    centers:
        The ruling-set nodes ``R`` (the vertices of the virtual graph).
    balls:
        The original partition ``Ball(v) ⊆ B``.
    extended_balls:
        ``Ball+(v) = Ball(v) ∪ Border(v)`` (pairwise disjoint).
    graph:
        The virtual graph on ``centers``: an edge whenever two extended balls
        are adjacent in ``G``.
    k:
        The distance parameter the construction was run with.
    """

    centers: set[Node]
    balls: dict[Node, set[Node]]
    extended_balls: dict[Node, set[Node]]
    graph: nx.Graph
    k: int
    ball_of_node: dict[Node, Node] = field(default_factory=dict)

    def center_of(self, node: Node) -> Node | None:
        """The center whose extended ball contains ``node`` (None if unassigned)."""
        return self.ball_of_node.get(node)

    def weak_diameter(self, base_graph: nx.Graph) -> int:
        """Max over balls of the eccentricity of the center within ``Ball+`` (in G)."""
        worst = 0
        for center, members in self.extended_balls.items():
            distances = bounded_bfs(base_graph, center, base_graph.number_of_nodes())
            worst = max(worst, max((distances.get(node, 0) for node in members), default=0))
        return worst

    def validate(self, base_graph: nx.Graph) -> None:
        """Assert the Lemma 8.3 guarantees."""
        # Extended balls are disjoint and contain the original balls.
        seen: set[Node] = set()
        for center in self.centers:
            extended = self.extended_balls[center]
            assert self.balls[center] <= extended, f"ball of {center} not contained in Ball+"
            overlap = seen & extended
            assert not overlap, f"extended balls overlap on {overlap}"
            seen |= extended
        # Distance-k property: close original balls are close in the ball graph.
        centers = sorted(self.centers, key=str)
        for i, v in enumerate(centers):
            reach = set()
            for node in self.balls[v]:
                reach |= set(bounded_bfs(base_graph, node, self.k))
            for w in centers[i + 1:]:
                if reach & self.balls[w]:
                    length = nx.shortest_path_length(self.graph, v, w) \
                        if nx.has_path(self.graph, v, w) else None
                    assert length is not None and length <= self.k, (
                        f"balls of {v} and {w} are within distance {self.k} in G but "
                        f"{length} apart in the ball graph")


def form_distance_k_ball_graph(graph: nx.Graph,
                               balls: Mapping[Node, set[Node]],
                               k: int, *,
                               node_ids: Mapping[Node, int] | None = None,
                               undecided: set[Node] | None = None,
                               ledger: RoundLedger | None = None,
                               ) -> BallGraph:
    """Lemma 8.3: extend the balls with disjoint radius-``k`` borders.

    Parameters
    ----------
    graph:
        The communication graph ``G``.
    balls:
        Partition of the undecided nodes: ``center -> Ball(center)``.  Every
        center must be contained in its own ball.
    k:
        Border radius (the power of the target problem).
    node_ids:
        IDs used to break ties when several searches reach a border node in
        the same BFS round (the paper: "accepts the one with the smallest
        identifier").
    undecided:
        The set ``B`` of undecided nodes.  Border candidates are restricted
        to ``V \\ B`` (the paper: "borders only consist of nodes in V \\ B").
        Defaults to the union of the balls.
    ledger:
        Charged ``O(k)`` rounds (the parallel BFS of the lemma).
    """
    ledger = ledger if ledger is not None else RoundLedger()
    if node_ids is None:
        node_ids = {node: index + 1 for index, node in enumerate(sorted(graph.nodes(), key=str))}
    balls = {center: set(members) for center, members in balls.items()}
    for center, members in balls.items():
        if center not in members:
            raise ValueError(f"center {center!r} missing from its own ball")
    if undecided is None:
        undecided = set().union(*balls.values()) if balls else set()
    undecided = set(undecided)

    # Synchronous parallel BFS for k rounds.  A decided node adopts the first
    # search that reaches it (smallest center ID on ties) and keeps
    # forwarding it; undecided nodes neither join borders nor forward.
    assignment: dict[Node, Node] = {}
    for center, members in balls.items():
        for node in members:
            assignment[node] = center

    frontier: dict[Node, Node] = {}
    for center, members in balls.items():
        for node in members:
            frontier[node] = center

    borders: dict[Node, set[Node]] = {center: set() for center in balls}
    for _ in range(max(0, k)):
        proposals: dict[Node, Node] = {}
        for node, center in frontier.items():
            for neighbor in graph.neighbors(node):
                if neighbor in assignment or neighbor in undecided:
                    continue
                incumbent = proposals.get(neighbor)
                if incumbent is None or node_ids[center] < node_ids[incumbent]:
                    proposals[neighbor] = center
        frontier = {}
        for node, center in proposals.items():
            assignment[node] = center
            borders[center].add(node)
            frontier[node] = center
        if not frontier:
            break
    ledger.charge_flooding(max(1, k), label="ball-borders")

    extended = {center: balls[center] | borders[center] for center in balls}

    # The ball graph: an edge between two centers whenever their extended
    # balls are adjacent in G.
    ball_graph = nx.Graph()
    ball_graph.add_nodes_from(balls)
    membership = {node: center for center, members in extended.items() for node in members}
    for u, v in graph.edges():
        cu = membership.get(u)
        cv = membership.get(v)
        if cu is not None and cv is not None and cu != cv:
            ball_graph.add_edge(cu, cv)

    return BallGraph(centers=set(balls), balls=balls, extended_balls=extended,
                     graph=ball_graph, k=k, ball_of_node=membership)

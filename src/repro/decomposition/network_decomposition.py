"""Weak-diameter network decomposition with cluster separation (Theorem A.1).

The paper adapts the deterministic decomposition of GGH+22 to power graphs:
``~O(k log^3 n)`` rounds for ``O(log n log log n)`` colors, weak diameter
``O(k log n)`` and separation ``2k + 1``.  Re-implementing GGH+22 verbatim
(delay derandomization, frontier counting, Steiner congestion bookkeeping)
is out of scope for a Python simulation; instead we build the decomposition
from the classic exponential-delay clustering of Miller-Peng-Xu (MPX) --
which gives weak-diameter ``O(log n / beta)`` clusters -- followed by a
greedy coloring of the cluster conflict graph at distance ``separation``.
The decomposition's *guarantees* (coverage, disjointness, separation,
diameter) are verified at runtime by :meth:`NetworkDecomposition.validate`,
and the round cost charged to the ledger follows Theorem A.1's
``~O(k log^3 n)`` formula (see DESIGN.md, substitution 3).
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass, field
from typing import Hashable, Iterable

import networkx as nx

from repro.congest.cost import RoundLedger
from repro.graphs.power import bounded_bfs

Node = Hashable

__all__ = ["Cluster", "NetworkDecomposition", "network_decomposition"]


@dataclass
class Cluster:
    """One cluster of a network decomposition.

    ``steiner_parent`` maps every cluster node to its parent on the shortest
    path (in ``G``) towards the center -- the Steiner tree of the cluster;
    parents may lie outside the cluster (weak diameter).
    """

    index: int
    center: Node
    nodes: set[Node]
    color: int = -1
    radius: int = 0
    steiner_parent: dict[Node, Node | None] = field(default_factory=dict)

    def steiner_nodes(self) -> set[Node]:
        """All nodes on the Steiner paths (terminals plus relay nodes)."""
        nodes = set(self.nodes)
        for node in self.nodes:
            current = node
            while current is not None and current != self.center:
                parent = self.steiner_parent.get(current)
                if parent is None:
                    break
                nodes.add(parent)
                current = parent
        return nodes

    def steiner_edges(self) -> set[tuple[Node, Node]]:
        edges: set[tuple[Node, Node]] = set()
        for node in self.nodes:
            current = node
            while current is not None and current != self.center:
                parent = self.steiner_parent.get(current)
                if parent is None:
                    break
                edge = (current, parent) if str(current) <= str(parent) else (parent, current)
                edges.add(edge)
                current = parent
        return edges


@dataclass
class NetworkDecomposition:
    """A ``(c, d)``-network decomposition with separation."""

    clusters: list[Cluster]
    separation: int
    num_colors: int
    cluster_of_node: dict[Node, int] = field(default_factory=dict)

    def clusters_of_color(self, color: int) -> list[Cluster]:
        return [cluster for cluster in self.clusters if cluster.color == color]

    def cluster_of(self, node: Node) -> Cluster | None:
        index = self.cluster_of_node.get(node)
        return None if index is None else self.clusters[index]

    @property
    def max_weak_diameter(self) -> int:
        return max((2 * cluster.radius for cluster in self.clusters), default=0)

    def steiner_congestion(self) -> int:
        """Max number of same-color Steiner trees sharing one edge."""
        worst = 0
        for color in range(self.num_colors):
            load: dict[tuple[Node, Node], int] = {}
            for cluster in self.clusters_of_color(color):
                for edge in cluster.steiner_edges():
                    load[edge] = load.get(edge, 0) + 1
            if load:
                worst = max(worst, max(load.values()))
        return max(1, worst)

    def validate(self, graph: nx.Graph, covered: Iterable[Node] | None = None) -> None:
        """Assert coverage, disjointness, separation and weak-diameter sanity."""
        covered_nodes = set(graph.nodes()) if covered is None else set(covered)
        seen: set[Node] = set()
        for cluster in self.clusters:
            overlap = seen & cluster.nodes
            assert not overlap, f"clusters overlap on {overlap}"
            seen |= cluster.nodes
        missing = covered_nodes - seen
        assert not missing, f"{len(missing)} nodes not clustered"

        # Weak diameter: every node is within 2 * radius of every other via the center.
        for cluster in self.clusters:
            distances = bounded_bfs(graph, cluster.center, cluster.radius)
            for node in cluster.nodes:
                assert node in distances, (
                    f"cluster {cluster.index}: node {node} farther than radius "
                    f"{cluster.radius} from center {cluster.center}")

        # Separation between same-colored clusters.
        for color in range(self.num_colors):
            same_color = self.clusters_of_color(color)
            membership: dict[Node, int] = {}
            for cluster in same_color:
                for node in cluster.nodes:
                    membership[node] = cluster.index
            for cluster in same_color:
                for node in cluster.nodes:
                    reach = bounded_bfs(graph, node, self.separation - 1)
                    for other, dist in reach.items():
                        if other == node or dist == 0:
                            continue
                        other_cluster = membership.get(other)
                        if other_cluster is not None and other_cluster != cluster.index:
                            raise AssertionError(
                                f"clusters {cluster.index} and {other_cluster} of color {color} "
                                f"are only {dist} < {self.separation} apart")


def _exponential_delay_clustering(graph: nx.Graph, nodes: set[Node], beta: float,
                                  rng: random.Random) -> list[Cluster]:
    """One MPX-style clustering pass over ``nodes``.

    Every node draws a delay ``delta_v ~ Exp(beta)``; conceptually node ``u``
    starts a BFS at time ``-delta_u`` and every node joins the first BFS that
    reaches it.  Implemented as a Dijkstra over start times.  Distances are
    measured in ``G`` (weak diameter) but only ``nodes`` become cluster
    members; other nodes may relay (appear on Steiner paths).
    """
    if not nodes:
        return []
    delays = {node: rng.expovariate(beta) for node in nodes}
    best_time: dict[Node, float] = {}
    owner: dict[Node, Node] = {}
    parent: dict[Node, Node | None] = {}
    heap: list[tuple[float, int, Node, Node, Node | None]] = []
    for index, node in enumerate(sorted(nodes, key=str)):
        heapq.heappush(heap, (-delays[node], index, node, node, None))

    counter = len(nodes)
    while heap:
        time, _, node, center, via = heapq.heappop(heap)
        if node in best_time:
            continue
        best_time[node] = time
        owner[node] = center
        parent[node] = via
        for neighbor in graph.neighbors(node):
            if neighbor not in best_time:
                counter += 1
                heapq.heappush(heap, (time + 1.0, counter, neighbor, center, node))

    clusters: list[Cluster] = []
    centers = sorted({owner[node] for node in nodes}, key=str)
    center_index = {center: i for i, center in enumerate(centers)}
    members: dict[Node, set[Node]] = {center: set() for center in centers}
    for node in nodes:
        members[owner[node]].add(node)
    for center in centers:
        cluster_nodes = members[center]
        cluster_parent = {node: parent[node] for node in cluster_nodes}
        # Radius in G: distance from center to the farthest member.
        distances = bounded_bfs(graph, center, graph.number_of_nodes())
        radius = max((distances.get(node, 0) for node in cluster_nodes), default=0)
        clusters.append(Cluster(index=center_index[center], center=center,
                                nodes=cluster_nodes, radius=radius,
                                steiner_parent=cluster_parent))
    return clusters


def _color_clusters(graph: nx.Graph, clusters: list[Cluster], separation: int) -> int:
    """Greedy-color the cluster conflict graph at distance ``separation - 1``.

    Two clusters conflict when some pair of their nodes is at distance at
    most ``separation - 1`` in ``G``; such clusters must receive different
    colors so that same-colored clusters are at least ``separation`` apart.
    Returns the number of colors used.
    """
    membership: dict[Node, int] = {}
    for cluster in clusters:
        for node in cluster.nodes:
            membership[node] = cluster.index
    by_index = {cluster.index: cluster for cluster in clusters}

    conflicts: dict[int, set[int]] = {cluster.index: set() for cluster in clusters}
    for cluster in clusters:
        for node in cluster.nodes:
            reach = bounded_bfs(graph, node, separation - 1)
            for other, dist in reach.items():
                other_cluster = membership.get(other)
                if other_cluster is not None and other_cluster != cluster.index:
                    conflicts[cluster.index].add(other_cluster)
                    conflicts[other_cluster].add(cluster.index)

    order = sorted(conflicts, key=lambda index: -len(conflicts[index]))
    for index in order:
        used = {by_index[neighbor].color for neighbor in conflicts[index]
                if by_index[neighbor].color >= 0}
        color = 0
        while color in used:
            color += 1
        by_index[index].color = color
    return max((cluster.color for cluster in clusters), default=-1) + 1


def network_decomposition(graph: nx.Graph, *, separation: int = 2,
                          nodes: Iterable[Node] | None = None,
                          beta: float | None = None,
                          rng: random.Random | None = None,
                          ledger: RoundLedger | None = None,
                          ) -> NetworkDecomposition:
    """Compute a weak-diameter network decomposition with the given separation.

    Parameters
    ----------
    graph:
        The communication network ``G``.  Distances (diameter and
        separation) are measured in ``G``.
    separation:
        Same-colored clusters are at least this far apart.  For a
        decomposition of ``G^k`` use ``separation = k + 1`` (Definition 2.1);
        Lemma 5.8 uses ``2k + 1``.
    nodes:
        The set of nodes to cluster (default: all).  Other nodes may still
        relay on Steiner paths.
    beta:
        MPX delay parameter; cluster radius is ``O(log n / beta)`` w.h.p.
        Default ``0.5``.
    rng, ledger:
        Randomness and round accounting.  The charge follows Theorem A.1's
        ``~O(separation * log^3 n)`` bound.
    """
    rng = rng or random.Random(0)
    ledger = ledger if ledger is not None else RoundLedger()
    target = set(graph.nodes()) if nodes is None else set(nodes)
    n = max(2, graph.number_of_nodes())
    if beta is None:
        beta = 0.5

    clusters = _exponential_delay_clustering(graph, target, beta, rng)
    for index, cluster in enumerate(clusters):
        cluster.index = index
    num_colors = _color_clusters(graph, clusters, max(2, separation))

    cluster_of_node: dict[Node, int] = {}
    for position, cluster in enumerate(clusters):
        cluster.index = position
        for node in cluster.nodes:
            cluster_of_node[node] = position

    log_n = math.ceil(math.log2(n))
    ledger.charge(max(1, separation) * log_n ** 3, label="network-decomposition")

    return NetworkDecomposition(clusters=clusters, separation=max(2, separation),
                                num_colors=num_colors, cluster_of_node=cluster_of_node)

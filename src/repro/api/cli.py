"""The ``repro solve`` / ``repro algorithms`` commands.

``repro solve <workload> <algorithm>`` builds a graph from the scenario
registry (a cell name like ``regular-n24-d3``, or a family name resolved to
its first registered cell), dispatches through :func:`repro.api.solve` and
prints the certified :class:`~repro.api.RunReport`.  Exit status is
non-zero when the certificate fails, so the command doubles as an
end-to-end smoke test in CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

from repro.api import REGISTRY

__all__ = ["add_algorithms_parser", "add_solve_parser", "cmd_algorithms",
           "cmd_solve"]


def _parse_param(text: str) -> tuple[str, Any]:
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"expected key=value, got {text!r}")
    key, raw = text.split("=", 1)
    try:
        value: Any = json.loads(raw)
    except json.JSONDecodeError:
        value = raw
    return key.strip(), value


def add_solve_parser(commands) -> argparse.ArgumentParser:
    parser = commands.add_parser(
        "solve", help="run one registered algorithm on a registry workload")
    parser.add_argument("workload",
                        help="graph cell name (e.g. regular-n24-d3) or graph "
                             "family name (first registered cell is used)")
    parser.add_argument("algorithm",
                        help="registered algorithm or problem-family name")
    parser.add_argument("--k", type=int, default=None,
                        help="power k (when the algorithm accepts it)")
    parser.add_argument("--engine", default=None,
                        help="round engine for simulator-native algorithms")
    parser.add_argument("--seed", type=int, default=None,
                        help="explicit solve seed (default: derived)")
    parser.add_argument("--graph-seed", type=int, default=0,
                        help="seed for the workload graph builder")
    parser.add_argument("--param", action="append", default=[],
                        type=_parse_param, metavar="KEY=VALUE",
                        help="extra typed-config entry (repeatable)")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the problem certifier")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print the RunReport row as JSON")
    return parser


def add_algorithms_parser(commands) -> argparse.ArgumentParser:
    parser = commands.add_parser(
        "algorithms", help="list the registered algorithms and problems")
    parser.add_argument("--problem", default=None,
                        help="restrict to one problem family")
    return parser


def _resolve_workload(name: str, *, graph_seed: int):
    """A registry cell (exact) or family (first cell) -> (cell_name, graph)."""
    from repro.scenarios.registry import DEFAULT_REGISTRY

    try:
        cell = DEFAULT_REGISTRY.cell(name)
    except KeyError:
        cells = sorted(DEFAULT_REGISTRY.cells(family=name),
                       key=lambda cell: cell.name)
        if not cells:
            known = ", ".join(sorted(c.name for c in DEFAULT_REGISTRY.cells()))
            print(f"[repro] unknown workload {name!r}: not a graph cell or "
                  f"family (cells: {known})", file=sys.stderr)
            raise SystemExit(2)
        cell = cells[0]
    return cell.name, DEFAULT_REGISTRY.build_cell(cell, seed=graph_seed)


def cmd_solve(args: argparse.Namespace) -> int:
    cell_name, graph = _resolve_workload(args.workload,
                                         graph_seed=args.graph_seed)
    config = dict(args.param)
    if args.k is not None:
        config["k"] = args.k
    if args.engine is not None:
        config["engine"] = args.engine
    # Resolve the name and validate the typed config up front so usage
    # errors get a friendly one-liner; a failure inside the solve itself is
    # a real defect and propagates with its traceback.
    try:
        spec = REGISTRY.resolve(args.algorithm)
        spec.resolve_config(config)
    except (KeyError, TypeError) as error:
        message = error.args[0] if error.args else error
        print(f"[repro] {message}", file=sys.stderr)
        return 2
    report = REGISTRY.solve(graph, spec, seed=args.seed,
                            verify=not args.no_verify, **config)
    if args.as_json:
        row = report.to_row()
        row["workload"] = cell_name
        print(json.dumps(row, sort_keys=True, default=str))
    else:
        print(f"[repro] workload {cell_name} "
              f"(n={report.provenance.n}, m={report.provenance.m})")
        print(f"[repro] {report.summary()}")
        if report.certificate is not None:
            for check in report.certificate.checks:
                marker = "ok " if check.ok else "FAIL"
                detail = f" -- {check.detail}" if check.detail else ""
                print(f"[repro]   [{marker}] {check.name}{detail}")
    return 0 if report.ok else 1


def cmd_algorithms(args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table

    rows = [{
        "algorithm": spec.name,
        "problem": spec.problem,
        "config": ", ".join(f"{key}={value!r}" for key, value in spec.defaults)
                  or "-",
        "native": spec.simulator_native,
        "description": spec.description,
    } for spec in sorted(REGISTRY.algorithms(problem=args.problem),
                         key=lambda spec: (spec.problem, spec.name))]
    print(format_table(rows, title=f"[repro] {len(rows)} registered algorithms"))
    print(f"[repro] problem families: {', '.join(REGISTRY.problem_names())}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Typed solver API command line.")
    commands = parser.add_subparsers(dest="command", required=True)
    add_solve_parser(commands)
    add_algorithms_parser(commands)
    args = parser.parse_args(argv)
    if args.command == "solve":
        return cmd_solve(args)
    return cmd_algorithms(args)

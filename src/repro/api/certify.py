"""Named verification checks and the :class:`Certificate` attached to solves.

This module is the single home of the library's executable guarantees: each
function turns one of the paper's predicates (MIS of ``G^k``, the
``(alpha, beta)``-ruling distances, the sparsification invariants, the
decomposition properties) into a list of named pass/fail :class:`Check`
objects with human-readable failure details.  The solver facade bundles the
checks of a problem's certifier into a :class:`Certificate` on every
``solve(..., verify=True)`` call, and :mod:`repro.scenarios.oracles` routes
the scenario runner's per-cell verification through the same functions, so
there is exactly one implementation of every guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, Iterable, Mapping, Sequence

import networkx as nx

from repro.core.invariants import (
    check_power_sparsification,
    check_sparsification,
    verify_invariants,
)
from repro.graphs.power import domination_distance
from repro.ruling.greedy import lexicographic_mis
from repro.ruling.verify import verify_ruling_set

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.decomposition.ball_graph import BallGraph
    from repro.decomposition.network_decomposition import NetworkDecomposition

Node = Hashable

__all__ = [
    "Certificate",
    "Check",
    "ball_graph_checks",
    "decomposition_checks",
    "domination_checks",
    "greedy_reference_checks",
    "mis_power_checks",
    "ruling_set_checks",
    "single_sparsification_checks",
    "sparsification_checks",
]


@dataclass(frozen=True)
class Check:
    """One named pass/fail verification with a human-readable detail."""

    name: str
    ok: bool
    detail: str = ""


@dataclass
class Certificate:
    """All checks a problem's certifier applied to one solve."""

    problem: str
    checks: list[Check] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def failures(self) -> list[Check]:
        return [check for check in self.checks if not check.ok]

    def summary(self) -> str:
        if self.ok:
            return f"{self.problem}: {len(self.checks)} checks ok"
        details = "; ".join(f"{check.name}: {check.detail or 'failed'}"
                            for check in self.failures())
        return f"{self.problem}: FAILED [{details}]"

    def to_row(self) -> dict[str, object]:
        """A JSON-serialisable summary (check names and failure details)."""
        return {
            "problem": self.problem,
            "ok": self.ok,
            "checks": len(self.checks),
            "failures": [f"{check.name}: {check.detail or 'failed'}"
                         for check in self.failures()],
        }


def ruling_set_checks(graph: nx.Graph, subset: Iterable[Node], *,
                      alpha: int, beta: int,
                      targets: Iterable[Node] | None = None) -> list[Check]:
    """``(alpha, beta)``-ruling-set distances measured in ``G``."""
    report = verify_ruling_set(graph, set(subset), alpha, beta, targets=targets)
    return [
        Check("independence", report.independent_ok,
              f"independence radius {report.independence} < alpha {alpha}"
              if not report.independent_ok else ""),
        Check("domination", report.dominating_ok,
              f"domination radius {report.domination} > beta {beta}"
              if not report.dominating_ok else ""),
        Check("non-trivial", report.size > 0 or graph.number_of_nodes() == 0,
              "empty output on a non-empty graph" if report.size == 0
              and graph.number_of_nodes() else ""),
    ]


def mis_power_checks(graph: nx.Graph, subset: Iterable[Node], k: int, *,
                     targets: Iterable[Node] | None = None) -> list[Check]:
    """Independence + maximality of an MIS of ``G^k`` (a (k+1, k)-ruling set).

    For an independent set of ``G^k``, domination within ``k`` hops of every
    target is exactly maximality, so the two ruling-set distances certify
    the full MIS property -- including one member per connected component on
    disconnected workloads (an unreachable component shows up as an infinite
    domination radius).
    """
    return ruling_set_checks(graph, subset, alpha=k + 1, beta=k, targets=targets)


def sparsification_checks(graph: nx.Graph,
                          sequence: Sequence[set[Node]]) -> list[Check]:
    """Invariants I1.1 / I1.2 / I2 plus Lemma 3.1 for a chain Q_0 ⊇ ... ⊇ Q_k."""
    checks: list[Check] = []
    reports = verify_invariants(graph, sequence)
    for report in reports:
        checks.append(Check(
            f"I1.1[s={report.s}]", report.i11_max_degree <= report.i11_bound,
            f"d_s(v, Q_s) = {report.i11_max_degree} > {report.i11_bound:.1f}"
            if report.i11_max_degree > report.i11_bound else ""))
        checks.append(Check(
            f"I1.2[s={report.s}]", report.i12_max_degree <= report.i12_bound,
            f"d_(s+1)(v, Q_s) = {report.i12_max_degree} > {report.i12_bound:.1f}"
            if report.i12_max_degree > report.i12_bound else ""))
        checks.append(Check(
            f"I2[s={report.s}]", report.i2_max_excess <= report.i2_bound,
            f"domination excess {report.i2_max_excess} > {report.i2_bound}"
            if report.i2_max_excess > report.i2_bound else ""))
        checks.append(Check(
            f"nested[s={report.s}]", report.nested,
            "Q_s is not a subset of Q_(s-1)" if not report.nested else ""))
    if len(sequence) >= 2:
        k = len(sequence) - 1
        lemma = check_power_sparsification(graph, set(sequence[0]),
                                           set(sequence[-1]), k)
        checks.append(Check(
            "lemma3.1-degree", lemma.degree_ok,
            f"d_k(v, Q) = {lemma.max_q_degree} > {lemma.q_degree_bound:.1f}"
            if not lemma.degree_ok else ""))
        checks.append(Check(
            "lemma3.1-domination", lemma.domination_ok,
            f"domination excess {lemma.max_domination} > {lemma.domination_bound:.1f}"
            if not lemma.domination_ok else ""))
    return checks


def single_sparsification_checks(graph: nx.Graph, active: set[Node],
                                 q: set[Node], *, power: int = 1) -> list[Check]:
    """Lemma 5.1's guarantees for one (Det)Sparsification run on ``G^power``."""
    lemma = check_sparsification(graph, set(active), set(q), power=power)
    return [
        Check("subset", q <= set(active) or not active,
              f"{len(q - set(active))} output nodes outside the active set"
              if active and not q <= set(active) else ""),
        Check("lemma5.1-degree", lemma.degree_ok,
              f"d_{power}(v, Q) = {lemma.max_q_degree} > {lemma.q_degree_bound:.1f}"
              if not lemma.degree_ok else ""),
        Check("lemma5.1-domination", lemma.domination_ok,
              f"domination excess {lemma.max_domination} > {lemma.domination_bound}"
              if not lemma.domination_ok else ""),
    ]


def domination_checks(graph: nx.Graph, dominators: Iterable[Node],
                      targets: Iterable[Node], *, radius: int) -> list[Check]:
    """Every target has a dominator within ``radius`` hops (in ``G``)."""
    dominators = set(dominators)
    targets = set(targets)
    measured = domination_distance(graph, dominators, targets=targets)
    ok = measured <= radius
    return [
        Check("non-trivial", bool(dominators) or not targets,
              "empty dominator set for non-empty targets"
              if targets and not dominators else ""),
        Check("domination", ok,
              f"domination radius {measured} > {radius}" if not ok else ""),
    ]


def greedy_reference_checks(graph: nx.Graph, subset: Iterable[Node],
                            node_ids: Mapping[Node, int]) -> list[Check]:
    """Differential check: iterated-ID-minima MIS == centralized greedy MIS.

    The distributed protocol in which every round all local ID minima join
    simultaneously computes exactly the lexicographically-first MIS in
    increasing-ID order, so the simulator output must *equal* the
    centralized reference -- not merely satisfy the same predicate.
    """
    subset = set(subset)
    reference = lexicographic_mis(graph, key=lambda node: node_ids[node])
    missing = reference - subset
    extra = subset - reference
    return [Check(
        "greedy-reference", subset == reference,
        f"differs from centralized greedy MIS (missing={sorted(map(str, missing))[:5]}, "
        f"extra={sorted(map(str, extra))[:5]})" if subset != reference else "")]


def decomposition_checks(graph: nx.Graph, decomposition: "NetworkDecomposition",
                         *, covered: Iterable[Node] | None = None) -> list[Check]:
    """Coverage, disjointness, separation and weak diameter of a decomposition."""
    try:
        decomposition.validate(graph, covered=covered)
    except AssertionError as error:
        return [Check("decomposition", False, str(error))]
    return [
        Check("decomposition", True),
        Check("colored", decomposition.num_colors >= 1,
              "decomposition has no color classes"
              if decomposition.num_colors < 1 else ""),
    ]


def ball_graph_checks(graph: nx.Graph, ball_graph: "BallGraph") -> list[Check]:
    """The Lemma 8.3 guarantees: disjoint extended balls, distance-k adjacency."""
    try:
        ball_graph.validate(graph)
    except AssertionError as error:
        return [Check("ball-graph", False, str(error))]
    assigned = set()
    for members in ball_graph.balls.values():
        assigned |= members
    return [
        Check("ball-graph", True),
        Check("centers-covered", ball_graph.centers <= assigned,
              "some centers are missing from their own balls"
              if not ball_graph.centers <= assigned else ""),
    ]

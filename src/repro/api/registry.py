"""The solver registry: typed algorithms dispatched through one ``solve``.

Every algorithm in the library is registered here as an :class:`Algorithm`:
a name, the :class:`~repro.api.problems.Problem` it solves, a frozen typed
config (the ``defaults`` tuple enumerates every accepted key with its
default value -- unknown keys are a ``TypeError``), and an adapter callable
``run(graph, ctx) -> AdapterOutcome``.

Seed policy (the reproducibility contract)
------------------------------------------
Adapters never construct randomness themselves: the solve path derives one
integer seed per call and hands the adapter a :class:`SolveContext` carrying
both the integer (``ctx.seed``, used for CONGEST ID assignments and
simulator seeding) and a single ``random.Random`` built from it
(``ctx.rng``, passed to the graph-level algorithms).  When the caller
supplies ``seed=s`` the integer is ``s`` itself (policy ``"explicit"`` --
bit-identical to calling the legacy free function with
``random.Random(s)``); otherwise it is derived with
:func:`repro.hashing.seeds.derive_seed` from the algorithm name, the
canonical config and the graph fingerprint (policy ``"derived"``).  Either
way the concrete integer lands in ``RunReport.provenance``, so
:func:`replay`-ing a provenance block reproduces the run bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Mapping

import networkx as nx

from repro.api.problems import BUILTIN_PROBLEMS, Problem
from repro.api.report import Provenance, RunReport, graph_fingerprint
from repro.hashing.seeds import derive_seed

Node = Hashable

__all__ = [
    "AdapterOutcome",
    "Algorithm",
    "SolveContext",
    "SolvePlan",
    "SolverRegistry",
]


def _config_tuple(config: Mapping[str, Any] | None) -> tuple[tuple[str, Any], ...]:
    return tuple(sorted((config or {}).items()))


@dataclass(frozen=True)
class SolveContext:
    """Everything an adapter may consume besides the graph itself."""

    config: Mapping[str, Any]
    seed: int
    rng: random.Random = field(repr=False)

    def __getitem__(self, key: str) -> Any:
        return self.config[key]


@dataclass
class AdapterOutcome:
    """What an adapter hands back to the solve path."""

    output: set[Node]
    rounds: int
    metrics: dict[str, Any] = field(default_factory=dict)
    payload: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SolvePlan:
    """A fully-resolved solve before execution: the content address.

    ``plan()`` performs everything deterministic about a solve -- algorithm
    resolution, config canonicalisation, graph fingerprinting and seed
    derivation -- without running the algorithm.  The resulting tuple
    ``(graph_fingerprint, algorithm, config, seed)`` identifies the run
    bit-for-bit (it is exactly what lands in the report's provenance), so
    the service layer uses the plan as its cache key and coalescing
    identity.
    """

    algorithm: Algorithm
    config: tuple[tuple[str, Any], ...]
    graph_fingerprint: str
    seed: int
    seed_policy: str

    @property
    def config_dict(self) -> dict[str, Any]:
        return dict(self.config)


@dataclass(frozen=True)
class Algorithm:
    """A registered solver with a declared problem and typed config."""

    name: str
    problem: str
    run: Callable[[nx.Graph, SolveContext], AdapterOutcome]
    #: Every accepted config key with its default value; the frozen schema.
    defaults: tuple[tuple[str, Any], ...] = ()
    description: str = ""
    simulator_native: bool = False
    randomized: bool = True
    #: Config keys that select *how* the run executes without changing what
    #: it computes (the ``engine`` of the simulator-native algorithms): they
    #: are recorded in the provenance but excluded from derived-seed
    #: material, so e.g. ``engine="vector"`` and ``engine="sync"`` derive
    #: the same seed and produce bit-identical outputs.  ``replay`` accepts
    #: overrides for exactly these keys.
    seed_neutral: tuple[str, ...] = ()
    #: Optional batched runner ``run_batch(graph, [ctx, ...]) -> [outcome,
    #: ...]`` executing one seed sweep (shared graph and config, one context
    #: per seed) as a single batch.  Must be bit-identical, outcome by
    #: outcome, to calling :attr:`run` once per context;
    #: :meth:`SolverRegistry.solve_batch` falls back to exactly that loop
    #: when the field is ``None``.
    run_batch: Callable[[nx.Graph, "list[SolveContext]"],
                        "list[AdapterOutcome]"] | None = None

    @property
    def config_keys(self) -> frozenset[str]:
        return frozenset(key for key, _ in self.defaults)

    @property
    def seed_neutral_keys(self) -> frozenset[str]:
        return frozenset(self.seed_neutral)

    def resolve_config(self, overrides: Mapping[str, Any]) -> dict[str, Any]:
        """Merge overrides into the defaults; unknown keys are a TypeError."""
        unknown = set(overrides) - self.config_keys
        if unknown:
            allowed = ", ".join(sorted(self.config_keys)) or "(none)"
            raise TypeError(
                f"algorithm {self.name!r} got unknown config "
                f"{sorted(unknown)}; accepted keys: {allowed}")
        config = dict(self.defaults)
        config.update(overrides)
        return config


class SolverRegistry:
    """Problems and algorithms behind the uniform ``solve`` entry point."""

    def __init__(self) -> None:
        self._problems: dict[str, Problem] = {}
        self._algorithms: dict[str, Algorithm] = {}
        self._default_algorithm: dict[str, str] = {}

    # ------------------------------------------------------------- problems
    def register_problem(self, problem: Problem) -> Problem:
        if problem.name in self._problems:
            raise ValueError(f"problem {problem.name!r} already registered")
        self._problems[problem.name] = problem
        return problem

    def problem(self, name: str) -> Problem:
        return self._problems[name]

    def problems(self) -> list[Problem]:
        return list(self._problems.values())

    def problem_names(self) -> list[str]:
        return sorted(self._problems)

    # ----------------------------------------------------------- algorithms
    def register(self, algorithm: Algorithm, *, default: bool = False) -> Algorithm:
        if algorithm.name in self._algorithms:
            raise ValueError(f"algorithm {algorithm.name!r} already registered")
        if algorithm.problem not in self._problems:
            raise KeyError(f"algorithm {algorithm.name!r} declares unknown "
                           f"problem {algorithm.problem!r}")
        self._algorithms[algorithm.name] = algorithm
        if default or algorithm.problem not in self._default_algorithm:
            self._default_algorithm[algorithm.problem] = algorithm.name
        return algorithm

    def algorithm(self, name: str) -> Algorithm:
        try:
            return self._algorithms[name]
        except KeyError:
            raise KeyError(
                f"unknown algorithm {name!r}; registered: "
                f"{', '.join(self.algorithm_names())}") from None

    def algorithms(self, *, problem: str | None = None) -> list[Algorithm]:
        return [spec for spec in self._algorithms.values()
                if problem is None or spec.problem == problem]

    def algorithm_names(self) -> list[str]:
        return sorted(self._algorithms)

    def default_algorithm(self, problem: str) -> Algorithm:
        """The algorithm ``solve`` picks when handed a problem name."""
        name = self._default_algorithm.get(problem)
        if name is None:
            raise KeyError(f"problem {problem!r} has no registered algorithm")
        return self._algorithms[name]

    def resolve(self, problem_or_algorithm: str | Algorithm | Problem) -> Algorithm:
        """Map a name (algorithm first, then problem family) to an Algorithm."""
        if isinstance(problem_or_algorithm, Algorithm):
            return problem_or_algorithm
        if isinstance(problem_or_algorithm, Problem):
            return self.default_algorithm(problem_or_algorithm.name)
        name = str(problem_or_algorithm)
        if name in self._algorithms:
            return self._algorithms[name]
        if name in self._problems:
            return self.default_algorithm(name)
        raise KeyError(
            f"{name!r} is neither a registered algorithm "
            f"({', '.join(self.algorithm_names())}) nor a problem family "
            f"({', '.join(self.problem_names())})")

    # ------------------------------------------------------------ execution
    def plan(self, graph: nx.Graph,
             problem_or_algorithm: str | Algorithm | Problem, *,
             seed: int | None = None, **config: Any) -> SolvePlan:
        """Resolve a solve to its content address without executing it.

        Performs the deterministic half of :meth:`solve` -- name
        resolution, typed-config validation and canonicalisation, graph
        fingerprinting and seed derivation -- and returns the
        :class:`SolvePlan` that identifies the run.  ``solve`` itself is
        ``plan`` + adapter execution + certification, so a plan computed by
        the service layer keys exactly the report ``solve`` would produce.
        """
        spec = self.resolve(problem_or_algorithm)
        resolved = spec.resolve_config(config)
        fingerprint = graph_fingerprint(graph)
        canonical = _config_tuple(resolved)
        if seed is not None:
            derived_seed, policy = int(seed), "explicit"
        else:
            # Execution-selection keys (engine backends) are excluded from
            # the seed material: the same workload derives the same seed --
            # and therefore the same outputs -- under every engine.
            material = tuple(item for item in canonical
                             if item[0] not in spec.seed_neutral_keys)
            derived_seed = derive_seed("repro.api", spec.name, fingerprint,
                                       material, bits=32)
            policy = "derived"
        return SolvePlan(algorithm=spec, config=canonical,
                         graph_fingerprint=fingerprint, seed=derived_seed,
                         seed_policy=policy)

    def solve(self, graph: nx.Graph,
              problem_or_algorithm: str | Algorithm | Problem, *,
              seed: int | None = None, verify: bool = True,
              **config: Any) -> RunReport:
        """Run a registered algorithm and return its certified RunReport.

        ``problem_or_algorithm`` is an algorithm name (``"power-mis"``), a
        problem-family name (``"mis-power"``, dispatched to the family's
        default algorithm) or a spec object.  ``seed`` pins the run's
        randomness (policy ``"explicit"``); omitted, a seed is derived from
        the algorithm, config and graph fingerprint (policy ``"derived"``).
        ``verify=True`` attaches the problem certifier's Certificate.
        """
        plan = self.plan(graph, problem_or_algorithm, seed=seed, **config)
        ctx = SolveContext(config=plan.config_dict, seed=plan.seed,
                           rng=random.Random(plan.seed))
        outcome = plan.algorithm.run(graph, ctx)
        return self._finish(graph, plan, outcome, verify=verify)

    def solve_batch(self, graph: nx.Graph,
                    problem_or_algorithm: str | Algorithm | Problem, *,
                    seeds: Any, verify: bool = True,
                    **config: Any) -> list[RunReport]:
        """Run one algorithm for many explicit seeds; one RunReport per seed.

        Semantically equivalent to ``[solve(graph, ..., seed=s, **config)
        for s in seeds]`` -- every report is certified and replayable on
        its own (policy ``"explicit"``) -- but algorithms that declare a
        batched runner (:attr:`Algorithm.run_batch`) execute the whole
        sweep as a single batch: the simulator-native drivers run all
        replicas as one array program over the shared topology
        (:func:`repro.congest.batch.simulate_replicas`), sharing CSR
        neighbor structure and round loops across seeds while keeping each
        replica's RNG streams, transport accounting and outputs
        bit-identical to its solo run.
        """
        seed_list = [int(s) for s in seeds]
        if not seed_list:
            return []
        plans = [self.plan(graph, problem_or_algorithm, seed=s, **config)
                 for s in seed_list]
        spec = plans[0].algorithm
        ctxs = [SolveContext(config=plan.config_dict, seed=plan.seed,
                             rng=random.Random(plan.seed))
                for plan in plans]
        if spec.run_batch is not None:
            outcomes = spec.run_batch(graph, ctxs)
            if len(outcomes) != len(ctxs):
                raise RuntimeError(
                    f"algorithm {spec.name!r} run_batch returned "
                    f"{len(outcomes)} outcomes for {len(ctxs)} seeds")
        else:
            outcomes = [spec.run(graph, ctx) for ctx in ctxs]
        return [self._finish(graph, plan, outcome, verify=verify)
                for plan, outcome in zip(plans, outcomes)]

    def _finish(self, graph: nx.Graph, plan: SolvePlan,
                outcome: AdapterOutcome, *, verify: bool) -> RunReport:
        """Certify an adapter outcome and assemble its RunReport."""
        from repro import __version__ as library_version  # late: avoids cycle

        spec = plan.algorithm
        provenance = Provenance(
            algorithm=spec.name,
            problem=spec.problem,
            config=plan.config,
            seed=plan.seed,
            seed_policy=plan.seed_policy,
            graph_fingerprint=plan.graph_fingerprint,
            n=graph.number_of_nodes(),
            m=graph.number_of_edges(),
            library_version=library_version,
        )
        certificate = None
        if verify:
            certificate = self._problems[spec.problem].certify(
                graph, outcome.output, config=plan.config_dict,
                payload=outcome.payload)
        return RunReport(output=outcome.output, rounds=outcome.rounds,
                         provenance=provenance, metrics=outcome.metrics,
                         payload=outcome.payload, certificate=certificate)

    def replay(self, graph: nx.Graph, provenance: Provenance, *,
               verify: bool = True, **overrides: Any) -> RunReport:
        """Re-run a provenance block; bit-identical on the same graph.

        ``overrides`` may remap the algorithm's *seed-neutral* config keys
        only (e.g. ``engine="sync"`` to replay a vector-engine report on
        the reference engine) -- those select the execution backend without
        affecting seeds or outputs, so the replay stays bit-for-bit equal.
        Overriding any other key would change what is computed and raises
        ``TypeError``.
        """
        if graph_fingerprint(graph) != provenance.graph_fingerprint:
            raise ValueError(
                "graph fingerprint mismatch: the provenance block was recorded "
                f"for {provenance.graph_fingerprint}, got "
                f"{graph_fingerprint(graph)}")
        if overrides:
            spec = self.resolve(provenance.algorithm)
            illegal = set(overrides) - spec.seed_neutral_keys
            if illegal:
                allowed = ", ".join(sorted(spec.seed_neutral_keys)) or "(none)"
                raise TypeError(
                    f"replay can only override the seed-neutral keys of "
                    f"{spec.name!r} ({allowed}); got {sorted(illegal)}")
        config = {**provenance.config_dict, **overrides}
        return self.solve(graph, provenance.algorithm, seed=provenance.seed,
                          verify=verify, **config)


def _with_builtin_problems(registry: SolverRegistry) -> SolverRegistry:
    for problem in BUILTIN_PROBLEMS:
        registry.register_problem(problem)
    return registry


def new_registry() -> SolverRegistry:
    """A fresh registry pre-loaded with the builtin problem families."""
    return _with_builtin_problems(SolverRegistry())

"""Typed problem families and their certifiers.

The paper's results all share one shape -- *compute a symmetry-breaking
structure on* ``G^k``, *then certify it* -- and a :class:`Problem` captures
exactly that: a name (``mis-power``, ``ruling-set``, ``sparsify-power``,
...), a description, and a certifier mapping ``(graph, output, config,
payload)`` to the named checks of :mod:`repro.api.certify`.  Every
registered algorithm declares the problem it solves, so ``solve`` knows how
to verify any algorithm without per-algorithm dispatch tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Mapping

import networkx as nx

from repro.api import certify
from repro.api.certify import Certificate, Check

Node = Hashable

Certifier = Callable[[nx.Graph, set, Mapping[str, Any], Mapping[str, Any]],
                     "list[Check]"]

__all__ = ["BUILTIN_PROBLEMS", "Problem"]


@dataclass(frozen=True)
class Problem:
    """A named problem family with a uniform certifier."""

    name: str
    description: str = ""
    certifier: Certifier | None = None

    def certify(self, graph: nx.Graph, output: set[Node], *,
                config: Mapping[str, Any],
                payload: Mapping[str, Any]) -> Certificate:
        """Apply the problem's certifier and bundle the checks."""
        if self.certifier is None:
            checks = [Check("certifier", False,
                            f"problem {self.name!r} has no certifier")]
        else:
            checks = self.certifier(graph, output, config, payload)
        return Certificate(problem=self.name, checks=list(checks))


def _certify_mis_power(graph: nx.Graph, output: set[Node],
                       config: Mapping[str, Any],
                       payload: Mapping[str, Any]) -> list[Check]:
    k = int(config.get("k", 1))
    checks = certify.mis_power_checks(graph, output, k,
                                      targets=payload.get("targets"))
    reference_ids = payload.get("greedy_reference_ids")
    if reference_ids is not None:
        checks += certify.greedy_reference_checks(graph, output, reference_ids)
    return checks


def _certify_ruling_set(graph: nx.Graph, output: set[Node],
                        config: Mapping[str, Any],
                        payload: Mapping[str, Any]) -> list[Check]:
    k = int(config.get("k", 1))
    alpha = int(payload.get("alpha", k + 1))
    beta = payload.get("beta_bound")
    if beta is None:
        return [Check("has-bounds", False,
                      "payload carries no 'beta_bound' domination guarantee")]
    return certify.ruling_set_checks(graph, output, alpha=alpha, beta=int(beta),
                                     targets=payload.get("targets"))


def _certify_sparsify_power(graph: nx.Graph, output: set[Node],
                            config: Mapping[str, Any],
                            payload: Mapping[str, Any]) -> list[Check]:
    sequence = payload.get("sequence")
    if not sequence:
        return [Check("has-sequence", False,
                      "payload carries no sparsification 'sequence'")]
    return certify.sparsification_checks(graph, sequence)


def _certify_sparsify_stage(graph: nx.Graph, output: set[Node],
                            config: Mapping[str, Any],
                            payload: Mapping[str, Any]) -> list[Check]:
    active = payload.get("active", set(graph.nodes()))
    power = int(config.get("power", 1))
    return certify.single_sparsification_checks(graph, set(active), set(output),
                                                power=power)


def _certify_degree_reduction(graph: nx.Graph, output: set[Node],
                              config: Mapping[str, Any],
                              payload: Mapping[str, Any]) -> list[Check]:
    k = int(config.get("k", 1))
    candidates = payload.get("candidates", set(graph.nodes()))
    return certify.domination_checks(graph, output, candidates, radius=k)


def _certify_decomposition(graph: nx.Graph, output: set[Node],
                           config: Mapping[str, Any],
                           payload: Mapping[str, Any]) -> list[Check]:
    decomposition = payload.get("decomposition")
    if decomposition is None:
        return [Check("has-decomposition", False,
                      "payload carries no 'decomposition' object")]
    return certify.decomposition_checks(graph, decomposition,
                                        covered=payload.get("covered"))


def _certify_ball_graph(graph: nx.Graph, output: set[Node],
                        config: Mapping[str, Any],
                        payload: Mapping[str, Any]) -> list[Check]:
    ball_graph = payload.get("ball_graph")
    if ball_graph is None:
        return [Check("has-ball-graph", False,
                      "payload carries no 'ball_graph' object")]
    return certify.ball_graph_checks(graph, ball_graph)


BUILTIN_PROBLEMS: tuple[Problem, ...] = (
    Problem("mis-power",
            "maximal independent set of G^k (a (k+1, k)-ruling set of G)",
            _certify_mis_power),
    Problem("ruling-set",
            "(alpha, beta)-ruling set of G, bounds taken from the payload",
            _certify_ruling_set),
    Problem("sparsify-power",
            "Lemma 3.1 chain Q_0 ⊇ ... ⊇ Q_k sparse in G^k, invariants I1/I2",
            _certify_sparsify_power),
    Problem("sparsify-stage",
            "Lemma 5.1 single-stage sparsification on G^power",
            _certify_sparsify_stage),
    Problem("degree-reduction",
            "KP12 degree reduction: output dominates the candidates within k",
            _certify_degree_reduction),
    Problem("decomposition",
            "weak-diameter network decomposition with separation",
            _certify_decomposition),
    Problem("ball-graph",
            "Lemma 8.3 distance-k ball graph over a ruling set",
            _certify_ball_graph),
)

"""Lossless JSON round-trip for :class:`RunReport` / :class:`Provenance`.

``RunReport.to_row()`` is a *summary* (it keeps ``output_size``, drops the
output set and the per-check certificate detail) -- good enough for tables,
not good enough for a cache that must hand back the report it stored.  This
module is the full-fidelity counterpart used by the service layer's solve
cache and anything else that persists reports:

* :func:`report_to_json` / :func:`report_from_json` round-trip everything
  except ``payload`` (live Python objects -- sparsification sequences, ID
  maps, native result dataclasses -- are never serialised; a deserialised
  report has an empty payload, which is documented cache behaviour);
* node labels are arbitrary hashables in this library (ints, strings,
  ``(row, col)`` grid tuples, mixed labels on the adversarial families), so
  the output set uses a tagged encoding (:func:`encode_node` /
  :func:`decode_node`) that survives JSON's type system -- in particular
  tuples do not come back as lists;
* the certificate is serialised check-by-check (name / ok / detail), so a
  cache hit replays the exact verdict the original solve produced.
"""

from __future__ import annotations

import json
from typing import Any, Hashable, Mapping

from repro.api.certify import Certificate, Check
from repro.api.report import Provenance, RunReport

Node = Hashable

__all__ = [
    "decode_node",
    "encode_node",
    "report_from_json",
    "report_to_json",
]

#: JSON scalars that pass through the node encoding untouched.  ``bool`` is
#: listed before the ``int`` check would see it only because JSON keeps the
#: two types distinct anyway -- no tagging needed for any scalar.
_SCALARS = (bool, int, float, str, type(None))


def encode_node(node: Node) -> Any:
    """Encode one node label as a JSON-safe value.

    Scalars (int, float, str, bool, None) are themselves; tuples become
    ``{"t": [...]}`` (recursively), so they round-trip as tuples instead of
    decaying to lists.  Anything else is rejected loudly -- a silent
    ``str()`` fallback would make deserialised outputs unequal to fresh
    ones, breaking the cache's bit-for-bit contract.
    """
    if isinstance(node, _SCALARS):
        return node
    if isinstance(node, tuple):
        return {"t": [encode_node(part) for part in node]}
    raise TypeError(
        f"node label {node!r} of type {type(node).__name__} is not "
        f"JSON-serialisable; supported: int, float, str, bool, None and "
        f"tuples thereof")


def decode_node(value: Any) -> Node:
    """Inverse of :func:`encode_node`."""
    if isinstance(value, dict):
        return tuple(decode_node(part) for part in value["t"])
    return value


def _certificate_to_obj(certificate: Certificate) -> dict[str, Any]:
    return {
        "problem": certificate.problem,
        "checks": [{"name": check.name, "ok": check.ok, "detail": check.detail}
                   for check in certificate.checks],
    }


def _certificate_from_obj(obj: Mapping[str, Any]) -> Certificate:
    return Certificate(
        problem=str(obj["problem"]),
        checks=[Check(name=str(check["name"]), ok=bool(check["ok"]),
                      detail=str(check.get("detail", "")))
                for check in obj.get("checks", ())])


def report_to_json(report: RunReport) -> str:
    """Serialise a report to one JSON line (payload intentionally dropped)."""
    obj: dict[str, Any] = {
        "output": [encode_node(node)
                   for node in sorted(report.output, key=str)],
        "rounds": report.rounds,
        "metrics": dict(report.metrics),
        "provenance": report.provenance.to_row(),
    }
    if report.certificate is not None:
        obj["certificate"] = _certificate_to_obj(report.certificate)
    return json.dumps(obj, sort_keys=True)


def report_from_json(text: str | Mapping[str, Any]) -> RunReport:
    """Rebuild a :class:`RunReport` from :func:`report_to_json` output.

    The returned report is equal to the original in output, rounds,
    metrics, provenance and certificate verdict; ``payload`` is empty (live
    objects are never serialised).  ``replay``-ing its provenance on the
    fingerprinted graph reproduces the full report, payload included.
    """
    obj = json.loads(text) if isinstance(text, str) else dict(text)
    certificate = None
    if obj.get("certificate") is not None:
        certificate = _certificate_from_obj(obj["certificate"])
    return RunReport(
        output={decode_node(value) for value in obj.get("output", ())},
        rounds=int(obj["rounds"]),
        provenance=Provenance.from_row(obj["provenance"]),
        metrics=dict(obj.get("metrics") or {}),
        payload={},
        certificate=certificate,
    )

"""Registered adapters: every algorithm in the library behind ``solve``.

Each adapter wraps one of the library's solver entry points in the uniform
``run(graph, ctx) -> AdapterOutcome`` shape.  Adapters never construct
randomness: graph-level algorithms receive ``ctx.rng`` (the single
``random.Random`` built by the solve path) and the simulator-native drivers
receive ``ctx.seed`` for the CONGEST ID assignment and per-node RNGs --
the no-fan-out rule that keeps a RunReport reproducible from its provenance
block alone.

With an explicit ``seed=s`` the dispatch is bit-identical to calling the
legacy free function with ``rng=random.Random(s)`` /
``CongestNetwork(graph, id_seed=s)``; the parity suite in
``tests/test_api_parity.py`` locks this in for every pair.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.api.registry import AdapterOutcome, Algorithm, SolveContext, SolverRegistry
from repro.congest.batch import simulate_replicas
from repro.congest.network import CongestNetwork
from repro.core.detsparsify import det_sparsification
from repro.core.power_sparsify import (
    power_graph_sparsification,
    power_graph_sparsification_low_diameter,
)
from repro.core.sampling import randomized_sparsification
from repro.decomposition.ball_graph import form_distance_k_ball_graph
from repro.decomposition.network_decomposition import network_decomposition
from repro.graphs.power import bounded_bfs
from repro.mis.beeping import beeping_mis, beeping_mis_power, simulate_beeping_mis
from repro.mis.kp12 import kp12_sparsify_power
from repro.mis.luby import LubyMISNode, luby_mis, luby_mis_power, simulate_luby_mis
from repro.mis.power_mis import power_graph_mis
from repro.mis.power_ruling import power_graph_ruling_set
from repro.mis.power_sim import (
    PowerDetRulingNode,
    PowerLubyMISNode,
    simulate_power_det_ruling,
    simulate_power_luby_mis,
)
from repro.mis.shattering import shattering_mis
from repro.ruling.aglp import aglp_ruling_set, id_based_ruling_set
from repro.ruling.det_ruling_set import deterministic_power_ruling_set
from repro.ruling.distributed import DetRulingSetNode, simulate_det_ruling_set
from repro.ruling.greedy import greedy_mis, greedy_ruling_set

Node = Hashable

__all__ = ["register_builtin_algorithms"]


def _default_node_ids(graph: nx.Graph) -> dict[Node, int]:
    """The library-wide canonical ID assignment (1-based, str-sorted)."""
    return {node: index + 1
            for index, node in enumerate(sorted(graph.nodes(), key=str))}


# --------------------------------------------------------------------- MIS
def _run_luby(graph: nx.Graph, ctx: SolveContext) -> AdapterOutcome:
    result = luby_mis(graph, rng=ctx.rng)
    return AdapterOutcome(output=result.mis, rounds=result.rounds,
                          metrics={"steps": result.steps},
                          payload={"result": result})


def _run_luby_power(graph: nx.Graph, ctx: SolveContext) -> AdapterOutcome:
    result = luby_mis_power(graph, ctx["k"], rng=ctx.rng)
    return AdapterOutcome(output=result.mis, rounds=result.rounds,
                          metrics={"steps": result.steps},
                          payload={"result": result})


def _run_beeping(graph: nx.Graph, ctx: SolveContext) -> AdapterOutcome:
    result = beeping_mis(graph, steps=ctx["steps"], rng=ctx.rng)
    return AdapterOutcome(output=result.mis, rounds=result.rounds,
                          metrics={"steps": result.steps,
                                   "undecided": len(result.undecided)},
                          payload={"result": result})


def _run_beeping_power(graph: nx.Graph, ctx: SolveContext) -> AdapterOutcome:
    result = beeping_mis_power(graph, ctx["k"], steps=ctx["steps"], rng=ctx.rng)
    return AdapterOutcome(output=result.mis, rounds=result.rounds,
                          metrics={"steps": result.steps,
                                   "undecided": len(result.undecided)},
                          payload={"result": result})


def _run_shattering_mis(graph: nx.Graph, ctx: SolveContext) -> AdapterOutcome:
    result = shattering_mis(graph, approach=ctx["approach"],
                            pre_steps=ctx["pre_steps"], rng=ctx.rng)
    return AdapterOutcome(
        output=result.mis, rounds=result.rounds,
        metrics={"approach": result.approach,
                 "undecided_after_pre": len(result.undecided_after_pre),
                 "component_sizes": sorted(result.component_sizes, reverse=True)[:8]},
        payload={"result": result})


def _run_power_mis(graph: nx.Graph, ctx: SolveContext) -> AdapterOutcome:
    result = power_graph_mis(graph, ctx["k"], rng=ctx.rng,
                             pre_steps=ctx["pre_steps"],
                             post_instances=ctx["post_instances"])
    return AdapterOutcome(
        output=result.mis, rounds=result.rounds,
        metrics={"ruling_set_size": result.ruling_set_size,
                 "undecided_after_pre": len(result.undecided_after_pre),
                 "component_sizes": sorted(result.component_sizes, reverse=True)[:8],
                 "phase_rounds": dict(result.phase_rounds)},
        payload={"result": result})


def _run_greedy_mis(graph: nx.Graph, ctx: SolveContext) -> AdapterOutcome:
    mis = greedy_mis(graph, ctx["k"])
    return AdapterOutcome(output=mis, rounds=0,
                          metrics={"centralized": True})


# -------------------------------------------------------------- ruling sets
def _run_power_ruling(graph: nx.Graph, ctx: SolveContext) -> AdapterOutcome:
    beta = int(ctx["beta"])
    result = power_graph_ruling_set(graph, ctx["k"], beta, rng=ctx.rng)
    return AdapterOutcome(
        output=result.ruling_set, rounds=result.rounds,
        metrics={"beta": beta, "chain_sizes": list(result.chain_sizes),
                 "phase_rounds": dict(result.phase_rounds)},
        payload={"alpha": result.alpha, "beta_bound": result.domination_bound,
                 "result": result})


def _run_det_power_ruling(graph: nx.Graph, ctx: SolveContext) -> AdapterOutcome:
    result = deterministic_power_ruling_set(
        graph, ctx["k"], method=ctx["method"],
        use_network_decomposition=ctx["use_network_decomposition"], rng=ctx.rng)
    return AdapterOutcome(
        output=result.ruling_set, rounds=result.rounds,
        metrics={"q_size": len(result.q),
                 "phase_rounds": dict(result.phase_rounds)},
        payload={"alpha": result.alpha, "beta_bound": result.beta_bound,
                 "result": result})


def _run_aglp(graph: nx.Graph, ctx: SolveContext) -> AdapterOutcome:
    k = ctx["k"]
    coloring = _default_node_ids(graph)
    result = aglp_ruling_set(graph, k, coloring, base=ctx["base"])
    return AdapterOutcome(
        output=result.ruling_set, rounds=result.rounds,
        metrics={"base": result.base, "digits": result.digits},
        payload={"alpha": k + 1, "beta_bound": result.domination_bound,
                 "result": result})


def _run_id_ruling(graph: nx.Graph, ctx: SolveContext) -> AdapterOutcome:
    k = ctx["k"]
    result = id_based_ruling_set(graph, k, ctx["c"])
    return AdapterOutcome(
        output=result.ruling_set, rounds=result.rounds,
        metrics={"base": result.base, "digits": result.digits, "c": ctx["c"]},
        payload={"alpha": k + 1, "beta_bound": result.domination_bound,
                 "result": result})


def _run_greedy_ruling(graph: nx.Graph, ctx: SolveContext) -> AdapterOutcome:
    alpha = int(ctx["alpha"])
    ruling = greedy_ruling_set(graph, alpha)
    return AdapterOutcome(output=ruling, rounds=0,
                          metrics={"centralized": True},
                          payload={"alpha": alpha, "beta_bound": alpha - 1})


# ------------------------------------------------------------ sparsification
def _run_sparsify(graph: nx.Graph, ctx: SolveContext) -> AdapterOutcome:
    result = power_graph_sparsification(graph, ctx["k"], method=ctx["method"],
                                        rng=ctx.rng)
    return AdapterOutcome(
        output=result.q, rounds=result.rounds,
        metrics={"chain_sizes": [len(q) for q in result.sequence]},
        payload={"sequence": [set(q) for q in result.sequence],
                 "result": result})


def _run_sparsify_low_diameter(graph: nx.Graph, ctx: SolveContext) -> AdapterOutcome:
    result = power_graph_sparsification_low_diameter(
        graph, ctx["k"], method=ctx["method"], rng=ctx.rng)
    return AdapterOutcome(
        output=result.q, rounds=result.rounds,
        metrics={"chain_sizes": [len(q) for q in result.sequence]},
        payload={"sequence": [set(q) for q in result.sequence],
                 "result": result})


def _run_det_sparsify(graph: nx.Graph, ctx: SolveContext) -> AdapterOutcome:
    result = det_sparsification(graph, power=ctx["power"], method=ctx["method"],
                                rng=ctx.rng)
    return AdapterOutcome(
        output=result.q, rounds=result.rounds,
        metrics={"stages": len(result.stages), "method": result.method,
                 "violations": result.total_violations},
        payload={"active": set(graph.nodes()), "result": result})


def _run_randomized_sparsify(graph: nx.Graph, ctx: SolveContext) -> AdapterOutcome:
    result = randomized_sparsification(graph, power=ctx["power"],
                                       use_kwise=ctx["use_kwise"], rng=ctx.rng)
    return AdapterOutcome(
        output=result.q, rounds=result.rounds,
        metrics={"stages": len(result.stages)},
        payload={"active": set(graph.nodes()), "result": result})


def _run_kp12_sparsify(graph: nx.Graph, ctx: SolveContext) -> AdapterOutcome:
    result = kp12_sparsify_power(graph, ctx["k"], ctx["f"], rng=ctx.rng)
    return AdapterOutcome(
        output=result.q, rounds=result.rounds,
        metrics={"stages": result.stages, "f": result.f},
        payload={"candidates": set(graph.nodes()), "result": result})


# -------------------------------------------------------------- clustering
def _run_network_decomposition(graph: nx.Graph, ctx: SolveContext) -> AdapterOutcome:
    decomposition = network_decomposition(graph, separation=ctx["separation"],
                                          rng=ctx.rng)
    centers = {cluster.center for cluster in decomposition.clusters}
    return AdapterOutcome(
        output=centers, rounds=0,
        metrics={"num_colors": decomposition.num_colors,
                 "num_clusters": len(decomposition.clusters),
                 "max_weak_diameter": decomposition.max_weak_diameter},
        payload={"decomposition": decomposition})


def _run_ball_graph(graph: nx.Graph, ctx: SolveContext) -> AdapterOutcome:
    k = ctx["k"]
    node_ids = _default_node_ids(graph)
    rulers = greedy_ruling_set(graph, alpha=2 * k + 1, key=str)
    balls: dict[Node, set[Node]] = {ruler: {ruler} for ruler in rulers}
    # The greedy (2k+1, 2k)-ruling set dominates every node within 2k hops;
    # assign each node to its closest ruler (ties by string label).
    for node in graph.nodes():
        if node in rulers:
            continue
        distances = bounded_bfs(graph, node, 2 * k)
        closest = min((distances[r], str(r), r) for r in rulers if r in distances)
        balls[closest[2]].add(node)
    ball_graph = form_distance_k_ball_graph(graph, balls, k=k, node_ids=node_ids)
    return AdapterOutcome(
        output=set(ball_graph.centers), rounds=0,
        metrics={"num_balls": len(balls),
                 "max_ball": max((len(b) for b in balls.values()), default=0)},
        payload={"ball_graph": ball_graph})


# -------------------------------------------------- simulator-native drivers
def _sim_metrics(result) -> dict[str, object]:
    """Uniform metrics of a ``SimulationResult``, incl. engine observability.

    ``engine_requested`` is what the caller asked for; ``engine_used`` is
    what actually executed (they differ exactly when ``engine="vector"``
    fell back to its scalar reference -- also surfaced as a
    :class:`~repro.congest.vector_engine.VectorFallbackWarning`).
    """
    return {"messages": result.total_messages, "bits": result.total_bits,
            "engine": result.engine,
            "engine_requested": result.engine,
            "engine_used": result.engine_used or result.engine,
            "halted": result.halted}


def _run_det_ruling_sim(graph: nx.Graph, ctx: SolveContext) -> AdapterOutcome:
    network = CongestNetwork(graph, id_seed=ctx.seed)
    ruling_set, result = simulate_det_ruling_set(network, engine=ctx["engine"],
                                                 max_rounds=ctx["max_rounds"])
    node_ids = dict(network.ids)
    return AdapterOutcome(
        output=ruling_set, rounds=result.rounds,
        metrics=_sim_metrics(result),
        payload={"node_ids": node_ids, "greedy_reference_ids": node_ids,
                 "result": result})


def _run_luby_sim(graph: nx.Graph, ctx: SolveContext) -> AdapterOutcome:
    network = CongestNetwork(graph, id_seed=ctx.seed)
    mis, result = simulate_luby_mis(network, seed=ctx.seed, engine=ctx["engine"],
                                    max_rounds=ctx["max_rounds"])
    return AdapterOutcome(
        output=mis, rounds=result.rounds,
        metrics=_sim_metrics(result),
        payload={"node_ids": dict(network.ids), "result": result})


def _run_beeping_sim(graph: nx.Graph, ctx: SolveContext) -> AdapterOutcome:
    network = CongestNetwork(graph, id_seed=ctx.seed)
    mis, result = simulate_beeping_mis(network, seed=ctx.seed,
                                       max_steps=ctx["max_steps"],
                                       engine=ctx["engine"],
                                       max_rounds=ctx["max_rounds"])
    return AdapterOutcome(
        output=mis, rounds=result.rounds,
        metrics=_sim_metrics(result),
        payload={"node_ids": dict(network.ids), "result": result})


def _run_power_luby_sim(graph: nx.Graph, ctx: SolveContext) -> AdapterOutcome:
    network = CongestNetwork(graph, id_seed=ctx.seed)
    mis, result = simulate_power_luby_mis(network, ctx["k"], seed=ctx.seed,
                                          engine=ctx["engine"],
                                          max_rounds=ctx["max_rounds"])
    return AdapterOutcome(
        output=mis, rounds=result.rounds,
        metrics=_sim_metrics(result),
        payload={"node_ids": dict(network.ids), "result": result})


def _run_power_det_ruling_sim(graph: nx.Graph,
                              ctx: SolveContext) -> AdapterOutcome:
    network = CongestNetwork(graph, id_seed=ctx.seed)
    chosen, result = simulate_power_det_ruling(network, ctx["k"],
                                               seed=ctx.seed,
                                               engine=ctx["engine"],
                                               max_rounds=ctx["max_rounds"])
    return AdapterOutcome(
        output=chosen, rounds=result.rounds,
        metrics=_sim_metrics(result),
        payload={"node_ids": dict(network.ids), "result": result})


# --------------------------------------------------- batched-replica drivers
def _batch_sim(graph: nx.Graph, ctxs: list[SolveContext],
               node_factory) -> list[AdapterOutcome]:
    """Run the contexts of one seed sweep as a single replica batch.

    The solve path guarantees all contexts share one config and differ only
    in seed, so the sweep maps onto
    :func:`repro.congest.batch.simulate_replicas` with the adapter's own
    network construction (``CongestNetwork(graph, id_seed=seed)``) --
    producing outcomes bit-identical to calling the solo adapter per seed.
    """
    seeds = [ctx.seed for ctx in ctxs]
    networks = [CongestNetwork(graph, id_seed=seed) for seed in seeds]
    network_iter = iter(networks)
    # The factories built here close over the sweep's config and ignore the
    # node label, so the batch may verify one template per replica instead
    # of constructing all B * n node instances.
    results = simulate_replicas(
        graph, node_factory, seeds,
        engine=ctxs[0]["engine"], max_rounds=ctxs[0]["max_rounds"],
        network_factory=lambda seed: next(network_iter),
        uniform_factory=True)
    return [AdapterOutcome(
                output={node for node, joined in result.outputs.items()
                        if joined},
                rounds=result.rounds,
                metrics=_sim_metrics(result),
                payload={"node_ids": dict(network.ids), "result": result})
            for network, result in zip(networks, results)]


def _batch_det_ruling_sim(graph: nx.Graph,
                          ctxs: list[SolveContext]) -> list[AdapterOutcome]:
    outcomes = _batch_sim(graph, ctxs, DetRulingSetNode)
    for outcome in outcomes:
        node_ids = outcome.payload["node_ids"]
        outcome.payload["greedy_reference_ids"] = node_ids
    return outcomes


def _batch_luby_sim(graph: nx.Graph,
                    ctxs: list[SolveContext]) -> list[AdapterOutcome]:
    return _batch_sim(graph, ctxs, LubyMISNode)


def _batch_power_luby_sim(graph: nx.Graph,
                          ctxs: list[SolveContext]) -> list[AdapterOutcome]:
    k = ctxs[0]["k"]
    return _batch_sim(graph, ctxs, lambda node: PowerLubyMISNode(k))


def _batch_power_det_ruling_sim(graph: nx.Graph,
                                ctxs: list[SolveContext],
                                ) -> list[AdapterOutcome]:
    k = ctxs[0]["k"]
    return _batch_sim(graph, ctxs, lambda node: PowerDetRulingNode(k))


def register_builtin_algorithms(registry: SolverRegistry) -> SolverRegistry:
    """Register every solver in the codebase (one registration = everywhere).

    The names are stable public API (locked by the surface snapshot test);
    the scenario runner, the benchmarks and the CLI all resolve them through
    this registry.
    """
    register = registry.register
    # MIS of G^k.
    register(Algorithm(
        "power-mis", "mis-power", _run_power_mis,
        defaults=(("k", 1), ("pre_steps", None), ("post_instances", None)),
        description="Theorem 1.2: randomized MIS of G^k via shattering"),
        default=True)
    register(Algorithm(
        "luby", "mis-power", _run_luby,
        description="Luby's MIS of G [Lub86] (graph-level, 2 rounds per step)"))
    register(Algorithm(
        "luby-power", "mis-power", _run_luby_power, defaults=(("k", 1),),
        description="Luby's algorithm on G^k (Section 8.1 baseline, O(k log n))"))
    register(Algorithm(
        "beeping", "mis-power", _run_beeping, defaults=(("steps", None),),
        description="BeepingMIS of G [Gha17]"))
    register(Algorithm(
        "beeping-power", "mis-power", _run_beeping_power,
        defaults=(("k", 1), ("steps", None)),
        description="BeepingMIS simulated on G^k with ID-tagged beeps (Lemma 8.2)"))
    register(Algorithm(
        "shattering-mis", "mis-power", _run_shattering_mis,
        defaults=(("approach", "two-phase"), ("pre_steps", None)),
        description="Theorem 1.4: revisited shattering MIS of G"))
    register(Algorithm(
        "greedy-mis", "mis-power", _run_greedy_mis, defaults=(("k", 1),),
        randomized=False,
        description="Centralized greedy MIS of G^k (reference, 0 rounds)"))
    # Ruling sets.
    register(Algorithm(
        "det-power-ruling", "ruling-set", _run_det_power_ruling,
        defaults=(("k", 1), ("method", "per-variable"),
                  ("use_network_decomposition", False)),
        description="Theorem 1.1: deterministic (k+1, k^2)-ruling set"),
        default=True)
    register(Algorithm(
        "power-ruling", "ruling-set", _run_power_ruling,
        defaults=(("k", 1), ("beta", 2)),
        description="Corollary 1.3: (k+1, beta*k)-ruling set of G^k"))
    register(Algorithm(
        "aglp", "ruling-set", _run_aglp, defaults=(("k", 1), ("base", 2)),
        randomized=False,
        description="Theorem 6.1 [AGLP89]: digit iteration over the ID coloring"))
    register(Algorithm(
        "id-ruling", "ruling-set", _run_id_ruling, defaults=(("k", 1), ("c", 2)),
        randomized=False,
        description="Corollary 6.2 [SEW13/KMW18]: (k+1, ck) in O(k c n^{1/c})"))
    register(Algorithm(
        "greedy-ruling", "ruling-set", _run_greedy_ruling, defaults=(("alpha", 2),),
        randomized=False,
        description="Centralized greedy (alpha, alpha-1)-ruling set (reference)"))
    # Sparsification.
    register(Algorithm(
        "sparsify", "sparsify-power", _run_sparsify,
        defaults=(("k", 1), ("method", "per-variable")),
        description="Lemma 3.1 / Algorithm 3: power-graph sparsification"),
        default=True)
    register(Algorithm(
        "sparsify-low-diameter", "sparsify-power", _run_sparsify_low_diameter,
        defaults=(("k", 1), ("method", "per-variable")),
        description="Lemma 5.8: diameter-free sparsification via decomposition"))
    register(Algorithm(
        "det-sparsify", "sparsify-stage", _run_det_sparsify,
        defaults=(("power", 1), ("method", "per-variable")),
        description="Algorithm 2 / Lemma 5.1: one DetSparsification run"),
        default=True)
    register(Algorithm(
        "randomized-sparsify", "sparsify-stage", _run_randomized_sparsify,
        defaults=(("power", 1), ("use_kwise", True)),
        description="Algorithm 1: randomized sparsification via sampling"))
    register(Algorithm(
        "kp12-sparsify", "degree-reduction", _run_kp12_sparsify,
        defaults=(("k", 1), ("f", 4.0)),
        description="[KP12/BKP14] degree reduction on G^k"),
        default=True)
    # Clustering.
    register(Algorithm(
        "network-decomposition", "decomposition", _run_network_decomposition,
        defaults=(("separation", 2),),
        description="Theorem A.1: weak-diameter decomposition with separation"),
        default=True)
    register(Algorithm(
        "ball-graph", "ball-graph", _run_ball_graph, defaults=(("k", 1),),
        randomized=False,
        description="Lemma 8.3: distance-k ball graph over a greedy ruling set"),
        default=True)
    # Simulator-native drivers.  Their `engine` key selects the round
    # engine ("sync" / "active-set" / "vector") and is seed-neutral: all
    # engines derive the same seed and produce bit-identical reports, so a
    # provenance recorded under one engine replays on any other.
    register(Algorithm(
        "det-ruling-sim", "mis-power", _run_det_ruling_sim,
        defaults=(("engine", "sync"), ("max_rounds", 10_000)),
        seed_neutral=("engine",),
        simulator_native=True, randomized=False,
        run_batch=_batch_det_ruling_sim,
        description="Deterministic greedy MIS by ID minima on the "
                    "message-passing runtime"))
    register(Algorithm(
        "luby-sim", "mis-power", _run_luby_sim,
        defaults=(("engine", "sync"), ("max_rounds", 10_000)),
        seed_neutral=("engine",),
        simulator_native=True,
        run_batch=_batch_luby_sim,
        description="Luby's MIS of G on the message-passing runtime"))
    register(Algorithm(
        "beeping-sim", "mis-power", _run_beeping_sim,
        defaults=(("engine", "sync"), ("max_steps", 200), ("max_rounds", 10_000)),
        seed_neutral=("engine",),
        simulator_native=True,
        description="BeepingMIS of G on the message-passing runtime"))
    register(Algorithm(
        "power-luby-sim", "mis-power", _run_power_luby_sim,
        defaults=(("engine", "sync"), ("k", 1), ("max_rounds", 10_000)),
        seed_neutral=("engine",),
        simulator_native=True,
        run_batch=_batch_power_luby_sim,
        description="Luby's MIS of G^k by k-hop flooding (2k rounds per "
                    "G^k step) on the message-passing runtime"))
    register(Algorithm(
        "power-det-ruling-sim", "mis-power", _run_power_det_ruling_sim,
        defaults=(("engine", "sync"), ("k", 1), ("max_rounds", 10_000)),
        seed_neutral=("engine",),
        simulator_native=True, randomized=False,
        run_batch=_batch_power_det_ruling_sim,
        description="Deterministic greedy MIS of G^k by ID minima "
                    "((k+1,k)-ruling set of G) on the message-passing runtime"))
    return registry

"""The unified typed solver API: ``repro.solve(graph, algorithm_or_problem)``.

Every algorithm in the library -- MIS variants, ruling sets (including the
AGLP / ID-based baselines), sparsification, network decomposition, ball
graphs and the simulator-native drivers -- is registered in one
:class:`SolverRegistry` as an :class:`Algorithm` with a declared
:class:`Problem`, a frozen typed config and a uniform entry point::

    import networkx as nx
    from repro import api

    graph = nx.random_regular_graph(4, 60, seed=1)
    report = api.solve(graph, "power-mis", k=2, seed=7)
    report.output          # the MIS of G^2
    report.rounds          # charged CONGEST rounds
    report.certificate.ok  # verified by the problem's certifier
    report.provenance      # algorithm, config, derived seed, graph fingerprint

Solves are **verified by default**: the problem family's certifier (the
same checks the scenario runner's oracle layer applies) runs on every
``solve(..., verify=True)`` and its :class:`Certificate` is attached to the
report.  Passing a problem-family name (``"mis-power"``) instead of an
algorithm dispatches to the family's default algorithm.  ``replay`` re-runs
a report's provenance block bit-for-bit.

The scenario runner (:mod:`repro.scenarios`), the benchmark sweeps and the
``repro`` CLI all dispatch through :data:`REGISTRY`, so registering an
algorithm here makes it available everywhere at once.
"""

from repro.api.adapters import register_builtin_algorithms
from repro.api.certify import Certificate, Check
from repro.api.problems import Problem
from repro.api.registry import (
    AdapterOutcome,
    Algorithm,
    SolveContext,
    SolvePlan,
    SolverRegistry,
    new_registry,
)
from repro.api.report import (
    Provenance,
    RunReport,
    graph_fingerprint,
    invalidate_fingerprint,
)
from repro.api.serialize import report_from_json, report_to_json

__all__ = [
    "AdapterOutcome",
    "Algorithm",
    "Certificate",
    "Check",
    "Problem",
    "Provenance",
    "REGISTRY",
    "RunReport",
    "SolveContext",
    "SolvePlan",
    "SolverRegistry",
    "default_solver_registry",
    "graph_fingerprint",
    "invalidate_fingerprint",
    "new_registry",
    "replay",
    "report_from_json",
    "report_to_json",
    "solve",
    "solve_batch",
]


def default_solver_registry() -> SolverRegistry:
    """Build a fresh registry with all builtin problems and algorithms."""
    return register_builtin_algorithms(new_registry())


#: The shared default registry (rebuilt on import in worker processes, so
#: its contents must stay a pure function of the library code).
REGISTRY = default_solver_registry()

#: Uniform solve against the default registry (also ``repro.solve``).
solve = REGISTRY.solve

#: Batched seed sweep against the default registry (``repro.solve_batch``):
#: one certified RunReport per seed, bit-identical to per-seed ``solve``
#: calls, executed as a single replica batch when the algorithm supports it.
solve_batch = REGISTRY.solve_batch

#: Re-run a provenance block bit-for-bit (also ``repro.replay``).
replay = REGISTRY.replay

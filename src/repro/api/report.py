"""The uniform solve result: :class:`RunReport` with :class:`Provenance`.

A :class:`RunReport` unifies the per-module result dataclasses
(``LubyResult``, ``PowerMISResult``, ``DetRulingSetResult``, ...) behind one
shape: the solution node set, the charged/simulated round count, JSON-ready
``metrics``, live ``payload`` objects consumed by the certifier, the
provenance block identifying the run, and (when verification is on) the
attached :class:`~repro.api.certify.Certificate`.

Reproducibility contract: the provenance block alone identifies the run.
``provenance.seed`` is the concrete integer that drove every random choice
(derived with :func:`repro.hashing.seeds.derive_seed` when the caller did
not pass one), so ``solve(graph, provenance.algorithm, seed=provenance.seed,
**provenance.config_dict)`` reproduces the report bit-for-bit on any graph
with the same fingerprint -- :func:`repro.api.replay` does exactly that.
"""

from __future__ import annotations

import hashlib
import weakref
from dataclasses import dataclass, field
from typing import Any, Hashable, Mapping

import networkx as nx

from repro.api.certify import Certificate

Node = Hashable

__all__ = ["Provenance", "RunReport", "graph_fingerprint",
           "invalidate_fingerprint"]

#: Per-object fingerprint memo.  Keyed by graph *identity* (weak references,
#: so retired graphs cost nothing) -- see ``graph_fingerprint`` for the
#: invalidation contract.
_FINGERPRINT_MEMO: "weakref.WeakKeyDictionary[nx.Graph, str]" = (
    weakref.WeakKeyDictionary())

#: Edge count at which ``graph_fingerprint`` switches from the sorted form
#: to the streaming merkle-style form.  Below the threshold the historical
#: sorted digest is kept bit-for-bit (locked by the golden fingerprint
#: tests); above it sorting every edge label would dominate the solve path,
#: so the fingerprint is the one-pass combination of per-item hashes.
_STREAMING_FINGERPRINT_THRESHOLD = 100_000


def invalidate_fingerprint(graph: nx.Graph) -> None:
    """Drop the memoized fingerprint of ``graph`` (call after mutating it)."""
    _FINGERPRINT_MEMO.pop(graph, None)


def graph_fingerprint(graph: nx.Graph) -> str:
    """A stable hex fingerprint of the graph's labelled structure.

    Hashes the sorted node and edge lists (by string representation), so the
    value is independent of insertion order, process and Python invocation --
    the graph-identity half of the reproducibility contract.

    The value is memoized per graph *object* (weak-ref keyed): computing it
    re-sorts every node and edge, which is a hot-path cost the solve and
    service layers would otherwise pay on every request.  Invalidation
    contract: the memo is keyed by object identity and is **not** watched
    for mutation -- a graph mutated after its first fingerprint keeps
    returning the stale value until :func:`invalidate_fingerprint` is
    called (or a new graph object is built).  The library itself never
    mutates a graph after fingerprinting it.
    """
    try:
        cached = _FINGERPRINT_MEMO.get(graph)
    except TypeError:  # non-weakrefable graph subclass: compute uncached
        cached = None
    else:
        if cached is not None:
            return cached
    if graph.number_of_edges() >= _STREAMING_FINGERPRINT_THRESHOLD:
        fingerprint = _streaming_fingerprint(graph)
    else:
        fingerprint = _sorted_fingerprint(graph)
    try:
        _FINGERPRINT_MEMO[graph] = fingerprint
    except TypeError:
        pass
    return fingerprint


def _sorted_fingerprint(graph: nx.Graph) -> str:
    """The historical sorted-list digest (kept bit-for-bit for small graphs)."""
    digest = hashlib.sha256()
    digest.update(f"n={graph.number_of_nodes()};m={graph.number_of_edges()};".encode())
    for node in sorted(graph.nodes(), key=str):
        digest.update(f"v:{node!r};".encode())
    for u, v in sorted((sorted((u, v), key=str) for u, v in graph.edges()),
                       key=lambda edge: (str(edge[0]), str(edge[1]))):
        digest.update(f"e:{u!r}|{v!r};".encode())
    return digest.hexdigest()[:16]


_HASH_MODULUS = 1 << 256


def _streaming_fingerprint(graph: nx.Graph) -> str:
    """One-pass merkle-style digest: order-independent without sorting.

    Each node and each (endpoint-normalised) edge is hashed independently
    and the per-item digests are combined with modular addition -- a
    commutative, associative accumulator, so the value is independent of
    iteration order exactly like the sorted form, but computed in a single
    pass over the edge list with O(1) working memory (two 256-bit
    accumulators) instead of materialising and sorting ``O(E)`` label
    tuples.  Node/edge multisets are free of duplicates in a simple graph,
    so the additive combination has no cancellation pitfall.

    The item encodings reuse the sorted form's ``v:``/``e:`` framing, but
    the combined digest is intentionally domain-separated (``merkle;``
    prefix): the two forms are distinct hash functions and are never
    expected to collide across the size threshold.
    """
    node_acc = 0
    for node in graph.nodes():
        item = hashlib.sha256(f"v:{node!r};".encode()).digest()
        node_acc = (node_acc + int.from_bytes(item, "big")) % _HASH_MODULUS
    edge_acc = 0
    for u, v in graph.edges():
        a, b = sorted((u, v), key=str)
        item = hashlib.sha256(f"e:{a!r}|{b!r};".encode()).digest()
        edge_acc = (edge_acc + int.from_bytes(item, "big")) % _HASH_MODULUS
    digest = hashlib.sha256()
    digest.update(
        f"merkle;n={graph.number_of_nodes()};m={graph.number_of_edges()};".encode())
    digest.update(node_acc.to_bytes(32, "big"))
    digest.update(edge_acc.to_bytes(32, "big"))
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class Provenance:
    """Who computed what, on which graph, with which randomness."""

    algorithm: str
    problem: str
    config: tuple[tuple[str, Any], ...]
    seed: int
    seed_policy: str  # "explicit" (caller-supplied) or "derived" (derive_seed)
    graph_fingerprint: str
    n: int
    m: int
    library_version: str = ""

    @property
    def config_dict(self) -> dict[str, Any]:
        return dict(self.config)

    @classmethod
    def from_row(cls, row: Mapping[str, Any]) -> "Provenance":
        """Rebuild a provenance block from its :meth:`to_row` dict.

        Inverse of :meth:`to_row` up to JSON's type system: the ``config``
        mapping is re-canonicalised into the sorted tuple form, so
        ``Provenance.from_row(p.to_row()) == p`` for every provenance the
        solve path produces.
        """
        return cls(
            algorithm=str(row["algorithm"]),
            problem=str(row["problem"]),
            config=tuple(sorted(dict(row.get("config") or {}).items())),
            seed=int(row["seed"]),
            seed_policy=str(row.get("seed_policy", "explicit")),
            graph_fingerprint=str(row["graph_fingerprint"]),
            n=int(row["n"]),
            m=int(row["m"]),
            library_version=str(row.get("library_version", "")),
        )

    def to_row(self) -> dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "problem": self.problem,
            "config": self.config_dict,
            "seed": self.seed,
            "seed_policy": self.seed_policy,
            "graph_fingerprint": self.graph_fingerprint,
            "n": self.n,
            "m": self.m,
            "library_version": self.library_version,
        }


@dataclass
class RunReport:
    """The uniform result of one :func:`repro.solve` call."""

    output: set[Node]
    rounds: int
    provenance: Provenance
    metrics: dict[str, Any] = field(default_factory=dict)
    #: Live Python objects consumed by the certifier and downstream callers
    #: (sparsification sequences, ID assignments, verification bounds, the
    #: native result object under ``"result"``); never serialised.
    payload: dict[str, Any] = field(default_factory=dict)
    certificate: Certificate | None = None

    @property
    def algorithm(self) -> str:
        return self.provenance.algorithm

    @property
    def problem(self) -> str:
        return self.provenance.problem

    @property
    def verified(self) -> bool:
        """True iff a certificate was produced and every check passed."""
        return self.certificate is not None and self.certificate.ok

    @property
    def ok(self) -> bool:
        """Certificate verdict; an unverified report is not counted as failed."""
        return self.certificate.ok if self.certificate is not None else True

    @property
    def result(self) -> Any:
        """The algorithm's native result object (``None`` for plain-set outputs)."""
        return self.payload.get("result")

    def to_row(self) -> dict[str, Any]:
        """A JSON-serialisable row (for stores, tables and benchmark sweeps)."""
        row: dict[str, Any] = {
            "algorithm": self.algorithm,
            "problem": self.problem,
            "rounds": self.rounds,
            "output_size": len(self.output),
            "metrics": dict(self.metrics),
            "provenance": self.provenance.to_row(),
        }
        if self.certificate is not None:
            row["certificate"] = self.certificate.to_row()
        return row

    def summary(self) -> str:
        verdict = ("unverified" if self.certificate is None
                   else self.certificate.summary())
        return (f"{self.algorithm} [{self.problem}] on "
                f"n={self.provenance.n} m={self.provenance.m} "
                f"(seed={self.provenance.seed}, {self.provenance.seed_policy}): "
                f"|output|={len(self.output)}, rounds={self.rounds}, {verdict}")

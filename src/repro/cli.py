"""The ``repro`` console entry point (also ``python -m repro``).

One command wraps the library's two operational surfaces:

``repro solve <workload> <algorithm>``
    Dispatch one certified solve through :mod:`repro.api` (see
    :mod:`repro.api.cli`).
``repro algorithms``
    List the registered algorithms and problem families.
``repro scenarios <list|families|run|compact> ...``
    The scenario sweep CLI of :mod:`repro.scenarios.cli` (e.g.
    ``repro scenarios run --smoke``).
``repro serve``
    Serve ``repro.solve`` over JSON/HTTP with the content-addressed cache
    (see :mod:`repro.service.server`).
``repro fleet <coordinator|worker|status>``
    Distributed solve fleet: the affinity-routing front door, enrollable
    workers, and a status snapshot (see :mod:`repro.fleet.cli`).
``repro cache <warm|stats|compact>``
    Operate the persistent solve-cache tier -- replay a recorded traffic
    trace to pre-warm a node, inspect shard occupancy, compact dead rows
    (see :mod:`repro.service.cache_cli`).
``repro --version``
    Print the library version.
"""

from __future__ import annotations

import sys
from typing import Sequence

__all__ = ["main"]

_USAGE = """usage: repro <command> ...

commands:
  solve <workload> <algorithm>   run one certified solve (repro solve --help)
  algorithms                     list registered algorithms and problems
  scenarios <list|families|run|compact>
                                 scenario sweeps (repro scenarios run --smoke)
  serve                          JSON/HTTP solve service (repro serve --help)
  fleet <coordinator|worker|status>
                                 distributed solve fleet (repro fleet --help)
  cache <warm|stats|compact>     persistent solve-cache tier
                                 (repro cache warm --trace service.jsonl)
  --version                      print the library version
"""


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_USAGE, end="")
        return 0
    command, rest = argv[0], argv[1:]
    if command == "--version":
        from repro import __version__

        print(f"repro {__version__}")
        return 0
    if command == "scenarios":
        from repro.scenarios.cli import main as scenarios_main

        return scenarios_main(rest)
    if command == "serve":
        from repro.service.server import main as serve_main

        return serve_main(rest)
    if command == "fleet":
        from repro.fleet.cli import main as fleet_main

        return fleet_main(rest)
    if command == "cache":
        from repro.service.cache_cli import main as cache_main

        return cache_main(rest)
    if command in ("solve", "algorithms"):
        from repro.api.cli import main as api_main

        return api_main(argv)
    print(f"repro: unknown command {command!r}\n\n{_USAGE}",
          end="", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())

"""Result-directory anchoring shared by stores, caches and benchmarks.

Historically every consumer re-derived ``benchmarks/results/`` with its own
``os.path.dirname`` walk, which silently mis-anchors when the package is
imported from an installed location (``site-packages/repro`` has no
``benchmarks/`` sibling four levels up).  This module is the single home of
that decision:

* ``REPRO_RESULTS_DIR`` (environment variable), when set, wins outright --
  the operational escape hatch for services, CI and installed packages;
* otherwise, when the package is imported from a source tree (a
  ``benchmarks/`` directory next to ``src/``), results anchor there, so the
  CLI and stores behave consistently from any working directory;
* otherwise results fall back to ``benchmarks/results`` relative to the
  current working directory (the best an installed package can do without
  configuration).
"""

from __future__ import annotations

import os

__all__ = ["repo_root", "results_dir", "results_path"]


def repo_root() -> str | None:
    """The source-tree checkout root, or ``None`` for installed packages.

    Detected structurally: the package lives at ``<root>/src/repro`` and the
    root carries a ``benchmarks/`` directory.  No marker file is required,
    so fresh checkouts and CI workspaces are recognised as-is.
    """
    package_dir = os.path.dirname(os.path.abspath(__file__))
    candidate = os.path.dirname(os.path.dirname(package_dir))
    if os.path.isdir(os.path.join(candidate, "benchmarks")):
        return candidate
    return None


def results_dir() -> str:
    """The directory results, stores and caches anchor to (not created)."""
    override = os.environ.get("REPRO_RESULTS_DIR")
    if override:
        return override
    root = repo_root()
    if root is not None:
        return os.path.join(root, "benchmarks", "results")
    return os.path.join("benchmarks", "results")


def results_path(*parts: str, create: bool = False) -> str:
    """A path under :func:`results_dir`; ``create=True`` makes the parent."""
    path = os.path.join(results_dir(), *parts)
    if create:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
    return path

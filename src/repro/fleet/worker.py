"""The fleet worker: a ``repro serve`` node that enrolls itself.

``repro fleet worker --coordinator URL`` boots the *full* single-box
service stack -- :class:`~repro.service.scheduler.SolveScheduler` behind
:class:`~repro.service.server.ServiceServer`, with its two-tier cache,
coalescing, admission control and metrics -- and then:

* **enrolls** with the coordinator, advertising its URL and capability
  tags (round engines available, grouped ``/solve_batch`` support, shard
  count, cache warmth);
* **heartbeats** at the interval the lease prescribes (TTL/3), carrying a
  load/warmth snapshot (queue depths per shard, pending count, cache
  summary) that feeds the coordinator's stealing decisions and
  ``repro_fleet_*`` gauges;
* **re-enrolls** automatically when a heartbeat answers 410 Gone -- the
  coordinator restarted or expired the lease while this worker was
  partitioned away -- so a healed worker rejoins the routing set without
  operator intervention;
* **warm-reads from peers** (unless ``--no-peer-warm``): a local cache
  miss first asks the coordinator's ``GET /cache/<key>`` fan-out before
  recomputing, so a worker that inherits remapped fingerprints after
  membership churn serves them from the fleet's shared warmth.  The hop
  rides its own short-timeout client and circuit breaker -- a struggling
  coordinator degrades to cold solves, never to blocked lookups.

Two fleet-only routes ride on the service server's extensibility hooks:

``POST /solve_batch``
    ``{"workload", "algorithm", "config", "graph_seed", "verify",
    "seeds": [..]}`` -- the coordinator's grouped dispatch.  Runs the
    whole seed sweep as one batched-replica array program
    (:meth:`SolveScheduler.submit_batch`) and answers ``{"rows": [...]}``
    in the order of the deduplicated ``seeds`` list.
``GET /fleet/status``
    Enrollment state: worker id, coordinator URL, lease generation,
    heartbeat counters, current capabilities.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import socket
import threading
import time
from typing import Any, Mapping, Sequence
from urllib.parse import quote

from repro.service.client import ServiceClient, ServiceError
from repro.service.scheduler import SolveRequest, SolveScheduler
from repro.service.server import ServiceServer, SolveTimeout
from repro.fleet.transport import CircuitBreaker

__all__ = ["FleetWorker", "add_worker_arguments", "default_worker_id",
           "serve_worker"]


def default_worker_id() -> str:
    """``<host>-<pid>``: unique per process, stable across re-enrolls."""
    return f"{socket.gethostname()}-{os.getpid()}"


def _engine_names() -> list[str]:
    """Canonical round-engine names this process can run."""
    try:
        from repro.congest import vector_engine  # noqa: F401 - registers
    except Exception:  # noqa: BLE001 - numpy-less builds still enroll
        pass
    from repro.congest.engine import _ENGINES

    return sorted({engine_class.name for engine_class in _ENGINES.values()})


class _WorkerServer(ServiceServer):
    """A service server with the two fleet routes layered on."""

    def __init__(self, fleet: "FleetWorker", **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self.fleet = fleet

    def handle_extra_get(self, path: str) -> tuple[int, dict[str, Any]] | None:
        if path == "/fleet/status":
            return 200, self.fleet.status_row()
        return None

    def handle_extra_post(self, path: str, obj: dict[str, Any],
                          ) -> tuple[int, dict[str, Any]] | None:
        if path != "/solve_batch":
            return None
        seeds_field = obj.pop("seeds", None)
        if (not isinstance(seeds_field, list) or not seeds_field
                or not all(isinstance(seed, int) for seed in seeds_field)):
            raise ValueError(
                "solve_batch requires 'seeds': a non-empty list of ints")
        request = SolveRequest.from_obj(obj)
        future = asyncio.run_coroutine_threadsafe(
            self.scheduler.submit_batch(request, list(seeds_field)),
            self._loop)
        try:
            responses = future.result(timeout=self.request_timeout_s)
        except TimeoutError:
            future.cancel()
            raise SolveTimeout(
                f"solve_batch did not complete within "
                f"{self.request_timeout_s:.1f}s") from None
        return 200, {"rows": [response.to_row() for response in responses],
                     "count": len(responses)}


class FleetWorker:
    """One enrollable node: server + enrollment + heartbeat daemon."""

    def __init__(self, coordinator_url: str, *,
                 worker_id: str | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 advertise_url: str | None = None,
                 scheduler: SolveScheduler | None = None,
                 enroll_timeout_s: float = 30.0,
                 heartbeat_interval_s: float | None = None,
                 quiet: bool = True,
                 request_timeout_s: float = 600.0,
                 peer_warm_reads: bool = True) -> None:
        self.coordinator_url = coordinator_url.rstrip("/")
        self.worker_id = worker_id or default_worker_id()
        self.server = _WorkerServer(
            self, host=host, port=port, scheduler=scheduler, quiet=quiet,
            request_timeout_s=request_timeout_s)
        self._advertise_url = advertise_url
        self.enroll_timeout_s = float(enroll_timeout_s)
        #: ``None`` until enrolled; then the lease the coordinator granted.
        self.lease: dict[str, Any] | None = None
        self._heartbeat_interval_override = heartbeat_interval_s
        self.heartbeats_sent = 0
        self.re_enrolls = 0
        self._stop_event = threading.Event()
        self._beat_thread: threading.Thread | None = None
        # Short timeout + client-side backoff: a booting coordinator is
        # the common case, a dead one should fail fast.
        self._coordinator = ServiceClient(self.coordinator_url,
                                          timeout=10.0, retries=4)
        # Peer warm reads ride a *separate* client: no retries and a short
        # timeout, because the fallback (recompute locally) is always
        # available and a slow warm read is worse than a cold solve.
        self.peer_warm_reads = bool(peer_warm_reads)
        self._warm_client = ServiceClient(self.coordinator_url,
                                          timeout=5.0, retries=0)
        self._warm_breaker = CircuitBreaker()
        self.warm_fetches = 0
        self.warm_hits = 0
        if self.peer_warm_reads:
            self.server.scheduler.cache.peer_fetch = self._peer_fetch

    # -------------------------------------------------------------- identity
    @property
    def url(self) -> str:
        return self._advertise_url or self.server.url

    def capabilities(self) -> dict[str, Any]:
        return {
            "engines": _engine_names(),
            "batch": True,
            "shards": self.server.scheduler.shards,
            "inline": self.server.scheduler.inline,
            "cache": self.server.scheduler.cache.warmth_summary(),
        }

    def _status(self) -> dict[str, Any]:
        scheduler = self.server.scheduler
        return {
            "queue_depths": scheduler.queue_depths(),
            "pending": scheduler._pending,
            "cache": scheduler.cache.warmth_summary(),
        }

    # ----------------------------------------------------- peer warm reads
    def _peer_fetch(self, key: str) -> dict[str, Any] | None:
        """Ask the fleet for ``key`` via ``GET /cache/<key>`` on the
        coordinator, which scatters to every *other* worker's cache tier.

        Installed as ``SolveCache.peer_fetch``, so it runs on a local miss
        only -- outside the cache lock and (via the scheduler's executor
        hop) off the event loop.  A fleet-wide miss (404) is a clean
        ``None``; transport trouble trips this worker's own breaker and
        re-raises, which the cache counts as a peer error and treats as a
        miss -- a struggling coordinator costs one timeout, not one per
        lookup.
        """
        self._warm_breaker.acquire()
        self.warm_fetches += 1
        try:
            row = self._warm_client.request(
                "GET",
                f"/cache/{quote(key)}?exclude={quote(self.worker_id)}")
        except ServiceError as error:
            if error.status in (404, 503):
                # No peer holds the key / no live peers: a clean miss.
                self._warm_breaker.record_success()
                return None
            self._warm_breaker.record_failure()
            raise
        except OSError:
            self._warm_breaker.record_failure()
            raise
        self._warm_breaker.record_success()
        self.warm_hits += 1
        return row

    def status_row(self) -> dict[str, Any]:
        return {
            "worker_id": self.worker_id,
            "url": self.url,
            "coordinator": self.coordinator_url,
            "enrolled": self.lease is not None,
            "lease": dict(self.lease) if self.lease else None,
            "heartbeats_sent": self.heartbeats_sent,
            "re_enrolls": self.re_enrolls,
            "warm_reads": {
                "enabled": self.peer_warm_reads,
                "fetches": self.warm_fetches,
                "hits": self.warm_hits,
                "breaker": self._warm_breaker.state,
            },
            "capabilities": self.capabilities(),
        }

    # ------------------------------------------------------------- lifecycle
    def enroll(self) -> dict[str, Any]:
        """Announce this worker; retried until ``enroll_timeout_s``."""
        deadline = time.monotonic() + self.enroll_timeout_s
        body = {"worker_id": self.worker_id, "url": self.url,
                "capabilities": self.capabilities()}
        last_error: Exception | None = None
        while True:
            try:
                self.lease = self._coordinator.request(
                    "POST", "/fleet/enroll", body)
                return self.lease
            except (ServiceError, OSError) as error:
                last_error = error
                if time.monotonic() >= deadline:
                    raise RuntimeError(
                        f"could not enroll with coordinator "
                        f"{self.coordinator_url}: {last_error}"
                    ) from last_error
                time.sleep(0.25)

    def _heartbeat_interval(self) -> float:
        if self._heartbeat_interval_override is not None:
            return max(0.05, float(self._heartbeat_interval_override))
        lease = self.lease or {}
        return max(0.05, float(lease.get("heartbeat_interval_s", 1.0)))

    def _heartbeat_once(self) -> None:
        try:
            self._coordinator.request(
                "POST", "/fleet/heartbeat",
                {"worker_id": self.worker_id, "status": self._status()})
            self.heartbeats_sent += 1
        except ServiceError as error:
            if error.status == 410:
                # Lease expired (partition, coordinator restart): rejoin.
                try:
                    self.enroll()
                    self.re_enrolls += 1
                except RuntimeError:
                    pass  # coordinator still gone; keep trying next beat
            # Other statuses: transient coordinator trouble, retry later.
        except OSError:
            pass  # coordinator unreachable; the lease protects routing

    def _heartbeat_loop(self) -> None:
        while not self._stop_event.wait(self._heartbeat_interval()):
            self._heartbeat_once()

    def start(self) -> None:
        """Start serving, enroll, and begin heartbeating."""
        self.server.start()
        self.enroll()
        self._beat_thread = threading.Thread(
            target=self._heartbeat_loop, name="repro-fleet-heartbeat",
            daemon=True)
        self._beat_thread.start()

    def stop(self) -> None:
        """Clean shutdown: deregister from the coordinator, then stop."""
        if getattr(self, "_stopped", False):
            return
        self._stopped = True
        self._stop_event.set()
        if self._beat_thread is not None:
            self._beat_thread.join(timeout=5)
        try:
            self._coordinator.request("POST", "/fleet/leave",
                                      {"worker_id": self.worker_id})
        except (ServiceError, OSError):
            pass  # the lease will expire on its own
        self.server.stop()

    def crash(self) -> None:
        """Die *without* deregistering (chaos tests and demos).

        Stops heartbeating and serving but sends no ``/fleet/leave``: the
        coordinator discovers the death the hard way -- transport failures
        followed by lease expiry -- exactly as with a SIGKILLed process.
        """
        if getattr(self, "_stopped", False):
            return
        self._stopped = True
        self._stop_event.set()
        if self._beat_thread is not None:
            self._beat_thread.join(timeout=5)
        self.server.stop()

    def __enter__(self) -> "FleetWorker":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def run_forever(self) -> None:
        """Foreground mode for the CLI: serve until interrupted."""
        self.start()
        try:
            self._stop_event.wait()
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()


# ---------------------------------------------------------------------------
# ``repro fleet worker``
# ---------------------------------------------------------------------------

def add_worker_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--coordinator", required=True,
                        help="coordinator URL, e.g. http://127.0.0.1:8750")
    parser.add_argument("--worker-id", default=None,
                        help="stable worker identity "
                             "(default: <host>-<pid>)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port; 0 picks an ephemeral port "
                             "(the default: the coordinator learns the "
                             "URL from enrollment)")
    parser.add_argument("--port-file", default=None,
                        help="write the bound port to this file")
    parser.add_argument("--advertise-url", default=None,
                        help="URL to enroll with when the bind address "
                             "is not reachable from the coordinator")
    parser.add_argument("--shards", type=int, default=None,
                        help="worker shards (default: min(4, cpu count))")
    parser.add_argument("--inline-workers", action="store_true",
                        help="run solves on in-process threads instead of "
                             "a process pool (tests / constrained CI)")
    parser.add_argument("--max-pending", type=int, default=256,
                        help="admission limit on queued jobs (429 beyond)")
    parser.add_argument("--admission-target", type=float, default=None,
                        dest="admission_target", metavar="SECONDS",
                        help="refuse (429) when a shard's measured service "
                             "time predicts a longer queue wait than this")
    parser.add_argument("--cache-path", default=None,
                        help="persistent cache store (default: per-user "
                             "sharded directory; co-located workers may "
                             "share one to pool warmth, or use "
                             "--no-persist)")
    parser.add_argument("--no-persist", action="store_true",
                        help="disable the persistent cache tier")
    parser.add_argument("--memory-entries", type=int, default=1024,
                        help="in-process LRU capacity (reports)")
    parser.add_argument("--cache-shards", type=int, default=None,
                        help="key shards in the persistent cache directory")
    parser.add_argument("--cache-budget-mb", type=float, default=None,
                        dest="cache_budget_mb", metavar="MB",
                        help="on-disk cache size budget; eviction (TTL, "
                             "then LRU) keeps the store under it")
    parser.add_argument("--cache-ttl", type=float, default=None,
                        dest="cache_ttl", metavar="SECONDS",
                        help="expire persistent cache entries older than "
                             "this")
    parser.add_argument("--no-peer-warm", action="store_true",
                        help="disable coordinator-mediated warm reads "
                             "from fleet peers on local cache misses")
    parser.add_argument("--enroll-timeout", type=float, default=30.0,
                        help="seconds to keep retrying the initial enroll")
    parser.add_argument("--no-metrics", action="store_true",
                        help="disable /metrics and metric recording")
    parser.add_argument("--no-tracing", action="store_true",
                        help="disable span recording and /trace lookups")
    parser.add_argument("--verbose", action="store_true",
                        help="log every HTTP request")


def serve_worker(args: argparse.Namespace) -> int:
    from repro.service.server import build_cache_from_args

    cache = build_cache_from_args(args)
    scheduler_kwargs: dict[str, Any] = {}
    if getattr(args, "no_metrics", False):
        scheduler_kwargs["metrics"] = None
    if getattr(args, "no_tracing", False):
        scheduler_kwargs["tracing"] = False
    scheduler = SolveScheduler(cache=cache, shards=args.shards,
                               max_pending=args.max_pending,
                               admission_target_s=getattr(
                                   args, "admission_target", None),
                               inline=args.inline_workers,
                               **scheduler_kwargs)
    worker = FleetWorker(args.coordinator, worker_id=args.worker_id,
                         host=args.host, port=args.port,
                         advertise_url=args.advertise_url,
                         scheduler=scheduler,
                         enroll_timeout_s=args.enroll_timeout,
                         quiet=not args.verbose,
                         peer_warm_reads=not getattr(
                             args, "no_peer_warm", False))
    host, port = worker.server.address
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as handle:
            handle.write(str(port))
    print(f"[repro.fleet] worker {worker.worker_id!r} on "
          f"http://{host}:{port} -> coordinator {worker.coordinator_url} "
          f"(shards={scheduler.shards}, "
          f"workers={'inline' if scheduler.inline else 'process-pool'}, "
          f"cache={cache.path or 'memory-only'}, "
          f"tracing={'off' if scheduler.trace_recorder is None else 'on'})",
          flush=True)
    worker.run_forever()
    return 0

"""Distributed solve fleet: registry, affinity routing, failure containment.

The fifth subsystem layers *horizontal scale-out* over the service stack
without changing its semantics: a fleet is N independent ``repro serve``
nodes (:mod:`repro.fleet.worker`) behind one asyncio front door
(:mod:`repro.fleet.coordinator`), held together by a lease-based worker
registry (:mod:`repro.fleet.registry`) and a retrying, circuit-breaking
JSON/HTTP transport (:mod:`repro.fleet.transport`).

Determinism does the heavy lifting.  Every solve is content-addressed by
``solve_key(graph_fingerprint, algorithm, config, seed)``, so the
distributed-systems problems that usually need protocol work collapse:

* **Affinity routing** is pure optimisation -- consistent hashing sends a
  graph's solves to the worker whose cache is warm for it, but *any*
  worker computes the bit-identical report.
* **Retries are idempotent replay** -- re-sending a failed request to
  another worker needs no dedup tables or fencing; at worst it recomputes
  the exact same bytes.
* **Speculative scatter** needs no quorum -- the first successful answer
  is as good as any other, and disagreeing answers are impossible by
  construction.

Failures are contained MAAS-style: fan-outs collect a ``(discovered,
failures)`` pair per worker and resolve it with
:func:`~repro.fleet.transport.get_best_discovered_result` -- any success
wins, otherwise the *most informative* failure is raised (a request-level
4xx beats a solver 5xx beats load shedding beats a connection error).

Entry points: ``repro fleet coordinator``, ``repro fleet worker
--coordinator URL``, ``repro fleet status`` (:mod:`repro.fleet.cli`).
"""

from repro.fleet.coordinator import FleetCoordinator, HashRing
from repro.fleet.registry import WorkerInfo, WorkerRegistry
from repro.fleet.tracing import (
    assemble_trace,
    federate_prometheus,
    render_span_tree,
)
from repro.fleet.transport import (
    CircuitBreaker,
    CircuitOpenError,
    FleetError,
    NoLiveWorkersError,
    TransportError,
    WorkerLink,
    get_best_discovered_result,
)
from repro.fleet.worker import FleetWorker

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "FleetCoordinator",
    "FleetError",
    "FleetWorker",
    "HashRing",
    "NoLiveWorkersError",
    "TransportError",
    "WorkerInfo",
    "WorkerLink",
    "WorkerRegistry",
    "assemble_trace",
    "federate_prometheus",
    "get_best_discovered_result",
    "render_span_tree",
]

"""``repro fleet <coordinator|worker|status>``.

The operational surface of :mod:`repro.fleet`:

``repro fleet coordinator [--port 8750 --batch-window 0.02 ...]``
    Run the front door: registry, affinity routing, scatter, grouping.
``repro fleet worker --coordinator http://HOST:PORT [...]``
    Boot a full solve server and enroll it with the coordinator.
``repro fleet status --coordinator http://HOST:PORT``
    One-shot snapshot of the fleet: workers, dispatch counters, affinity
    hit rate (pretty-printed ``GET /stats``).
"""

from __future__ import annotations

import argparse
import json
from typing import Sequence

__all__ = ["main"]


def _status(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.coordinator, timeout=args.timeout)
    try:
        stats = client.request("GET", "/stats")
    except (ServiceError, OSError) as error:
        print(f"repro fleet status: coordinator {args.coordinator} "
              f"unreachable: {error}")
        return 1
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    counters = stats.get("counters", {})
    workers = stats.get("workers", [])
    print(f"coordinator {args.coordinator}  "
          f"uptime {stats.get('uptime_s', 0.0):.1f}s  "
          f"workers {len(workers)}  "
          f"affinity-hit-rate {stats.get('affinity_hit_rate', 0.0):.2%}")
    print("counters: " + "  ".join(
        f"{name}={counters[name]}" for name in sorted(counters)))
    failures = stats.get("failures_by_class") or {}
    if failures:
        print("failures: " + "  ".join(
            f"{name}={failures[name]}" for name in sorted(failures)))
    tracing = stats.get("tracing")
    if tracing is not None:
        print(f"tracing: traces={tracing.get('traces', 0)}  "
              f"spans={tracing.get('spans', 0)}  "
              f"recorded={tracing.get('recorded_total', 0)}  "
              f"dropped={tracing.get('dropped_total', 0)}  "
              f"evicted={tracing.get('evicted_traces_total', 0)}")
    for row in workers:
        cache = (row.get("capabilities") or {}).get("cache") or {}
        warmth = row.get("cache_warmth") or {}
        shard_vector = warmth.get("shards") or []
        warm = (f"warm={warmth.get('persistent_entries', 0)}rows"
                f"/{(warmth.get('persistent_bytes') or 0) // 1024}KiB"
                f" shards={'/'.join(str(n) for n in shard_vector)}"
                if shard_vector else
                f"warm={warmth.get('persistent_entries', 0)}rows")
        print(f"  worker {row['worker_id']}  {row['url']}  "
              f"gen={row.get('generation')}  "
              f"beats={row.get('heartbeats')}  "
              f"age={row.get('heartbeat_age_s', 0.0):.1f}s  "
              f"queue={row.get('queue_depth', 0)}  "
              f"cache-hit-rate={cache.get('hit_rate', 0.0):.2f}  "
              f"{warm}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro fleet",
        description="Distributed solve fleet: coordinator, workers, "
                    "status.")
    commands = parser.add_subparsers(dest="command", required=True)

    from repro.fleet.coordinator import add_coordinator_arguments
    from repro.fleet.worker import add_worker_arguments

    coordinator = commands.add_parser(
        "coordinator", help="run the fleet front door")
    add_coordinator_arguments(coordinator)

    worker = commands.add_parser(
        "worker", help="run one solve worker and enroll it")
    add_worker_arguments(worker)

    status = commands.add_parser(
        "status", help="print a snapshot of the fleet")
    status.add_argument("--coordinator", required=True,
                        help="coordinator URL")
    status.add_argument("--timeout", type=float, default=10.0)
    status.add_argument("--json", action="store_true",
                        help="print the raw /stats document")

    args = parser.parse_args(argv)
    if args.command == "coordinator":
        from repro.fleet.coordinator import serve_coordinator

        return serve_coordinator(args)
    if args.command == "worker":
        from repro.fleet.worker import serve_worker

        return serve_worker(args)
    return _status(args)


if __name__ == "__main__":
    raise SystemExit(main())

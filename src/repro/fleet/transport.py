"""Coordinator -> worker RPC: JSON/HTTP with retries and circuit breaking.

The fleet speaks the same stdlib JSON/HTTP protocol as ``repro serve`` --
a worker *is* a ``ServiceServer`` -- so the transport layer is a thin
hardening wrapper around :class:`~repro.service.client.ServiceClient`:

* **Backoff retries** come from the client itself (``retries=N`` with
  exponential backoff + jitter on connection errors);
* **Circuit breaking** lives here: after ``failure_threshold`` consecutive
  transport failures a worker's circuit opens and calls fail fast with
  :class:`CircuitOpenError` for ``reset_after_s`` seconds, then a single
  half-open probe decides between closing it and re-opening -- a dead
  worker costs one timeout, not one timeout per request;
* **Idempotent replay** is free by construction: every solve is content-
  addressed by its ``solve_key``, so re-sending a request -- to the same
  worker after a reconnect, or to a different worker after a failure --
  either hits the cache or deterministically recomputes the bit-identical
  report.  The coordinator retries without bookkeeping or dedup tables.

Failure taxonomy (what the resolver ranks):

* :class:`~repro.service.client.ServiceError` -- the worker *answered*
  with an HTTP error.  4xx describes the request (it would fail on every
  worker); 5xx describes the solve; 429 describes that worker's load.
* :class:`TransportError` -- the worker could not be reached or died
  mid-request (connection refused/reset, timeout).  Says nothing about
  the request; retry elsewhere.
* :class:`CircuitOpenError` -- we did not even try; the worker's recent
  history says it is down.
"""

from __future__ import annotations

import http.client
import threading
import time
from typing import Any, Callable, Mapping

from repro.service.client import ServiceClient, ServiceError

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "FleetError",
    "NoLiveWorkersError",
    "TransportError",
    "WorkerLink",
    "get_best_discovered_result",
]


class FleetError(RuntimeError):
    """Base class for fleet-level failures."""


class NoLiveWorkersError(FleetError):
    """The registry has no live worker to route to (or all were excluded)."""


class TransportError(FleetError):
    """A worker could not be reached (connection-level, not HTTP-level)."""

    def __init__(self, worker_id: str, message: str,
                 cause: Exception | None = None) -> None:
        super().__init__(f"worker {worker_id!r}: {message}")
        self.worker_id = worker_id
        self.cause = cause


class CircuitOpenError(TransportError):
    """The worker's circuit is open: failing fast instead of retrying it."""

    def __init__(self, worker_id: str, retry_in_s: float) -> None:
        super().__init__(worker_id,
                         f"circuit open (probe in {retry_in_s:.1f}s)")
        self.retry_in_s = retry_in_s


class CircuitBreaker:
    """A consecutive-failure circuit with a timed half-open probe.

    closed -> (``failure_threshold`` consecutive failures) -> open ->
    (``reset_after_s`` elapses) -> half-open: exactly one caller gets to
    probe; its success closes the circuit, its failure re-opens the full
    window.  Thread-safe: coordinator transport calls run on executor
    threads.
    """

    def __init__(self, *, failure_threshold: int = 3,
                 reset_after_s: float = 5.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.failure_threshold = max(1, int(failure_threshold))
        self.reset_after_s = float(reset_after_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if self._clock() - self._opened_at >= self.reset_after_s:
                return "half-open"
            return "open"

    def acquire(self) -> None:
        """Claim permission for one call; raises when the circuit is open.

        In the half-open window only the first caller proceeds (the
        probe); concurrent callers keep failing fast until the probe's
        verdict arrives.
        """
        with self._lock:
            if self._opened_at is None:
                return
            elapsed = self._clock() - self._opened_at
            if elapsed >= self.reset_after_s and not self._probing:
                self._probing = True
                return
            raise CircuitOpenError(
                "?", max(0.0, self.reset_after_s - elapsed))

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._probing or self._failures >= self.failure_threshold:
                self._opened_at = self._clock()
                self._probing = False


class WorkerLink:
    """One coordinator->worker connection: client + breaker + counters."""

    def __init__(self, worker_id: str, url: str, *,
                 timeout_s: float = 60.0, retries: int = 1,
                 failure_threshold: int = 3,
                 reset_after_s: float = 5.0) -> None:
        self.worker_id = worker_id
        self.url = url
        self.client = ServiceClient(url, timeout=timeout_s, retries=retries)
        self.breaker = CircuitBreaker(failure_threshold=failure_threshold,
                                      reset_after_s=reset_after_s)
        self.calls = 0
        self.failures = 0

    def request(self, method: str, path: str,
                body: Mapping[str, Any] | None = None, *,
                headers: Mapping[str, str] | None = None) -> dict[str, Any]:
        """One RPC through the breaker.

        :class:`ServiceError` (the worker answered with an HTTP error) is
        *not* a transport failure -- an unhealthy request must not open a
        healthy worker's circuit -- except for 5xx, which counts against
        the worker without being converted: the caller still sees the
        original error for the resolver to rank.  ``headers`` (e.g. the
        propagated ``X-Repro-Trace`` context) ride through to the client.
        """
        return self._call(self.client.request, method, path, body, headers)

    def request_bytes(self, method: str, path: str,
                      body: Mapping[str, Any] | None = None, *,
                      headers: Mapping[str, str] | None = None) -> bytes:
        """Like :meth:`request` but returns the raw JSON response bytes
        (the coordinator's relay hot path; errors behave identically)."""
        return self._call(self.client.request_bytes, method, path, body,
                          headers)

    def _call(self, transport, method: str, path: str,
              body: Mapping[str, Any] | None,
              headers: Mapping[str, str] | None = None):
        try:
            self.breaker.acquire()
        except CircuitOpenError as error:
            raise CircuitOpenError(self.worker_id, error.retry_in_s) from None
        self.calls += 1
        try:
            result = transport(method, path, body, headers=headers)
        except ServiceError as error:
            if error.status >= 500:
                self.failures += 1
                self.breaker.record_failure()
            else:
                self.breaker.record_success()
            raise
        except (OSError, http.client.HTTPException, TimeoutError) as error:
            self.failures += 1
            self.breaker.record_failure()
            raise TransportError(
                self.worker_id, f"{type(error).__name__}: {error}",
                cause=error) from error
        self.breaker.record_success()
        return result

    def close(self) -> None:
        # Per-thread connections close with their threads; nothing to do
        # beyond dropping the reference, but keep the hook for symmetry.
        pass


#: Failure ranking for :func:`get_best_discovered_result`, most
#: informative first.  A 4xx says the *request* is bad (identical on every
#: worker: the best possible explanation); a 5xx names the solver fault;
#: 429 describes fleet load; transport errors only say a worker was
#: unreachable; an open circuit says we did not even try.
def _failure_rank(error: Exception) -> tuple[int, int]:
    if isinstance(error, ServiceError):
        if 400 <= error.status < 429:
            return (0, error.status)
        if error.status >= 500:
            return (1, error.status)
        return (2, error.status)  # 429 and other odd statuses
    if isinstance(error, CircuitOpenError):
        return (4, 0)
    if isinstance(error, TransportError):
        return (3, 0)
    return (5, 0)


def get_best_discovered_result(discovered: Mapping[str, Any],
                               failures: Mapping[str, Exception]) -> Any:
    """Pick the best scatter outcome, or raise the most informative failure.

    The asyncio analogue of MAAS's ``get_best_discovered_result`` over a
    ``DeferredList(consumeErrors=True)`` fan-out: the coordinator collects
    a ``(discovered, failures)`` pair keyed by worker id.  Any success
    wins -- solves are content-addressed, so every discovered result is
    bit-identical and the first is as good as any.  With no success the
    *most informative* failure is raised (see :func:`_failure_rank`): a
    request-level 4xx beats a solver 5xx beats load shedding beats
    "connection refused" beats "circuit was open".
    """
    if discovered:
        return next(iter(discovered.values()))
    if failures:
        best_worker = min(failures, key=lambda wid: _failure_rank(
            failures[wid]))
        raise failures[best_worker]
    raise NoLiveWorkersError("no live workers answered and none failed -- "
                             "the fleet is empty")

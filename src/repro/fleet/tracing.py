"""Fleet-wide trace assembly and telemetry federation.

Two cross-hop views live here, both pure functions over data the fleet
already moves around:

**Span-tree assembly** (:func:`assemble_trace`, :func:`render_span_tree`).
Every hop of a fleet solve records spans into its own process-local
:class:`~repro.service.tracectx.SpanRecorder` -- the coordinator's
``fleet.solve`` root and per-attempt spans, the worker scheduler's
``scheduler.request`` span, the solve process's ``worker.solve`` /
``build_graph`` / ``engine.run`` spans.  ``GET /trace/<id>`` on the
coordinator gathers the flat rows from every live worker plus its own
recorder and assembles them into one tree by ``parent_id``: children are
sorted by start time, spans whose parent never arrived (a dead worker, a
ring-evicted trace) surface as orphan roots rather than disappearing, so
a partial trace still tells its story.

**Prometheus federation** (:func:`federate_prometheus`).  ``GET
/fleet/metrics`` scrapes every enrolled worker's ``/metrics`` page and
re-serves them as one document with a ``worker="<id>"`` label injected
into every sample, the same shape a Prometheus federation endpoint
produces: one scrape target for the whole fleet, per-worker breakdown
preserved.  ``# HELP`` / ``# TYPE`` headers are emitted once per family
(first writer wins); workers that fail to answer are noted as comments
instead of failing the scrape.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

__all__ = [
    "assemble_trace",
    "federate_prometheus",
    "render_span_tree",
]


# ---------------------------------------------------------------------------
# Span-tree assembly
# ---------------------------------------------------------------------------

def assemble_trace(rows: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Build the span tree of one trace from flat rows of many recorders.

    Returns ``{"trace_id", "span_count", "services", "roots"}`` where each
    tree node is its span row plus a ``children`` list (sorted by start
    time, span id breaking ties for cross-host clock jitter).  Rows whose
    ``parent_id`` is unknown -- the genuine root, but also spans whose
    parent was lost with a killed worker -- become roots, ordered the same
    way, so nothing recorded is ever dropped from the view.
    """
    nodes: dict[str, dict[str, Any]] = {}
    ordered: list[dict[str, Any]] = []
    trace_id = ""
    for row in rows:
        node = dict(row)
        node["children"] = []
        span_id = str(node.get("span_id") or "")
        trace_id = trace_id or str(node.get("trace_id") or "")
        if span_id and span_id not in nodes:
            nodes[span_id] = node
            ordered.append(node)

    def sort_key(node: dict[str, Any]) -> tuple[float, str]:
        return (float(node.get("start_s") or 0.0),
                str(node.get("span_id") or ""))

    roots: list[dict[str, Any]] = []
    for node in ordered:
        parent = nodes.get(str(node.get("parent_id") or ""))
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    for node in ordered:
        node["children"].sort(key=sort_key)
    roots.sort(key=sort_key)
    return {
        "trace_id": trace_id,
        "span_count": len(ordered),
        "services": sorted({str(node.get("service") or "?")
                            for node in ordered}),
        "roots": roots,
    }


def render_span_tree(tree: Mapping[str, Any]) -> str:
    """ASCII rendering of an assembled trace (one span per line).

    ::

        trace 4f2a... (7 spans, services: coordinator, serve, worker)
        fleet.solve [coordinator] 412.3ms ok
        ├─ fleet.attempt [coordinator] 2.1ms error worker=w0
        └─ fleet.attempt [coordinator] 408.9ms ok worker=w1
           ├─ scheduler.request [serve] 405.2ms ok status=computed
           └─ worker.solve [worker] 403.8ms ok
              ├─ build_graph [worker] 1.2ms ok
              └─ engine.run [worker] 398.0ms ok
    """
    lines = [f"trace {tree.get('trace_id', '?')} "
             f"({tree.get('span_count', 0)} spans, services: "
             f"{', '.join(tree.get('services', []) or ['?'])})"]

    def describe(node: Mapping[str, Any]) -> str:
        text = (f"{node.get('name', '?')} [{node.get('service', '?')}] "
                f"{float(node.get('duration_ms') or 0.0):.1f}ms "
                f"{node.get('status', '?')}")
        attrs = node.get("attrs") or {}
        shown = [f"{key}={attrs[key]}" for key in
                 ("worker", "status", "engine_used", "error", "attempt")
                 if key in attrs]
        worker = node.get("worker")
        if worker and "worker" not in attrs:
            shown.insert(0, f"worker={worker}")
        return text + (" " + " ".join(shown) if shown else "")

    def walk(node: Mapping[str, Any], prefix: str, is_last: bool,
             is_root: bool) -> None:
        if is_root:
            lines.append(describe(node))
            child_prefix = ""
        else:
            lines.append(prefix + ("└─ " if is_last else "├─ ")
                         + describe(node))
            child_prefix = prefix + ("   " if is_last else "│  ")
        children = node.get("children") or []
        for index, child in enumerate(children):
            walk(child, child_prefix, index == len(children) - 1, False)

    for root in tree.get("roots", []):
        walk(root, "", True, True)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Prometheus federation
# ---------------------------------------------------------------------------

def _label_sample(line: str, label: str, value: str) -> str:
    """Inject ``label="value"`` into one exposition sample line."""
    name_end = len(line)
    for index, char in enumerate(line):
        if char in ("{", " "):
            name_end = index
            break
    escaped = (value.replace("\\", "\\\\").replace("\n", "\\n")
               .replace('"', '\\"'))
    pair = f'{label}="{escaped}"'
    if name_end < len(line) and line[name_end] == "{":
        close = line.rindex("}")
        existing = line[name_end + 1:close]
        inside = f"{pair},{existing}" if existing else pair
        return f"{line[:name_end]}{{{inside}}}{line[close + 1:]}"
    return f"{line[:name_end]}{{{pair}}}{line[name_end:]}"


def federate_prometheus(pages: Mapping[str, str], *,
                        label: str = "worker",
                        errors: Mapping[str, str] | None = None) -> str:
    """Merge per-worker exposition pages into one worker-labelled page.

    ``pages`` maps worker id -> that worker's ``/metrics`` text.  Every
    sample line gains a ``worker="<id>"`` label (prepended, so it reads
    first).  Samples are regrouped by metric family -- the exposition
    format requires one contiguous block per family -- with the ``#
    HELP`` / ``# TYPE`` header taken from the first page that defines it.
    ``errors`` maps worker id -> failure description for workers whose
    scrape failed; they are emitted as comments so one dead worker never
    blanks the fleet's telemetry.
    """
    # family name -> {"headers": [...], "samples": [...]}; dict preserves
    # first-seen family order across pages.
    families: dict[str, dict[str, list[str]]] = {}

    def family_for(name: str) -> dict[str, list[str]]:
        block = families.get(name)
        if block is None:
            block = {"headers": [], "samples": []}
            families[name] = block
        return block

    for worker_id in sorted(pages):
        current = ""
        for line in pages[worker_id].splitlines():
            if not line.strip():
                continue
            if line.startswith("#"):
                parts = line.split(None, 3)
                if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                    current = parts[2]
                    block = family_for(current)
                    if not any(header.split(None, 3)[1] == parts[1]
                               for header in block["headers"]):
                        block["headers"].append(line)
                continue
            name = line.split("{", 1)[0].split(" ", 1)[0]
            # _bucket/_sum/_count series belong to their histogram family
            # (named by the preceding header); bare samples are their own.
            owner = current if current and name.startswith(current) else name
            family_for(owner)["samples"].append(
                _label_sample(line, label, worker_id))
    lines: list[str] = []
    for block in families.values():
        lines.extend(block["headers"])
        lines.extend(block["samples"])
    for worker_id in sorted(errors or {}):
        lines.append(f"# federation: scrape of worker "
                     f"{worker_id!r} failed: {errors[worker_id]}")
    return "\n".join(lines) + "\n" if lines else "\n"

"""The fleet front door: plan, route by affinity, fan out, contain failures.

``repro fleet coordinator`` is an asyncio service in front of N enrolled
solve workers (each one a full ``repro serve`` node).  Its pipeline per
``POST /solve``:

1. **Plan** -- resolve the request to its content address with the same
   machinery the single-box scheduler uses (``SolverRegistry.plan`` ->
   ``solve_key``), memoized per request shape so the warm path never
   rebuilds or re-fingerprints a graph.
2. **Route by affinity** -- consistent hashing over the *graph
   fingerprint* (not the full key): every solve on the same graph lands on
   the same worker, so that worker's warm ``SolveCache`` entries, memoized
   fingerprints and built topology snapshots get reused.  Worker
   enroll/expiry only remaps the fingerprints that hashed to the changed
   worker -- the rest of the fleet keeps its warm state.
3. **Contain failures** -- a transport failure (connection refused/reset,
   timeout, HTTP 5xx counted by the breaker) retries the request on the
   next live worker along the ring; repeated failures open the worker's
   circuit so a dead node costs one timeout, not one per request.  Content
   addressing makes the retry idempotent: the re-sent solve either hits a
   cache or recomputes the bit-identical report.
4. **Steal from the deepest queue** -- when the affinity primary is
   markedly deeper (in-flight requests) than the shallowest live worker,
   or when it is dead/circuit-open, the request is dispatched to the
   least-loaded worker instead and counted as ``stolen``.
5. **Scatter** (``"scatter": true``) -- speculative fan-out to *every*
   live worker with per-worker timeouts, collected into a ``(discovered,
   failures)`` pair and resolved MAAS-style by
   :func:`~repro.fleet.transport.get_best_discovered_result`: any success
   wins (results are bit-identical by construction), otherwise the most
   informative failure is raised.
6. **Group batchable requests** -- with ``--batch-window`` set, requests
   sharing a ``(workload, algorithm, config, graph_seed)`` shape but
   carrying different explicit seeds that arrive within the window are
   forwarded to one worker as a single ``POST /solve_batch`` (the
   batched-replica runner sweeps them as one array program); counters
   record grouped-vs-solo dispatch.

Endpoints: ``POST /solve`` (plus coordinator-only ``"scatter"`` flag),
``POST /fleet/enroll|heartbeat|leave``, ``GET /fleet/workers``,
``GET /report/<key>`` (scatter lookup across the fleet),
``GET /cache/<key>[?exclude=<worker_id>]`` (fleet-shared warm read: fan the
key out to every live worker's cache tier except the asker, so a worker
inheriting remapped fingerprints after membership churn starts warm instead
of recomputing), ``GET /healthz``,
``GET /stats`` (dispatch counters, failure classes, affinity hit rate,
worker table), ``GET /metrics`` (``repro_fleet_*`` families: relay latency
histograms by outcome, circuit-breaker state gauges, ring occupancy),
``GET /fleet/metrics`` (every enrolled worker's page federated under a
``worker=`` label) and ``GET /trace/<trace_id>`` (the cross-hop span tree
of one traced solve, gathered from every live worker's recorder).

Tracing: each ``POST /solve`` mints (or adopts, from an ``X-Repro-Trace``
request header) a W3C-traceparent-style trace context.  The coordinator
records a ``fleet.solve`` root span plus one ``fleet.attempt`` child per
worker RPC -- including failed attempts, retries and steals -- and sends
each attempt's child context to the worker in the same header, where the
scheduler and the solve process record their own spans under it.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import threading
import time
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping, Sequence
from urllib.parse import unquote

from repro.hashing.seeds import derive_seed
from repro.service.client import ServiceError
from repro.service.metrics import ServiceMetrics
from repro.service.scheduler import SolveRequest, resolve_workload
from repro.service.tracectx import TRACE_HEADER, Span, SpanRecorder, TraceContext
from repro.fleet.registry import DEFAULT_TTL_S, WorkerInfo, WorkerRegistry
from repro.fleet.tracing import assemble_trace, federate_prometheus
from repro.fleet.transport import (
    CircuitOpenError,
    NoLiveWorkersError,
    TransportError,
    WorkerLink,
    get_best_discovered_result,
)

__all__ = ["FleetCoordinator", "HashRing", "add_coordinator_arguments",
           "serve_coordinator"]

#: How long one client request may wait end-to-end at the coordinator.
_REQUEST_TIMEOUT_S = 600.0

#: ``SolveScheduler``-style sentinel: build a private metrics registry.
_AUTO_METRICS = object()


def _annotate_payload(payload: bytes, worker_id: str,
                      attempts: int, trace_id: str | None = None) -> bytes:
    """Splice ``worker``/``attempts``/``trace_id`` into JSON object bytes.

    The solo dispatch path relays the worker's response verbatim; paying
    a full parse + re-serialize of every report just to add a few small
    fields would make the coordinator the fleet's throughput ceiling.
    """
    fields: dict[str, Any] = {"worker": worker_id, "attempts": attempts}
    if trace_id:
        fields["trace_id"] = trace_id
    extra = json.dumps(fields)[1:-1]
    stripped = payload.lstrip()
    if not stripped.startswith(b"{"):
        return payload  # not an object; relay untouched
    rest = stripped[1:].lstrip()
    if rest.startswith(b"}"):
        return b"{" + extra.encode("utf-8") + rest
    return b"{" + extra.encode("utf-8") + b"," + stripped[1:]


class HashRing:
    """Consistent hashing of fingerprints onto worker ids.

    Each worker owns ``replicas`` virtual nodes positioned by a stable
    hash (:func:`derive_seed`, so placement agrees across processes and
    runs); a key routes to the first virtual node clockwise from its own
    position.  :meth:`preference` returns the full failover order -- the
    distinct workers in ring order starting at the primary -- which is
    what makes retry-on-another-worker deterministic too.
    """

    def __init__(self, worker_ids: Sequence[str] = (), *,
                 replicas: int = 64) -> None:
        self.replicas = max(1, int(replicas))
        self._ids: frozenset[str] = frozenset()
        self._ring: list[tuple[int, str]] = []
        self.rebuild(worker_ids)

    def rebuild(self, worker_ids: Sequence[str]) -> None:
        ids = frozenset(worker_ids)
        ring = sorted(
            (derive_seed("repro.fleet.ring", worker_id, replica, bits=64),
             worker_id)
            for worker_id in ids
            for replica in range(self.replicas))
        # Atomic swaps: concurrent preference() readers see either the
        # old or the new membership, never a torn one.
        self._ring = ring
        self._ids = ids

    @property
    def worker_ids(self) -> frozenset[str]:
        return self._ids

    def preference(self, key: str) -> list[str]:
        """Distinct worker ids in ring order from ``key``'s position."""
        # Snapshot both references: lookups run on HTTP handler threads
        # while rebuild() swaps in a new membership.
        ring, ids = self._ring, self._ids
        if not ring:
            return []
        position = derive_seed("repro.fleet.key", key, bits=64)
        start = bisect_right(ring, (position, "￿"))
        order: list[str] = []
        seen: set[str] = set()
        for index in range(len(ring)):
            _, worker_id = ring[(start + index) % len(ring)]
            if worker_id not in seen:
                seen.add(worker_id)
                order.append(worker_id)
                if len(order) >= len(ids):
                    break
        return order

    def route(self, key: str) -> str | None:
        order = self.preference(key)
        return order[0] if order else None

    def occupancy(self) -> dict[str, dict[str, float]]:
        """Per-worker ``{"vnodes", "keyspace_share"}`` over the ring.

        A virtual node at position ``p`` owns the arc ``(previous, p]``
        (matching :meth:`preference`'s ``bisect_right`` routing), so a
        worker's keyspace share is the summed length of its arcs over the
        64-bit hash space.  Shares over all workers sum to 1.0.
        """
        ring = self._ring
        if not ring:
            return {}
        span = float(2 ** 64)
        rows: dict[str, dict[str, float]] = {
            worker_id: {"vnodes": 0, "keyspace_share": 0.0}
            for _, worker_id in ring}
        previous = ring[-1][0] - 2 ** 64  # wrap: first arc crosses zero
        for position, worker_id in ring:
            row = rows[worker_id]
            row["vnodes"] += 1
            row["keyspace_share"] += (position - previous) / span
            previous = position
        for row in rows.values():
            row["keyspace_share"] = round(row["keyspace_share"], 6)
        return rows


@dataclass
class _Group:
    """One open batch-grouping window (same shape, different seeds)."""

    shape: tuple
    fingerprint: str
    template: dict[str, Any]
    #: ``(seed, solve_key, future, trace_ctx)`` per joined request.
    members: "list[tuple[int, str, asyncio.Future, TraceContext | None]]" \
        = field(default_factory=list)
    closed: bool = False


class FleetCoordinator:
    """Registry + ring + transport links behind one HTTP front door."""

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 ttl_s: float = DEFAULT_TTL_S,
                 worker_timeout_s: float = 120.0,
                 worker_retries: int = 1,
                 max_worker_attempts: int = 3,
                 spill_threshold: int = 4,
                 batch_window_s: float = 0.0,
                 ring_replicas: int = 64,
                 request_timeout_s: float = _REQUEST_TIMEOUT_S,
                 circuit_failure_threshold: int = 3,
                 circuit_reset_after_s: float = 5.0,
                 plan_memo_entries: int = 4096,
                 metrics: ServiceMetrics | None | object = _AUTO_METRICS,
                 tracing: bool = True,
                 quiet: bool = True) -> None:
        self.registry = WorkerRegistry(ttl_s=ttl_s)
        self.ring = HashRing(replicas=ring_replicas)
        self.worker_timeout_s = float(worker_timeout_s)
        self.worker_retries = max(0, int(worker_retries))
        self.max_worker_attempts = max(1, int(max_worker_attempts))
        self.spill_threshold = max(0, int(spill_threshold))
        self.batch_window_s = max(0.0, float(batch_window_s))
        self.request_timeout_s = float(request_timeout_s)
        self.circuit_failure_threshold = int(circuit_failure_threshold)
        self.circuit_reset_after_s = float(circuit_reset_after_s)
        self.started_at = time.monotonic()
        #: Dispatch accounting; guarded by ``_state_lock`` (the solo
        #: relay path runs on HTTP handler threads, the fan-out paths on
        #: the asyncio loop).
        self.counters: dict[str, int] = {
            "routed": 0, "affinity_hits": 0, "retried": 0, "stolen": 0,
            "scattered": 0, "batched": 0, "batch_calls": 0, "solo": 0,
            "failed": 0, "reports": 0, "warm_fetches": 0, "warm_hits": 0,
        }
        #: Worker-RPC failures by outcome class (``http_429``,
        #: ``http_5xx``, ``transport_error``, ``circuit_open``, ...);
        #: same lock as ``counters``.
        self.failures_by_class: dict[str, int] = {}
        #: In-flight requests per worker (the live load signal stealing
        #: decisions read; heartbeat queue depths are the stale backstop).
        self.outstanding: dict[str, int] = {}
        self._state_lock = threading.Lock()
        #: Span store behind ``GET /trace/<id>``; ``tracing=False``
        #: disables span recording and context propagation entirely.
        self.trace_recorder: SpanRecorder | None = (
            SpanRecorder() if tracing else None)
        self._links: dict[str, WorkerLink] = {}
        self._links_lock = threading.Lock()
        self._groups: dict[tuple, _Group] = {}
        #: ``request shape -> (cell, key, fingerprint)``; planning builds
        #: and fingerprints graphs, far too slow to repeat per warm hit.
        self._plan_memo: dict[tuple, tuple[str, str, str]] = {}
        self._plan_memo_order: deque[tuple] = deque()
        self._plan_memo_entries = max(16, int(plan_memo_entries))
        self._plan_lock = threading.Lock()
        if metrics is _AUTO_METRICS:
            metrics = ServiceMetrics()
        self.metrics: ServiceMetrics | None = metrics  # type: ignore[assignment]
        if self.metrics is not None:
            self.metrics.bind_fleet(self)
        self._loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self._run_loop, name="repro-fleet-loop", daemon=True)
        self._sweep_task: asyncio.Task | None = None
        handler = _make_handler(self, quiet=quiet)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._serve_thread: threading.Thread | None = None

    # ------------------------------------------------------------ lifecycle
    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    async def _start_tasks(self) -> None:
        self._sweep_task = asyncio.create_task(self._sweep(),
                                               name="fleet-sweep")

    def start(self) -> None:
        self._loop_thread.start()
        asyncio.run_coroutine_threadsafe(
            self._start_tasks(), self._loop).result(timeout=30)
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-fleet-http",
            daemon=True)
        self._serve_thread.start()

    def serve_forever(self) -> None:
        self._loop_thread.start()
        asyncio.run_coroutine_threadsafe(
            self._start_tasks(), self._loop).result(timeout=30)
        self._httpd.serve_forever()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._sweep_task is not None:
            self._loop.call_soon_threadsafe(self._sweep_task.cancel)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._loop_thread.join(timeout=10)

    def __enter__(self) -> "FleetCoordinator":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    async def _sweep(self) -> None:
        """Expire stale leases and retire their transport links."""
        interval = max(0.05, self.registry.ttl_s / 2.0)
        while True:
            await asyncio.sleep(interval)
            for info in self.registry.expire():
                self._drop_link(info.worker_id)

    # -------------------------------------------------------------- address
    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # ------------------------------------------------------------- registry
    def enroll(self, worker_id: str, url: str,
               capabilities: Mapping[str, Any] | None = None,
               ) -> dict[str, Any]:
        lease = self.registry.enroll(worker_id, url, capabilities)
        self._drop_link(worker_id)  # a re-enroll may have moved the URL
        return lease

    def _link(self, info: WorkerInfo) -> WorkerLink:
        with self._links_lock:
            link = self._links.get(info.worker_id)
            if link is None or link.url != info.url:
                link = WorkerLink(
                    info.worker_id, info.url,
                    timeout_s=self.worker_timeout_s,
                    retries=self.worker_retries,
                    failure_threshold=self.circuit_failure_threshold,
                    reset_after_s=self.circuit_reset_after_s)
                self._links[info.worker_id] = link
            return link

    def _drop_link(self, worker_id: str) -> None:
        with self._links_lock:
            link = self._links.pop(worker_id, None)
        if link is not None:
            link.close()
        with self._state_lock:
            self.outstanding.pop(worker_id, None)

    def _breaker_state(self, worker_id: str) -> str:
        with self._links_lock:
            link = self._links.get(worker_id)
        return link.breaker.state if link is not None else "closed"

    def breaker_states(self) -> dict[str, str]:
        """``worker_id -> circuit state`` for every open transport link."""
        with self._links_lock:
            links = list(self._links.values())
        return {link.worker_id: link.breaker.state for link in links}

    # ------------------------------------------------------------- planning
    def _plan(self, request: SolveRequest) -> tuple[str, str, str]:
        """``(cell, solve_key, graph_fingerprint)`` for one request.

        Memoized on the full request identity -- ``seed=None`` derives
        deterministically from the shape, so it memoizes soundly too.
        """
        from repro.api import REGISTRY
        from repro.service.cache import key_for_plan
        from repro.service.scheduler import build_workload

        memo_key = (request.workload, request.algorithm, request.config,
                    request.graph_seed, request.seed)
        with self._plan_lock:
            cached = self._plan_memo.get(memo_key)
        if cached is not None:
            return cached
        cell = resolve_workload(request.workload)
        graph = build_workload(cell, graph_seed=request.graph_seed)
        plan = REGISTRY.plan(graph, request.algorithm, seed=request.seed,
                             **request.config_dict)
        value = (cell, key_for_plan(plan), plan.graph_fingerprint)
        with self._plan_lock:
            self._plan_memo[memo_key] = value
            self._plan_memo_order.append(memo_key)
            while len(self._plan_memo_order) > self._plan_memo_entries:
                evicted = self._plan_memo_order.popleft()
                self._plan_memo.pop(evicted, None)
        return value

    # ------------------------------------------------------------- dispatch
    def solve(self, obj: dict[str, Any],
              trace_parent: str | None = None):
        """Serve one ``POST /solve`` body (called on HTTP handler threads).

        The solo relay path -- plan (memoized), pick, forward, splice --
        runs right here on the calling thread: no loop hand-off and no
        executor hop, so a warm fleet hit costs one extra HTTP leg and
        little else.  The fan-out paths (scatter, batch grouping) bridge
        onto the asyncio loop, which owns their timers and gathers.

        With tracing on, the request gets a trace context -- adopted from
        ``trace_parent`` (the client's ``X-Repro-Trace`` header) or the
        body's ``trace`` field when either parses, freshly minted
        otherwise -- and a ``fleet.solve`` root span is recorded whichever
        way dispatch ends.  Per-attempt child contexts ride the same
        header to workers, so the body's ``trace`` field is consumed here
        rather than forwarded.

        Returns a response dict (scatter / grouped paths) or raw JSON
        bytes (the solo relay); the HTTP layer sends both.
        """
        scatter = bool(obj.pop("scatter", False))
        wait = bool(obj.pop("wait", True))
        recorder = self.trace_recorder
        ctx: TraceContext | None = None
        if recorder is not None:
            parent = (TraceContext.from_header(trace_parent)
                      or TraceContext.from_header(obj.get("trace")))
            ctx = parent.child() if parent is not None else TraceContext.new()
        request = SolveRequest.from_obj(obj)
        body = dict(obj)
        body["wait"] = wait
        if ctx is not None:
            body.pop("trace", None)
        path_taken = "solo"
        status = "ok"
        error_text: str | None = None
        start_s = time.time()
        started = time.perf_counter()
        try:
            cell, key, fingerprint = self._plan(request)
            if scatter:
                path_taken = "scatter"
                return self._run_on_loop(self._scatter_solve(body, key, ctx))
            if (self.batch_window_s > 0.0 and wait
                    and request.seed is not None):
                path_taken = "grouped"
                return self._run_on_loop(
                    self._submit_grouped(request, body, cell, key,
                                         fingerprint, ctx))
            self._bump("solo")
            return self._solo_dispatch(body, key, fingerprint, ctx)
        except Exception as error:
            status = "error"
            error_text = f"{type(error).__name__}: {error}"
            raise
        finally:
            if ctx is not None and recorder is not None:
                attrs: dict[str, Any] = {
                    "path": path_taken,
                    "workload": request.workload,
                    "algorithm": request.algorithm,
                }
                if error_text is not None:
                    attrs["error"] = error_text
                recorder.record(Span(
                    trace_id=ctx.trace_id, span_id=ctx.span_id,
                    parent_id=ctx.parent_id, name="fleet.solve",
                    service="coordinator", start_s=start_s,
                    duration_s=time.perf_counter() - started,
                    status=status, attrs=attrs))

    def _record_attempt(self, ctx: TraceContext | None, info: WorkerInfo,
                        start_s: float, started: float, *,
                        error: Exception | None = None,
                        **attrs: Any) -> None:
        """Record one ``fleet.attempt`` span (no-op when untraced)."""
        recorder = self.trace_recorder
        if ctx is None or recorder is None:
            return
        row_attrs: dict[str, Any] = {"worker": info.worker_id, **attrs}
        if error is not None:
            row_attrs["error"] = f"{type(error).__name__}: {error}"
        recorder.record(Span(
            trace_id=ctx.trace_id, span_id=ctx.span_id,
            parent_id=ctx.parent_id, name="fleet.attempt",
            service="coordinator", start_s=start_s,
            duration_s=time.perf_counter() - started,
            status="ok" if error is None else "error", attrs=row_attrs))

    def report(self, key: str) -> dict[str, Any]:
        """``GET /report/<key>`` resolved across the whole fleet."""
        return self._run_on_loop(self.scatter_report(key))

    def _run_on_loop(self, coroutine):
        future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        try:
            return future.result(timeout=self.request_timeout_s)
        except TimeoutError:
            future.cancel()
            raise

    def _bump(self, name: str, amount: int = 1) -> None:
        with self._state_lock:
            self.counters[name] += amount

    def _pick_worker(self, fingerprint: str,
                     exclude: "set[str]") -> tuple[WorkerInfo | None, bool]:
        """``(worker, is_primary)`` for one attempt; ``(None, False)`` when
        every live worker is excluded.

        Ring order from the fingerprint gives the deterministic failover
        sequence; open circuits are skipped while an alternative exists;
        and when the chosen worker is carrying ``spill_threshold`` more
        in-flight requests than the least-loaded candidate, the request is
        stolen by the shallower queue.
        """
        live = self.registry.live()
        if not live:
            raise NoLiveWorkersError(
                "no live workers enrolled (fleet is empty or every lease "
                "expired)")
        by_id = {info.worker_id: info for info in live}
        if self.ring.worker_ids != frozenset(by_id):
            self.ring.rebuild(sorted(by_id))
        order = self.ring.preference(fingerprint)
        primary_id = order[0]
        candidates = [wid for wid in order if wid not in exclude]
        if not candidates:
            return None, False
        usable = [wid for wid in candidates
                  if self._breaker_state(wid) != "open"] or candidates
        choice = usable[0]
        if len(usable) > 1 and self.spill_threshold >= 0:
            with self._state_lock:
                depths = {wid: self.outstanding.get(wid, 0)
                          for wid in usable}
            least = min(usable, key=lambda wid: (depths[wid], wid))
            depth_gap = depths[choice] - depths[least]
            if least != choice and depth_gap > self.spill_threshold:
                choice = least
        if choice != primary_id:
            self._bump("stolen")
        return by_id[choice], choice == primary_id

    def _call_worker_sync(self, info: WorkerInfo, method: str, path: str,
                          body: Mapping[str, Any] | None, *,
                          raw: bool = False,
                          headers: Mapping[str, str] | None = None):
        """One RPC on a worker link with outstanding + relay accounting.

        ``raw=True`` returns the response bytes unparsed (the relay hot
        path); errors behave identically either way.  Blocking: called
        directly from handler threads, or via executor from coroutines.
        Every call lands in the relay-latency histogram by outcome class;
        non-``ok`` outcomes of dispatch calls (POST) also bump
        ``failures_by_class`` -- GET probes like scatter report lookups
        404 routinely and are not failures.
        """
        link = self._link(info)
        transport = link.request_bytes if raw else link.request
        with self._state_lock:
            self.outstanding[info.worker_id] = (
                self.outstanding.get(info.worker_id, 0) + 1)
        outcome = "ok"
        started = time.perf_counter()
        try:
            return transport(method, path, body, headers=headers)
        except CircuitOpenError:
            outcome = "circuit_open"
            raise
        except ServiceError as error:
            if error.status == 429:
                outcome = "http_429"
            elif error.status >= 500:
                outcome = "http_5xx"
            else:
                outcome = "http_4xx"
            raise
        except TransportError:
            outcome = "transport_error"
            raise
        finally:
            elapsed = time.perf_counter() - started
            with self._state_lock:
                count = self.outstanding.get(info.worker_id, 1) - 1
                if count <= 0:
                    self.outstanding.pop(info.worker_id, None)
                else:
                    self.outstanding[info.worker_id] = count
                if outcome != "ok" and method == "POST":
                    self.failures_by_class[outcome] = (
                        self.failures_by_class.get(outcome, 0) + 1)
            metrics = self.metrics
            if metrics is not None and metrics.relay_latency is not None:
                metrics.relay_latency.observe(elapsed, outcome)

    async def _call_worker(self, info: WorkerInfo, method: str, path: str,
                           body: Mapping[str, Any] | None, *,
                           raw: bool = False,
                           headers: Mapping[str, str] | None = None):
        """:meth:`_call_worker_sync` bridged onto the executor pool (for
        the fan-out coroutines, which must not block the loop)."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, lambda: self._call_worker_sync(info, method, path, body,
                                                 raw=raw, headers=headers))

    def _solo_dispatch(self, body: dict[str, Any], key: str,
                       fingerprint: str,
                       ctx: TraceContext | None = None) -> bytes:
        """Affinity-routed relay with retry-on-another-worker (blocking)."""
        failures: dict[str, Exception] = {}
        attempt = 0
        for _ in range(self.max_worker_attempts):
            info, is_primary = self._pick_worker(fingerprint,
                                                 set(failures))
            if info is None:
                break
            attempt += 1
            attempt_ctx = ctx.child() if ctx is not None else None
            headers = ({TRACE_HEADER: attempt_ctx.to_header()}
                       if attempt_ctx is not None else None)
            attempt_start = time.time()
            attempt_began = time.perf_counter()
            try:
                payload = self._call_worker_sync(info, "POST", "/solve",
                                                 body, raw=True,
                                                 headers=headers)
            except ServiceError as error:
                if error.status == 429:
                    # That worker is saturated; the request is fine --
                    # spill it to the next one.
                    self._record_attempt(attempt_ctx, info, attempt_start,
                                         attempt_began, error=error,
                                         attempt=attempt)
                    failures[info.worker_id] = error
                    self._bump("retried")
                    continue
                # 4xx/5xx are about the request/solve, identical on every
                # worker: propagate instead of burning the fleet.
                self._record_attempt(attempt_ctx, info, attempt_start,
                                     attempt_began, error=error,
                                     attempt=attempt)
                raise
            except TransportError as error:
                self._record_attempt(attempt_ctx, info, attempt_start,
                                     attempt_began, error=error,
                                     attempt=attempt)
                failures[info.worker_id] = error
                self._bump("retried")
                continue
            self._record_attempt(attempt_ctx, info, attempt_start,
                                 attempt_began, attempt=attempt,
                                 primary=is_primary)
            self._bump("routed")
            if is_primary:
                self._bump("affinity_hits")
            return _annotate_payload(
                payload, info.worker_id, len(failures) + 1,
                trace_id=ctx.trace_id if ctx is not None else None)
        self._bump("failed")
        return get_best_discovered_result({}, failures)  # raises

    async def _dispatch_solo(self, body: dict[str, Any], key: str,
                             fingerprint: str,
                             ctx: TraceContext | None = None) -> bytes:
        """:meth:`_solo_dispatch` on the executor (batch-fallback path)."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, self._solo_dispatch, body, key, fingerprint, ctx)

    async def _scatter_solve(self, body: dict[str, Any], key: str,
                             ctx: TraceContext | None = None,
                             ) -> dict[str, Any]:
        """Speculative fan-out to every live worker; best result wins."""
        live = self.registry.live()
        if not live:
            raise NoLiveWorkersError("no live workers to scatter to")
        self._bump("scattered")

        async def call_one(info: WorkerInfo):
            attempt_ctx = ctx.child() if ctx is not None else None
            headers = ({TRACE_HEADER: attempt_ctx.to_header()}
                       if attempt_ctx is not None else None)
            attempt_start = time.time()
            attempt_began = time.perf_counter()
            try:
                result = await self._call_worker(info, "POST", "/solve",
                                                 dict(body), headers=headers)
            except Exception as error:
                self._record_attempt(attempt_ctx, info, attempt_start,
                                     attempt_began, error=error,
                                     scatter=True)
                raise
            self._record_attempt(attempt_ctx, info, attempt_start,
                                 attempt_began, scatter=True)
            return result

        results = await asyncio.gather(
            *(call_one(info) for info in live), return_exceptions=True)
        discovered: dict[str, dict[str, Any]] = {}
        failures: dict[str, Exception] = {}
        for info, result in zip(live, results):
            if isinstance(result, BaseException):
                failures[info.worker_id] = result  # type: ignore[assignment]
            else:
                discovered[info.worker_id] = result
        try:
            row = dict(get_best_discovered_result(discovered, failures))
        except Exception:
            self._bump("failed")
            raise
        self._bump("routed")
        row["worker"] = next(iter(discovered))
        if ctx is not None:
            row["trace_id"] = ctx.trace_id
        row["scatter"] = {
            "discovered": sorted(discovered),
            "failures": {worker_id: f"{type(error).__name__}: {error}"
                         for worker_id, error in failures.items()},
        }
        return row

    # ------------------------------------------------------- batch grouping
    async def _submit_grouped(self, request: SolveRequest,
                              body: dict[str, Any], cell: str, key: str,
                              fingerprint: str,
                              ctx: TraceContext | None = None,
                              ) -> dict[str, Any]:
        """Join (or open) the grouping window for this request's shape."""
        shape = (cell, request.algorithm, request.config,
                 request.graph_seed, request.verify)
        loop = asyncio.get_running_loop()
        group = self._groups.get(shape)
        if group is None or group.closed:
            group = _Group(shape=shape, fingerprint=fingerprint,
                           template=dict(body))
            self._groups[shape] = group
            loop.create_task(self._flush_group(group))
        future: asyncio.Future = loop.create_future()
        group.members.append((int(request.seed), key, future, ctx))  # type: ignore[arg-type]
        return await future

    async def _flush_group(self, group: _Group) -> None:
        """Close the window, dispatch the group, settle every member."""
        try:
            await asyncio.sleep(self.batch_window_s)
        finally:
            group.closed = True
            if self._groups.get(group.shape) is group:
                del self._groups[group.shape]
        members = group.members
        try:
            if len(members) == 1:
                await self._settle_solo(group, members[0])
                return
            await self._settle_batch(group, members)
        except Exception as error:  # noqa: BLE001 - fan the failure out
            for _, _, future, _ in members:
                if not future.done():
                    future.set_exception(error)

    async def _settle_solo(
            self, group: _Group,
            member: "tuple[int, str, asyncio.Future, TraceContext | None]",
    ) -> None:
        seed, key, future, ctx = member
        self._bump("solo")
        body = dict(group.template)
        body["seed"] = seed
        try:
            row = await self._dispatch_solo(body, key, group.fingerprint,
                                            ctx)
        except Exception as error:  # noqa: BLE001 - settle, don't crash
            if not future.done():
                future.set_exception(error)
            return
        if not future.done():
            future.set_result(row)

    async def _settle_batch(
            self, group: _Group,
            members: "list[tuple[int, str, asyncio.Future,"
                     " TraceContext | None]]",
    ) -> None:
        """One ``POST /solve_batch`` for the whole group, with failover."""
        seeds: list[int] = []
        for seed, _, _, _ in members:
            if seed not in seeds:
                seeds.append(seed)
        template = group.template
        batch_body = {
            "workload": template["workload"],
            "algorithm": template["algorithm"],
            "config": template.get("config") or {},
            "graph_seed": template.get("graph_seed", 0),
            "verify": template.get("verify", True),
            "seeds": seeds,
        }
        traced = [ctx for _, _, _, ctx in members if ctx is not None]
        failures: dict[str, Exception] = {}
        response: dict[str, Any] | None = None
        chosen: WorkerInfo | None = None
        for _ in range(self.max_worker_attempts):
            info, is_primary = self._pick_worker(group.fingerprint,
                                                 set(failures))
            if info is None:
                break
            if not info.supports_batch():
                failures[info.worker_id] = ServiceError(
                    404, f"worker {info.worker_id!r} does not accept "
                         f"/solve_batch groups")
                continue
            # One RPC serves every member's trace: each traced member
            # gets its own fleet.attempt span; the worker-bound header
            # carries the first one (a batch is one downstream request).
            attempt_ctxs = [ctx.child() for ctx in traced]
            headers = ({TRACE_HEADER: attempt_ctxs[0].to_header()}
                       if attempt_ctxs else None)
            attempt_start = time.time()
            attempt_began = time.perf_counter()

            def note_attempts(error: Exception | None = None) -> None:
                for attempt_ctx in attempt_ctxs:
                    self._record_attempt(
                        attempt_ctx, info, attempt_start, attempt_began,
                        error=error, batch=len(seeds))

            try:
                response = await self._call_worker(info, "POST",
                                                   "/solve_batch",
                                                   batch_body,
                                                   headers=headers)
            except ServiceError as error:
                note_attempts(error)
                if error.status in (404, 429):
                    failures[info.worker_id] = error
                    self._bump("retried")
                    continue
                raise
            except TransportError as error:
                note_attempts(error)
                failures[info.worker_id] = error
                self._bump("retried")
                continue
            note_attempts()
            chosen = info
            if is_primary:
                self._bump("affinity_hits", len(members))
            break
        if response is None or chosen is None:
            # No batch-capable worker reachable: fall back to solo
            # dispatch per member (each with its own failover).
            for member in members:
                await self._settle_solo(group, member)
            return
        rows = response.get("rows")
        if not isinstance(rows, list) or len(rows) != len(seeds):
            raise TransportError(
                chosen.worker_id,
                f"solve_batch returned {type(rows).__name__} "
                f"({len(rows) if isinstance(rows, list) else '?'} rows) "
                f"for {len(seeds)} seeds")
        by_seed = dict(zip(seeds, rows))
        self._bump("batched", len(members))
        self._bump("batch_calls")
        self._bump("routed", len(members))
        for seed, _, future, ctx in members:
            row = dict(by_seed[seed])
            row["worker"] = chosen.worker_id
            row["grouped"] = len(members)
            if ctx is not None:
                row["trace_id"] = ctx.trace_id
            if not future.done():
                future.set_result(row)

    # -------------------------------------------------------- observability
    def trace(self, trace_id: str) -> dict[str, Any] | None:
        """``GET /trace/<id>``: the assembled cross-hop span tree.

        Gathers the coordinator's own spans plus every live worker's
        ``/trace/<id>`` rows (workers not involved answer 404 and are
        skipped), tags each row with the process it came from, and
        assembles one tree.  Returns ``None`` when tracing is disabled,
        an empty dict when no hop knows the trace.
        """
        recorder = self.trace_recorder
        if recorder is None:
            return None
        rows = [dict(row) for row in recorder.spans(trace_id)]
        for row in rows:
            row.setdefault("worker", "coordinator")
        rows.extend(self._run_on_loop(self._gather_trace(trace_id)))
        if not rows:
            return {}
        tree = assemble_trace(rows)
        return {
            "trace_id": trace_id,
            "span_count": tree["span_count"],
            "services": tree["services"],
            "workers": sorted({str(row.get("worker") or "?")
                               for row in rows}),
            "roots": tree["roots"],
        }

    async def _gather_trace(self, trace_id: str) -> list[dict[str, Any]]:
        live = self.registry.live()
        if not live:
            return []
        results = await asyncio.gather(
            *(self._call_worker(info, "GET", f"/trace/{trace_id}", None)
              for info in live),
            return_exceptions=True)
        rows: list[dict[str, Any]] = []
        for info, result in zip(live, results):
            if isinstance(result, BaseException):
                continue  # 404 = worker never saw this trace; dead = gone
            for row in result.get("spans") or []:
                if isinstance(row, dict):
                    row = dict(row)
                    row.setdefault("worker", info.worker_id)
                    rows.append(row)
        return rows

    def fleet_metrics(self) -> str | None:
        """``GET /fleet/metrics``: every worker's page, worker-labelled.

        Scrapes each live worker's ``/metrics`` concurrently, adds the
        coordinator's own page under ``worker="coordinator"`` and merges
        them into one exposition document.  ``None`` when metrics are
        disabled locally.
        """
        metrics = self.metrics
        if metrics is None:
            return None
        pages, errors = self._run_on_loop(self._gather_fleet_metrics())
        pages["coordinator"] = metrics.render()
        return federate_prometheus(pages, errors=errors)

    async def _gather_fleet_metrics(
            self) -> tuple[dict[str, str], dict[str, str]]:
        live = self.registry.live()
        results = await asyncio.gather(
            *(self._call_worker(info, "GET", "/metrics", None, raw=True)
              for info in live),
            return_exceptions=True)
        pages: dict[str, str] = {}
        errors: dict[str, str] = {}
        for info, result in zip(live, results):
            if isinstance(result, BaseException):
                errors[info.worker_id] = (
                    f"{type(result).__name__}: {result}")
            else:
                pages[info.worker_id] = bytes(result).decode(
                    "utf-8", errors="replace")
        return pages, errors

    # --------------------------------------------------------------- report
    async def scatter_report(self, key: str) -> dict[str, Any]:
        """``GET /report/<key>`` resolved across the whole fleet."""
        live = self.registry.live()
        if not live:
            raise NoLiveWorkersError("no live workers to query")
        results = await asyncio.gather(
            *(self._call_worker(info, "GET", f"/report/{key}", None)
              for info in live),
            return_exceptions=True)
        discovered: dict[str, dict[str, Any]] = {}
        failures: dict[str, Exception] = {}
        for info, result in zip(live, results):
            if isinstance(result, BaseException):
                failures[info.worker_id] = result  # type: ignore[assignment]
            else:
                discovered[info.worker_id] = result
        row = dict(get_best_discovered_result(discovered, failures))
        self._bump("reports")
        row["worker"] = next(iter(discovered))
        return row

    # ----------------------------------------------------------- warm reads
    def cache_fetch(self, key: str,
                    exclude: str | None = None) -> dict[str, Any]:
        """``GET /cache/<key>``: the fleet-shared warm-read fan-out.

        A worker that misses locally asks the coordinator, which scatters
        the key to every *other* live worker's ``/cache/<key>`` endpoint
        (``exclude`` names the asker, so the fan-out never bounces the
        miss back to it).  Same circuit breakers, outstanding accounting
        and relay-latency histogram as every other worker RPC.
        """
        return self._run_on_loop(self.scatter_cache(key, exclude=exclude))

    async def scatter_cache(self, key: str,
                            exclude: str | None = None) -> dict[str, Any]:
        live = [info for info in self.registry.live()
                if info.worker_id != exclude]
        if not live:
            raise NoLiveWorkersError(
                "no live peers to query for cached rows")
        self._bump("warm_fetches")
        results = await asyncio.gather(
            *(self._call_worker(info, "GET", f"/cache/{key}", None)
              for info in live),
            return_exceptions=True)
        discovered: dict[str, dict[str, Any]] = {}
        failures: dict[str, Exception] = {}
        for info, result in zip(live, results):
            if isinstance(result, BaseException):
                failures[info.worker_id] = result  # type: ignore[assignment]
            else:
                discovered[info.worker_id] = result
        row = dict(get_best_discovered_result(discovered, failures))
        self._bump("warm_hits")
        row["worker"] = next(iter(discovered))
        return row

    # ---------------------------------------------------------------- stats
    def stats_row(self) -> dict[str, Any]:
        with self._state_lock:
            counters = dict(self.counters)
            outstanding = dict(self.outstanding)
            failures_by_class = dict(self.failures_by_class)
        routed = counters["routed"]
        affinity = counters["affinity_hits"]
        return {
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "counters": counters,
            "failures_by_class": failures_by_class,
            "affinity_hit_rate": round(affinity / routed, 4) if routed
            else 0.0,
            "workers": self.registry.to_rows(),
            "outstanding": outstanding,
            "breakers": self.breaker_states(),
            "ttl_s": self.registry.ttl_s,
            "batch_window_s": self.batch_window_s,
            "spill_threshold": self.spill_threshold,
            "tracing": (None if self.trace_recorder is None
                        else self.trace_recorder.stats_row()),
        }


# ---------------------------------------------------------------------------
# HTTP front end
# ---------------------------------------------------------------------------

def _make_handler(coordinator: FleetCoordinator, *, quiet: bool):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        disable_nagle_algorithm = True

        def log_message(self, fmt: str, *args: Any) -> None:  # noqa: A003
            if not quiet:
                super().log_message(fmt, *args)

        # ----------------------------------------------------------- util
        def _route(self) -> str:
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            if path.startswith("/report/"):
                return "/report"
            if path.startswith("/cache/"):
                return "/cache"
            if path.startswith("/trace/"):
                return "/trace"
            return path

        def _send_json(self, status: int, obj: dict[str, Any]) -> None:
            self._send_json_bytes(
                status, json.dumps(obj, sort_keys=True).encode("utf-8"))

        def _send_json_bytes(self, status: int, body: bytes) -> None:
            try:
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            except (BrokenPipeError, ConnectionResetError):
                self.close_connection = True
                return
            metrics = coordinator.metrics
            if metrics is not None:
                metrics.http_requests.inc(self.command, self._route(),
                                          str(status))

        def _send_error_json(self, status: int, message: str) -> None:
            self._send_json(status, {"error": message})

        def _respond_dispatch(self, thunk) -> None:
            """Run a dispatch callable, mapping the failure taxonomy."""
            try:
                row = thunk()
            except ServiceError as error:
                # A worker answered with an HTTP error: forward it.
                self._send_error_json(error.status, error.message)
            except NoLiveWorkersError as error:
                self._send_error_json(503, str(error))
            except TransportError as error:
                self._send_error_json(502, str(error))
            except TimeoutError:
                self._send_error_json(
                    504, f"fleet request did not complete within "
                         f"{coordinator.request_timeout_s:.1f}s")
            except (KeyError, TypeError, ValueError) as error:
                message = error.args[0] if error.args else error
                self._send_error_json(400, str(message))
            except Exception as error:  # noqa: BLE001 - surfaced per-request
                self._send_error_json(500,
                                      f"{type(error).__name__}: {error}")
            else:
                if isinstance(row, (bytes, bytearray)):
                    self._send_json_bytes(200, bytes(row))
                else:
                    self._send_json(200, row)

        # ------------------------------------------------------- endpoints
        def do_GET(self) -> None:  # noqa: N802 - http.server contract
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            if path == "/healthz":
                self._send_json(200, {
                    "ok": True,
                    "role": "coordinator",
                    "workers": len(coordinator.registry.live()),
                    "uptime_s": round(
                        time.monotonic() - coordinator.started_at, 3),
                })
            elif path == "/stats":
                self._send_json(200, coordinator.stats_row())
            elif path == "/fleet/workers":
                self._send_json(200, {
                    "workers": coordinator.registry.to_rows(),
                    "ttl_s": coordinator.registry.ttl_s,
                })
            elif path == "/metrics":
                metrics = coordinator.metrics
                if metrics is None:
                    self._send_error_json(
                        404, "metrics are disabled on this coordinator")
                    return
                body = metrics.render().encode("utf-8")
                try:
                    self.send_response(200)
                    self.send_header("Content-Type",
                                     metrics.registry.content_type)
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                except (BrokenPipeError, ConnectionResetError):
                    self.close_connection = True
            elif path == "/fleet/metrics":
                try:
                    page = coordinator.fleet_metrics()
                except Exception as error:  # noqa: BLE001 - per-request
                    self._send_error_json(
                        500, f"{type(error).__name__}: {error}")
                    return
                if page is None:
                    self._send_error_json(
                        404, "metrics are disabled on this coordinator")
                    return
                body = page.encode("utf-8")
                try:
                    self.send_response(200)
                    self.send_header(
                        "Content-Type",
                        coordinator.metrics.registry.content_type)
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                except (BrokenPipeError, ConnectionResetError):
                    self.close_connection = True
            elif path.startswith("/trace/"):
                trace_id = path[len("/trace/"):]
                try:
                    result = coordinator.trace(trace_id)
                except Exception as error:  # noqa: BLE001 - per-request
                    self._send_error_json(
                        500, f"{type(error).__name__}: {error}")
                    return
                if result is None:
                    self._send_error_json(
                        404, "tracing is disabled on this coordinator")
                elif not result:
                    self._send_error_json(
                        404, f"unknown trace id {trace_id!r} (evicted, "
                             f"never recorded, or held only by a dead "
                             f"worker)")
                else:
                    self._send_json(200, result)
            elif path.startswith("/report/"):
                key = path[len("/report/"):]
                self._respond_dispatch(lambda: coordinator.report(key))
            elif path.startswith("/cache/"):
                key = path[len("/cache/"):]
                query = (self.path.split("?", 1) + [""])[1]
                exclude = None
                for pair in query.split("&"):
                    name, _, value = pair.partition("=")
                    if name == "exclude" and value:
                        exclude = unquote(value)
                self._respond_dispatch(
                    lambda: coordinator.cache_fetch(key, exclude=exclude))
            else:
                self._send_error_json(404, f"unknown path {self.path!r}")

        def do_POST(self) -> None:  # noqa: N802 - http.server contract
            try:
                length = int(self.headers.get("Content-Length") or 0)
                body = self.rfile.read(length)
            except (ValueError, OSError) as error:
                self.close_connection = True
                self._send_error_json(400, str(error))
                return
            path = self.path.split("?", 1)[0].rstrip("/")
            try:
                obj = json.loads(body or b"{}")
                if not isinstance(obj, dict):
                    raise ValueError("request body must be a JSON object")
            except (ValueError, json.JSONDecodeError) as error:
                self._send_error_json(400, str(error))
                return
            if path == "/solve":
                trace_parent = self.headers.get(TRACE_HEADER)
                self._respond_dispatch(
                    lambda: coordinator.solve(obj,
                                              trace_parent=trace_parent))
            elif path == "/fleet/enroll":
                try:
                    lease = coordinator.enroll(
                        str(obj.get("worker_id") or ""),
                        str(obj.get("url") or ""),
                        obj.get("capabilities") or {})
                except ValueError as error:
                    self._send_error_json(400, str(error))
                    return
                self._send_json(200, lease)
            elif path == "/fleet/heartbeat":
                worker_id = str(obj.get("worker_id") or "")
                if coordinator.registry.renew(worker_id,
                                              obj.get("status") or {}):
                    self._send_json(200, {"ok": True})
                else:
                    self._send_error_json(
                        410, f"worker {worker_id!r} is not enrolled (lease "
                             f"expired?): re-enroll")
            elif path == "/fleet/leave":
                worker_id = str(obj.get("worker_id") or "")
                coordinator._drop_link(worker_id)
                self._send_json(200, {
                    "ok": coordinator.registry.deregister(worker_id)})
            else:
                self._send_error_json(404, f"unknown path {self.path!r}")

    return Handler


# ---------------------------------------------------------------------------
# ``repro fleet coordinator``
# ---------------------------------------------------------------------------

def add_coordinator_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8750,
                        help="TCP port; 0 picks an ephemeral port")
    parser.add_argument("--port-file", default=None,
                        help="write the bound port to this file (CI "
                             "scripts with --port 0)")
    parser.add_argument("--ttl", type=float, default=DEFAULT_TTL_S,
                        help="worker liveness lease in seconds "
                             f"(default: {DEFAULT_TTL_S})")
    parser.add_argument("--worker-timeout", type=float, default=120.0,
                        help="per-worker RPC timeout in seconds")
    parser.add_argument("--worker-retries", type=int, default=1,
                        help="connection-level retries per worker RPC")
    parser.add_argument("--batch-window", type=float, default=0.0,
                        help="seconds to hold same-shape explicit-seed "
                             "requests for solve_batch grouping (0 "
                             "disables grouping)")
    parser.add_argument("--spill-threshold", type=int, default=4,
                        help="in-flight depth gap beyond which a request "
                             "is stolen by the least-loaded worker")
    parser.add_argument("--no-metrics", action="store_true",
                        help="disable /metrics and metric recording")
    parser.add_argument("--no-tracing", action="store_true",
                        help="disable span recording, trace-context "
                             "propagation and /trace lookups")
    parser.add_argument("--verbose", action="store_true",
                        help="log every HTTP request")


def serve_coordinator(args: argparse.Namespace) -> int:
    kwargs: dict[str, Any] = {}
    if getattr(args, "no_metrics", False):
        kwargs["metrics"] = None
    if getattr(args, "no_tracing", False):
        kwargs["tracing"] = False
    coordinator = FleetCoordinator(
        host=args.host, port=args.port, ttl_s=args.ttl,
        worker_timeout_s=args.worker_timeout,
        worker_retries=args.worker_retries,
        batch_window_s=args.batch_window,
        spill_threshold=args.spill_threshold,
        quiet=not args.verbose, **kwargs)
    host, port = coordinator.address
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as handle:
            handle.write(str(port))
    print(f"[repro.fleet] coordinator on http://{host}:{port} "
          f"(ttl={coordinator.registry.ttl_s}s, "
          f"batch_window={coordinator.batch_window_s}s, "
          f"spill_threshold={coordinator.spill_threshold}, "
          f"metrics={'off' if coordinator.metrics is None else 'on'}, "
          f"tracing="
          f"{'off' if coordinator.trace_recorder is None else 'on'})",
          flush=True)
    try:
        coordinator.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        coordinator.stop()
    return 0

"""The worker registry: enroll, heartbeat, expire.

Fleet workers are *self-enrolling*: a worker boots its own solve server,
then announces itself to the coordinator (``POST /fleet/enroll``) with its
URL and capability tags -- which round engines it can run, whether it
accepts grouped ``/solve_batch`` calls, how warm its two-tier cache is,
how many shards it schedules over.  Liveness is lease-based: every enroll
or heartbeat renews a TTL, and a worker that misses heartbeats for a full
TTL is expired from the routing set (its in-flight requests fail over at
the transport layer first; expiry just stops *new* work landing on it).

The registry is deliberately dumb about placement: it answers "who is
alive and what can they do", nothing else.  Routing policy (consistent
hashing, stealing, scatter) lives in
:mod:`repro.fleet.coordinator`, which reads :meth:`WorkerRegistry.live`
on every decision -- so expiry takes effect immediately without any
cross-component invalidation protocol.

Everything is guarded by one lock: enroll/heartbeat arrive on HTTP
handler threads while the coordinator's asyncio loop reads the live set
and the sweep task expires stale leases.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

__all__ = ["WorkerInfo", "WorkerRegistry"]

#: Default liveness lease: a worker missing heartbeats for this many
#: seconds stops receiving new work.  Workers heartbeat at ttl/3.
DEFAULT_TTL_S = 10.0


@dataclass
class WorkerInfo:
    """One enrolled worker: address, capabilities and lease state."""

    worker_id: str
    url: str
    #: Capability tags advertised at enroll time and refreshed by
    #: heartbeats: ``engines`` (round-engine backends available),
    #: ``batch`` (accepts ``POST /solve_batch`` groups), ``shards``,
    #: ``cache`` (a :meth:`SolveCache.warmth_summary` row).
    capabilities: dict[str, Any] = field(default_factory=dict)
    enrolled_at: float = 0.0
    last_heartbeat: float = 0.0
    heartbeats: int = 0
    #: Bumped on every (re-)enroll, so a worker that crashed and came back
    #: is distinguishable from one that never left.
    generation: int = 1
    #: Live load snapshot from the most recent heartbeat.
    queue_depth: int = 0
    pending: int = 0

    def supports_batch(self) -> bool:
        return bool(self.capabilities.get("batch"))

    def to_row(self, *, heartbeat_age_s: float | None = None,
               ) -> dict[str, Any]:
        row = {
            "worker_id": self.worker_id,
            "url": self.url,
            "capabilities": dict(self.capabilities),
            "generation": self.generation,
            "heartbeats": self.heartbeats,
            "queue_depth": self.queue_depth,
            "pending": self.pending,
        }
        warmth = self.cache_warmth()
        if warmth is not None:
            row["cache_warmth"] = warmth
        if heartbeat_age_s is not None:
            row["heartbeat_age_s"] = round(heartbeat_age_s, 3)
        return row

    def cache_warmth(self) -> dict[str, Any] | None:
        """The heartbeat-refreshed cache snapshot, flattened for display.

        ``None`` until the worker's first status carries a ``cache``
        summary.  ``shards`` is the per-shard entry-count vector from the
        worker's sharded persistent tier (empty for legacy/memory-only
        caches), so ``repro fleet status`` and the ``/fleet/workers``
        document show where the fleet's warm keys actually live.
        """
        cache = self.capabilities.get("cache")
        if not isinstance(cache, Mapping):
            return None
        return {
            "tier": cache.get("tier"),
            "memory_entries": cache.get("memory_entries"),
            "persistent_entries": cache.get("persistent_entries"),
            "persistent_bytes": cache.get("persistent_bytes"),
            "hit_rate": cache.get("hit_rate"),
            "shards": list(cache.get("shards") or []),
        }


class WorkerRegistry:
    """Lease-based worker membership (enroll / renew / expire)."""

    def __init__(self, *, ttl_s: float = DEFAULT_TTL_S,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.ttl_s = float(ttl_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._workers: dict[str, WorkerInfo] = {}
        #: Monotonic count of leases dropped by :meth:`expire` (metrics).
        self.expired_total = 0

    # ------------------------------------------------------------ lifecycle
    def enroll(self, worker_id: str, url: str,
               capabilities: Mapping[str, Any] | None = None,
               ) -> dict[str, Any]:
        """Enroll (or re-enroll) a worker; returns its lease terms.

        Re-enrolling an id bumps its generation and replaces URL and
        capabilities wholesale -- the restart case.  The returned lease
        tells the worker how often to heartbeat.
        """
        if not worker_id or not url:
            raise ValueError("enroll requires a worker_id and a url")
        now = self._clock()
        with self._lock:
            existing = self._workers.get(worker_id)
            generation = existing.generation + 1 if existing is not None else 1
            info = WorkerInfo(worker_id=worker_id, url=url,
                              capabilities=dict(capabilities or {}),
                              enrolled_at=now, last_heartbeat=now,
                              generation=generation)
            self._workers[worker_id] = info
        return {"worker_id": worker_id, "generation": generation,
                "ttl_s": self.ttl_s,
                "heartbeat_interval_s": round(self.ttl_s / 3.0, 3)}

    def renew(self, worker_id: str,
              status: Mapping[str, Any] | None = None) -> bool:
        """Heartbeat: extend the lease, refresh the load/warmth snapshot.

        Returns ``False`` for an unknown (or already-expired) worker --
        the HTTP layer maps that to 410 Gone so the worker re-enrolls
        instead of heartbeating into the void.
        """
        now = self._clock()
        with self._lock:
            info = self._workers.get(worker_id)
            if info is None or now - info.last_heartbeat > self.ttl_s:
                return False
            info.last_heartbeat = now
            info.heartbeats += 1
            if status:
                depths = status.get("queue_depths")
                if isinstance(depths, (list, tuple)):
                    info.queue_depth = int(sum(depths))
                if "pending" in status:
                    info.pending = int(status["pending"])
                cache = status.get("cache")
                if isinstance(cache, Mapping):
                    info.capabilities["cache"] = dict(cache)
            return True

    def deregister(self, worker_id: str) -> bool:
        """Graceful leave (``POST /fleet/leave``): drop the lease now."""
        with self._lock:
            return self._workers.pop(worker_id, None) is not None

    def expire(self) -> list[WorkerInfo]:
        """Drop every lease older than the TTL; returns what was dropped."""
        now = self._clock()
        with self._lock:
            dead = [info for info in self._workers.values()
                    if now - info.last_heartbeat > self.ttl_s]
            for info in dead:
                del self._workers[info.worker_id]
            self.expired_total += len(dead)
        return dead

    # -------------------------------------------------------------- queries
    def live(self) -> list[WorkerInfo]:
        """Workers inside their TTL, stably ordered by id (expires first)."""
        self.expire()
        with self._lock:
            return sorted(self._workers.values(),
                          key=lambda info: info.worker_id)

    def get(self, worker_id: str) -> WorkerInfo | None:
        with self._lock:
            return self._workers.get(worker_id)

    def heartbeat_ages(self) -> list[tuple[WorkerInfo, float]]:
        """``(info, seconds_since_last_heartbeat)`` for each live worker."""
        now = self._clock()
        return [(info, max(0.0, now - info.last_heartbeat))
                for info in self.live()]

    def to_rows(self) -> list[dict[str, Any]]:
        """The ``GET /fleet/workers`` document."""
        return [info.to_row(heartbeat_age_s=age)
                for info, age in self.heartbeat_ages()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._workers)

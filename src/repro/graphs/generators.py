"""Workload graph generators.

The paper's evaluation landscape (Table 1) is parameterised by the number of
nodes ``n``, the maximum degree ``Delta`` and the power ``k``.  The benchmark
harness sweeps those parameters over the graph families below.  All
generators return simple undirected :class:`networkx.Graph` objects with
integer nodes ``0..n-1`` and accept a ``seed`` for reproducibility.
"""

from __future__ import annotations

import math
import random
from typing import Iterable

import networkx as nx

__all__ = [
    "bipartite_crown",
    "caterpillar_graph",
    "dense_core_with_pendant_paths",
    "disconnected_union",
    "erdos_renyi_graph",
    "grid_graph",
    "path_graph",
    "power_law_graph",
    "random_regular_graph",
    "random_tree",
    "ring_of_cliques",
    "star_graph",
    "unit_disk_graph",
]


def _finalize(graph: nx.Graph) -> nx.Graph:
    """Normalise a generated graph: simple, undirected, integer labels.

    Node labels are sorted when they are mutually comparable; heterogeneous
    label sets (e.g. the disjoint union of a grid with tuple labels and a
    path with integer labels) fall back to insertion order instead of letting
    ``sorted`` raise ``TypeError``.
    """
    graph = nx.Graph(graph)
    graph.remove_edges_from(nx.selfloop_edges(graph))
    try:
        ordered = sorted(graph.nodes())
    except TypeError:
        ordered = list(graph.nodes())
    mapping = {node: index for index, node in enumerate(ordered)}
    if any(node != mapping[node] for node in graph.nodes()):
        graph = nx.relabel_nodes(graph, mapping)
    return graph


def random_regular_graph(n: int, degree: int, seed: int | None = None) -> nx.Graph:
    """A random ``degree``-regular graph on ``n`` nodes.

    Regular graphs are the cleanest workload for the sparsification
    experiments because the sampling probability ``Theta(log n / Delta^k)``
    of Section 5.1 assumes (near-)regularity of ``G^k``.
    """
    if degree >= n:
        raise ValueError(f"degree {degree} must be < n {n}")
    if (n * degree) % 2 != 0:
        degree += 1
    if degree >= n:
        degree = n - 1 - ((n - 1) % 2 == 1 and n % 2 == 1)
    graph = nx.random_regular_graph(degree, n, seed=seed)
    return _finalize(graph)


def erdos_renyi_graph(n: int, p: float | None = None, *,
                      expected_degree: float | None = None,
                      seed: int | None = None,
                      connect: bool = True) -> nx.Graph:
    """An Erdos-Renyi ``G(n, p)`` graph.

    Either ``p`` or ``expected_degree`` must be supplied.  When ``connect`` is
    true the generated graph is patched into a single connected component by
    chaining the components with single edges (the CONGEST algorithms in the
    paper assume a connected communication network for the global
    convergecasts of Claim 5.6).
    """
    if p is None:
        if expected_degree is None:
            raise ValueError("either p or expected_degree must be given")
        p = min(1.0, expected_degree / max(1, n - 1))
    graph = nx.gnp_random_graph(n, p, seed=seed)
    if connect and n > 1:
        rng = random.Random(seed)
        components = [sorted(c) for c in nx.connected_components(graph)]
        for first, second in zip(components, components[1:]):
            graph.add_edge(rng.choice(first), rng.choice(second))
    return _finalize(graph)


def unit_disk_graph(n: int, radius: float | None = None, *,
                    seed: int | None = None,
                    connect: bool = True) -> nx.Graph:
    """A random geometric (unit-disk) graph on the unit square.

    Unit-disk graphs model the wireless networks that motivate the paper's
    frequency-assignment example (Section 1): distance-2 colorings and ruling
    sets of ``G^2`` correspond to interference-free frequency schedules.
    """
    if radius is None:
        # Threshold radius for connectivity ~ sqrt(log n / (pi n)); use a
        # comfortable multiple so the expected degree is Theta(log n).
        radius = 1.5 * math.sqrt(math.log(max(2, n)) / (math.pi * max(1, n)))
    rng = random.Random(seed)
    positions = {i: (rng.random(), rng.random()) for i in range(n)}
    graph = nx.random_geometric_graph(n, radius, pos=positions, seed=seed)
    if connect and n > 1:
        components = [sorted(c) for c in nx.connected_components(graph)]
        for first, second in zip(components, components[1:]):
            graph.add_edge(first[0], second[0])
    graph = _finalize(graph)
    nx.set_node_attributes(graph, positions, "pos")
    return graph


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """A ``rows x cols`` grid; a bounded-growth graph with large diameter."""
    graph = nx.grid_2d_graph(rows, cols)
    return _finalize(graph)


def path_graph(n: int) -> nx.Graph:
    """A path on ``n`` nodes (the extreme high-diameter workload)."""
    return _finalize(nx.path_graph(n))


def star_graph(n: int) -> nx.Graph:
    """A star with ``n - 1`` leaves (the extreme high-degree workload)."""
    return _finalize(nx.star_graph(max(0, n - 1)))


def random_tree(n: int, seed: int | None = None) -> nx.Graph:
    """A uniformly random labelled tree on ``n`` nodes."""
    if n <= 1:
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        return graph
    return _finalize(nx.random_labeled_tree(n, seed=seed))


def caterpillar_graph(spine: int, legs_per_node: int) -> nx.Graph:
    """A caterpillar: a path of ``spine`` nodes, each with pendant leaves.

    Caterpillars stress the power-graph setting: in ``G^2`` the legs of a
    spine node form a clique, so degrees in ``G^2`` blow up while degrees in
    ``G`` stay tiny.
    """
    graph = nx.Graph()
    for i in range(spine):
        graph.add_node(i)
        if i > 0:
            graph.add_edge(i - 1, i)
    next_node = spine
    for i in range(spine):
        for _ in range(legs_per_node):
            graph.add_edge(i, next_node)
            next_node += 1
    return _finalize(graph)


def ring_of_cliques(num_cliques: int, clique_size: int) -> nx.Graph:
    """``num_cliques`` cliques of size ``clique_size`` joined in a ring.

    Used as a shattering workload: after pre-shattering, whole cliques tend
    to be decided together, leaving well-separated residual components.
    """
    graph = nx.ring_of_cliques(max(3, num_cliques), max(2, clique_size))
    return _finalize(graph)


def power_law_graph(n: int, exponent: float = 2.5, *,
                    seed: int | None = None,
                    connect: bool = True) -> nx.Graph:
    """A graph with a power-law degree sequence (configuration model).

    Heterogeneous degrees exercise the stage structure of Algorithm 1: the
    sampling probability grows over the ``O(log Delta)`` stages precisely so
    that both hubs and low-degree nodes end up with ``O(log n)`` sampled
    neighbors.
    """
    rng = random.Random(seed)
    degrees = []
    for _ in range(n):
        # Discrete power-law sample in [1, n-1] by inverse transform.
        u = rng.random()
        value = int(round((1.0 - u) ** (-1.0 / (exponent - 1.0))))
        degrees.append(max(1, min(n - 1, value)))
    if sum(degrees) % 2 == 1:
        degrees[0] += 1
    graph = nx.configuration_model(degrees, seed=seed)
    graph = nx.Graph(graph)
    if connect and n > 1:
        components = [sorted(c) for c in nx.connected_components(graph)]
        for first, second in zip(components, components[1:]):
            graph.add_edge(first[0], second[0])
    return _finalize(graph)


# ---------------------------------------------------------------------------
# Adversarial families (scenario-registry workloads).
#
# These stress the assumptions the "nice" families above satisfy for free:
# connectivity (every component must end up dominated on its own), homogeneous
# degrees (a dense core next to constant-degree paths breaks near-regularity
# of G^k) and label comparability (the disjoint union deliberately mixes label
# types before normalisation).
# ---------------------------------------------------------------------------


def disconnected_union(n: int, components: int = 3, *, seed: int | None = None) -> nx.Graph:
    """A disjoint union of ``components`` structurally different pieces.

    The pieces cycle through a path (integer labels), a small grid (tuple
    labels) and a random tree, so the raw union carries *mixed* node labels
    -- exercising the insertion-order fallback of :func:`_finalize` -- and
    the result is intentionally disconnected: a correct MIS / ruling set must
    contain members in every component.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    components = max(1, min(components, n))
    sizes = [n // components + (1 if i < n % components else 0)
             for i in range(components)]
    union = nx.Graph()
    offset = 0
    for index, size in enumerate(sizes):
        kind = index % 3
        if kind == 0:
            piece = nx.path_graph(size)
            union.add_nodes_from((offset + node) for node in piece.nodes())
            union.add_edges_from((offset + u, offset + v) for u, v in piece.edges())
        elif kind == 1:
            rows = max(1, int(math.isqrt(size)))
            cols = max(1, math.ceil(size / rows))
            piece = nx.grid_2d_graph(rows, cols)
            # Trim to exactly `size` nodes, keeping the grid connected.
            keep = sorted(piece.nodes())[:size]
            piece = piece.subgraph(keep).copy()
            union.add_nodes_from(("grid", index, r, c) for r, c in piece.nodes())
            union.add_edges_from((("grid", index, *u), ("grid", index, *v))
                                 for u, v in piece.edges())
        else:
            piece = random_tree(size, seed=None if seed is None else seed + index)
            union.add_nodes_from((offset + node) for node in piece.nodes())
            union.add_edges_from((offset + u, offset + v) for u, v in piece.edges())
        offset += size
    return _finalize(union)


def dense_core_with_pendant_paths(core: int, paths: int, path_length: int) -> nx.Graph:
    """A clique of size ``core`` with ``paths`` pendant paths hanging off it.

    Degrees are wildly heterogeneous: core nodes see Theta(core) neighbors
    while path interiors see 2, and in ``G^k`` every node of a pendant path
    within distance ``k`` of the core becomes adjacent to the whole clique.
    This is the adversarial regime for the near-regularity assumption of the
    sampling probability in Section 5.1.
    """
    if core < 1:
        raise ValueError("core must be >= 1")
    graph: nx.Graph = nx.complete_graph(core)
    next_node = core
    for index in range(max(0, paths)):
        anchor = index % core
        previous = anchor
        for _ in range(max(1, path_length)):
            graph.add_edge(previous, next_node)
            previous = next_node
            next_node += 1
    return _finalize(graph)


def bipartite_crown(m: int) -> nx.Graph:
    """The crown graph ``S_m^0``: ``K_{m,m}`` minus a perfect matching.

    Every node has degree ``m - 1`` yet the graph is triangle-free, and
    ``G^2`` is the complete graph on ``2m`` nodes (for ``m >= 3``) -- the
    extreme "power graph densification" workload where any MIS of ``G^2`` is
    a single node.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    graph = nx.Graph()
    graph.add_nodes_from(range(2 * m))
    for i in range(m):
        for j in range(m):
            if i != j:
                graph.add_edge(i, m + j)
    return _finalize(graph)


def workload_suite(sizes: Iterable[int], *, seed: int = 0) -> dict[str, nx.Graph]:
    """A small named suite of workloads, one per family, for integration tests."""
    suite: dict[str, nx.Graph] = {}
    for n in sizes:
        suite[f"regular-{n}"] = random_regular_graph(n, max(3, int(math.log2(n))), seed=seed)
        suite[f"er-{n}"] = erdos_renyi_graph(n, expected_degree=max(3.0, math.log(n)), seed=seed)
        suite[f"udg-{n}"] = unit_disk_graph(n, seed=seed)
    return suite

"""Illustration and lower-bound gadgets from the paper.

Currently contains the Figure-1 gadget (tightness of the communication tools
of Lemma 4.2) and a two-cluster gadget used by the shattering tests.
"""

from __future__ import annotations

import networkx as nx

__all__ = ["figure1_gadget", "two_cluster_gadget"]


def figure1_gadget(hat_delta: int, s: int = 3) -> tuple[nx.Graph, tuple[int, int], set[int]]:
    """The Figure-1 example showing that Lemma 4.2 is tight.

    The gadget consists of a single central edge ``{v, w}`` and two fans of
    ``hat_delta / 2`` nodes of ``Q`` hanging off each endpoint at distance
    ``(s - 1) / 2``.  Every broadcast from the left fan to the distance-``s``
    neighborhood of its origin must cross ``{v, w}`` (and symmetrically), so
    with ``|Q| = hat_delta`` the edge carries ``Θ(hat_delta)`` broadcast
    messages and ``Θ(hat_delta^2 / 4)`` point-to-point Q-messages.

    Parameters
    ----------
    hat_delta:
        The sparsity parameter ``Δ̂`` -- the number of ``Q`` nodes in the
        gadget (rounded down to an even number).
    s:
        The power / message radius; Figure 1 uses ``s = 3``.  Must be odd and
        at least 3 so that the fans sit at distance ``(s - 1) / 2 >= 1`` from
        the central edge.

    Returns
    -------
    (graph, (v, w), q_nodes):
        The communication graph, the central edge, and the set ``Q``.
    """
    if s < 3 or s % 2 == 0:
        raise ValueError("figure1_gadget requires an odd s >= 3")
    half = max(1, hat_delta // 2)
    arm = (s - 1) // 2

    graph = nx.Graph()
    v, w = 0, 1
    graph.add_edge(v, w)
    next_node = 2
    q_nodes: set[int] = set()

    for side, anchor in ((0, v), (1, w)):
        for _ in range(half):
            previous = anchor
            for depth in range(arm):
                current = next_node
                next_node += 1
                graph.add_edge(previous, current)
                previous = current
            q_nodes.add(previous)
        del side
    return graph, (v, w), q_nodes


def two_cluster_gadget(cluster_size: int, bridge_length: int) -> tuple[nx.Graph, set[int], set[int]]:
    """Two cliques joined by a path of ``bridge_length`` edges.

    Used to exercise the "small components far apart" corner cases in the
    shattering post-processing (Section 7.3 discusses exactly this failure
    mode of the arXiv version of BEPS16: undecided nodes in the two cliques
    cannot be connected through decided bridge nodes).
    """
    graph = nx.Graph()
    left = set(range(cluster_size))
    right = set(range(cluster_size, 2 * cluster_size))
    for cluster in (left, right):
        members = sorted(cluster)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                graph.add_edge(a, b)
    # Bridge path.
    previous = 0
    next_node = 2 * cluster_size
    for _ in range(max(1, bridge_length)):
        graph.add_edge(previous, next_node)
        previous = next_node
        next_node += 1
    graph.add_edge(previous, cluster_size)  # attach to the right clique
    return graph, left, right

"""Graph substrate: generators, power graphs, gadgets and property helpers.

Everything in the library operates on plain :class:`networkx.Graph` instances
whose nodes are hashable identifiers (the CONGEST layer assigns O(log n)-bit
IDs on top of them).  This subpackage bundles:

* :mod:`repro.graphs.generators` -- workload graph families used by the
  benchmark harness (random regular, Erdos-Renyi, unit disk, grids, trees,
  caterpillars, power-law).
* :mod:`repro.graphs.power` -- power graph ``G^k`` construction and distance-s
  neighborhood queries (Section 2 of the paper).
* :mod:`repro.graphs.gadgets` -- the lower-bound / illustration gadgets from
  the paper (Figure 1).
* :mod:`repro.graphs.properties` -- degree / diameter / connectivity helpers.
"""

from repro.graphs.generators import (
    bipartite_crown,
    caterpillar_graph,
    dense_core_with_pendant_paths,
    disconnected_union,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    power_law_graph,
    random_regular_graph,
    random_tree,
    ring_of_cliques,
    star_graph,
    unit_disk_graph,
)
from repro.graphs.gadgets import figure1_gadget, two_cluster_gadget
from repro.graphs.power import (
    ball,
    distance_neighborhood,
    distance_s_degree,
    induced_power_subgraph,
    k_connected_components,
    power_graph,
    sphere,
)
from repro.graphs.properties import (
    ecc_lower_bound,
    graph_diameter,
    is_connected,
    max_degree,
    relabel_consecutive,
)

__all__ = [
    "ball",
    "bipartite_crown",
    "caterpillar_graph",
    "dense_core_with_pendant_paths",
    "disconnected_union",
    "distance_neighborhood",
    "distance_s_degree",
    "ecc_lower_bound",
    "erdos_renyi_graph",
    "figure1_gadget",
    "graph_diameter",
    "grid_graph",
    "induced_power_subgraph",
    "is_connected",
    "k_connected_components",
    "max_degree",
    "path_graph",
    "power_graph",
    "power_law_graph",
    "random_regular_graph",
    "random_tree",
    "relabel_consecutive",
    "ring_of_cliques",
    "sphere",
    "star_graph",
    "two_cluster_gadget",
    "unit_disk_graph",
]

"""Power graphs and distance-``s`` neighborhoods (Section 2 of the paper).

The problem instance throughout the paper is the power graph ``G^k``: the
graph on the same vertex set as ``G`` where two nodes are adjacent iff their
distance in ``G`` is at most ``k``.  The communication network remains ``G``.
This module provides the centralized view of those objects which the
simulator and the verification code rely on:

* :func:`power_graph` materialises ``G^k`` (only used for small inputs and
  for verification -- the algorithms themselves never materialise it).
* :func:`distance_neighborhood` computes ``N^s(v)``, the non-inclusive
  distance-``s`` neighborhood used throughout the paper.
* :func:`power_adjacency` is its batch form ``{v: N^k(v) ∩ X for v in X}``,
  backed by the tiled multi-source BFS kernel of
  :mod:`repro.congest.power_view` when numpy is available -- the power
  pipelines (power-MIS, power ruling sets) build their virtual ``G^k``
  adjacency through it without materialising the power graph.
* :func:`induced_power_subgraph` computes ``G^s[X]`` -- note that this is
  *not* ``(G[X])^s``; paths may leave ``X`` (Section 2).
* :func:`k_connected_components` computes maximal ``k``-connected subsets
  (sets ``S`` such that ``G^k[S]`` is connected), used by the shattering
  analysis (Lemma 7.3 / Lemma 8.1).
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Mapping

import networkx as nx

Node = Hashable

__all__ = [
    "ball",
    "bounded_bfs",
    "distance_neighborhood",
    "distance_s_degree",
    "induced_power_subgraph",
    "k_connected_components",
    "power_adjacency",
    "power_graph",
    "sphere",
]

#: Below this node count the scalar per-source BFS beats the numpy kernel's
#: setup cost; ``backend="auto"`` switches on the fast path above it.
_NUMPY_ADJACENCY_THRESHOLD = 64


def bounded_bfs(graph: nx.Graph, source: Node, depth: int) -> dict[Node, int]:
    """Breadth-first distances from ``source`` truncated at ``depth``.

    Returns a mapping ``node -> dist`` including the source itself (distance
    0) and every node at distance at most ``depth``.
    """
    if depth < 0:
        return {}
    distances: dict[Node, int] = {source: 0}
    if depth == 0:
        return distances
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        dist = distances[node]
        if dist == depth:
            continue
        for neighbor in graph.neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = dist + 1
                frontier.append(neighbor)
    return distances


def ball(graph: nx.Graph, source: Node, radius: int) -> set[Node]:
    """The inclusive ball ``N^radius(v) ∪ {v}``."""
    return set(bounded_bfs(graph, source, radius))


def sphere(graph: nx.Graph, source: Node, radius: int) -> set[Node]:
    """Nodes at distance exactly ``radius`` from ``source``."""
    distances = bounded_bfs(graph, source, radius)
    return {node for node, dist in distances.items() if dist == radius}


def distance_neighborhood(graph: nx.Graph, source: Node, s: int,
                          restrict_to: Iterable[Node] | None = None) -> set[Node]:
    """``N^s(v)`` -- the non-inclusive distance-``s`` neighborhood of ``v``.

    When ``restrict_to`` is given, returns ``N^s(v, X) = N^s(v) ∩ X`` (the
    distance-``s`` ``X``-neighborhood of the paper).  The source is never
    included, matching the paper's convention that ``N(v)`` is non-inclusive.
    """
    reachable = set(bounded_bfs(graph, source, s))
    reachable.discard(source)
    if restrict_to is not None:
        restrict = set(restrict_to)
        reachable &= restrict
    return reachable


def distance_s_degree(graph: nx.Graph, source: Node, s: int,
                      restrict_to: Iterable[Node] | None = None) -> int:
    """``d_s(v, X) = |N^s(v) ∩ X|`` (``d_s(v)`` when ``restrict_to`` is None)."""
    return len(distance_neighborhood(graph, source, s, restrict_to))


def _scalar_power_adjacency(graph: nx.Graph, k: int, ordered: list[Node],
                            restrict: set[Node] | None) -> dict[Node, set[Node]]:
    return {node: distance_neighborhood(graph, node, k, restrict_to=restrict)
            for node in ordered}


def _numpy_power_adjacency(graph: nx.Graph, k: int, ordered: list[Node],
                           restricted: bool,
                           tile_bytes: int | None) -> dict[Node, set[Node]]:
    import numpy as np

    from repro.congest.power_view import DEFAULT_TILE_BYTES, ReachKernel

    labels = list(graph.nodes())
    index_of = {label: i for i, label in enumerate(labels)}
    indptr = np.zeros(len(labels) + 1, dtype=np.int64)
    neighbor_indices: list[int] = []
    for i, label in enumerate(labels):
        neighbor_indices.extend(index_of[nbr] for nbr in graph.neighbors(label))
        indptr[i + 1] = len(neighbor_indices)
    kernel = ReachKernel(indptr, np.asarray(neighbor_indices, dtype=np.int64),
                         k, tile_bytes=tile_bytes or DEFAULT_TILE_BYTES)
    sources = np.asarray([index_of[label] for label in ordered],
                         dtype=np.int64)
    restrict = None
    if restricted:
        restrict = np.zeros(len(labels), dtype=bool)
        restrict[sources] = True
    out: dict[Node, set[Node]] = {}
    position = 0
    for _, reach in kernel.tiles(sources):
        if restrict is not None:
            reach &= restrict
        for row in reach:
            out[ordered[position]] = {labels[j] for j in np.flatnonzero(row)}
            position += 1
    return out


def power_adjacency(graph: nx.Graph, k: int,
                    nodes: Iterable[Node] | None = None, *,
                    backend: str = "auto",
                    tile_bytes: int | None = None) -> dict[Node, set[Node]]:
    """``{v: N^k(v) ∩ X for v in X}`` -- the virtual ``G^k`` adjacency on ``X``.

    ``X`` is ``nodes`` (all of ``graph`` when omitted); distances are
    measured in the full base graph even when ``X`` restricts the vertex set
    (the paper's ``G^k[X]``, Section 2).  Key iteration order follows
    ``nodes``, and each value is a plain non-inclusive neighbor set --
    exactly what the per-source ``distance_neighborhood`` comprehension this
    replaces produced, so downstream consumers (and their RNG draws) are
    unaffected by the backend.

    ``backend`` selects the implementation: ``"scalar"`` runs one bounded
    BFS per source, ``"numpy"`` runs the tiled multi-source BFS kernel of
    :mod:`repro.congest.power_view` over an ad-hoc CSR (never materialising
    ``G^k``; peak memory bounded by ``tile_bytes``), and ``"auto"`` picks
    the kernel on graphs with at least ``_NUMPY_ADJACENCY_THRESHOLD`` nodes
    when numpy is importable.
    """
    if backend not in ("auto", "numpy", "scalar"):
        raise ValueError(f"unknown backend: {backend!r}")
    ordered = list(graph.nodes()) if nodes is None else list(nodes)
    use_numpy = backend == "numpy"
    if backend == "auto" and graph.number_of_nodes() >= _NUMPY_ADJACENCY_THRESHOLD:
        try:
            import numpy  # noqa: F401 -- availability probe
        except ImportError:
            pass
        else:
            use_numpy = True
    if use_numpy:
        return _numpy_power_adjacency(graph, k, ordered, nodes is not None,
                                      tile_bytes)
    restrict = None if nodes is None else set(ordered)
    return _scalar_power_adjacency(graph, k, ordered, restrict)


def power_graph(graph: nx.Graph, k: int) -> nx.Graph:
    """Materialise the power graph ``G^k``.

    ``G^0`` has no edges; ``G^1 = G``.  Node attributes are copied.  This is
    intended for verification and for small workloads only -- the distributed
    algorithms never construct ``G^k`` explicitly (a node of ``G`` does not
    even know its degree in ``G^k``).
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    power = nx.Graph()
    power.add_nodes_from(graph.nodes(data=True))
    if k == 0:
        return power
    if k == 1:
        power.add_edges_from(graph.edges())
        return power
    for node in graph.nodes():
        for other, dist in bounded_bfs(graph, node, k).items():
            if other != node and dist >= 1:
                power.add_edge(node, other)
    return power


def induced_power_subgraph(graph: nx.Graph, k: int, subset: Iterable[Node]) -> nx.Graph:
    """``G^k[X]``: the subgraph of ``G^k`` induced by ``X``.

    Edges correspond to pairs of nodes of ``X`` within distance ``k`` *in G*
    (paths may use nodes outside ``X``), which is the object the paper's MIS
    simulation (Lemma 4.6) operates on.
    """
    subset = set(subset)
    induced = nx.Graph()
    induced.add_nodes_from(subset)
    for node in subset:
        distances = bounded_bfs(graph, node, k)
        for other, dist in distances.items():
            if other != node and other in subset and dist >= 1:
                induced.add_edge(node, other)
    return induced


def pairwise_distance_at_least(graph: nx.Graph, nodes: Iterable[Node],
                               alpha: int) -> bool:
    """True iff all distinct nodes of ``nodes`` are at distance >= ``alpha``."""
    nodes = list(nodes)
    node_set = set(nodes)
    for node in nodes:
        distances = bounded_bfs(graph, node, alpha - 1)
        for other, dist in distances.items():
            if other != node and other in node_set and dist <= alpha - 1:
                return False
    return True


def k_connected_components(graph: nx.Graph, subset: Iterable[Node],
                           k: int) -> list[set[Node]]:
    """Partition ``subset`` into maximal ``k``-connected pieces.

    ``S`` is ``k``-connected in ``G`` iff ``G^k[S]`` is connected
    (Section 2).  The components are exactly the connected components of
    ``G^k[subset]``.
    """
    subset = set(subset)
    if not subset:
        return []
    components: list[set[Node]] = []
    unvisited = set(subset)
    while unvisited:
        start = next(iter(unvisited))
        component = {start}
        frontier = deque([start])
        unvisited.discard(start)
        while frontier:
            node = frontier.popleft()
            nearby = distance_neighborhood(graph, node, k, restrict_to=unvisited)
            for other in nearby:
                component.add(other)
                unvisited.discard(other)
                frontier.append(other)
        components.append(component)
    return components


def domination_distance(graph: nx.Graph, dominators: Iterable[Node],
                        targets: Iterable[Node] | None = None) -> int:
    """``max_{v in targets} dist_G(v, dominators)``.

    Returns the worst-case distance from any target node to the dominating
    set.  Infinite distances (unreachable targets or an empty dominating
    set) are reported as a value larger than the number of nodes so callers
    can compare against finite bounds.
    """
    dominators = set(dominators)
    if targets is None:
        targets = list(graph.nodes())
    else:
        targets = list(targets)
    if not targets:
        return 0
    unreachable = graph.number_of_nodes() + 1
    if not dominators:
        return unreachable
    # Multi-source BFS from the dominating set.
    distances: dict[Node, int] = {node: 0 for node in dominators if node in graph}
    frontier = deque(distances)
    while frontier:
        node = frontier.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                frontier.append(neighbor)
    return max(distances.get(node, unreachable) for node in targets)

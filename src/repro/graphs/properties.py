"""Small graph property helpers shared across the library."""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.graphs.power import bounded_bfs

Node = Hashable

__all__ = [
    "ecc_lower_bound",
    "graph_diameter",
    "is_connected",
    "max_degree",
    "relabel_consecutive",
]


def max_degree(graph: nx.Graph) -> int:
    """The maximum degree ``Delta`` of the graph (0 for an empty graph)."""
    if graph.number_of_nodes() == 0:
        return 0
    return max(degree for _, degree in graph.degree())


def is_connected(graph: nx.Graph) -> bool:
    """True iff the graph is connected (empty graphs count as connected)."""
    if graph.number_of_nodes() <= 1:
        return True
    return nx.is_connected(graph)


def graph_diameter(graph: nx.Graph) -> int:
    """The diameter of a connected graph.

    For a disconnected graph, returns the maximum diameter over the
    connected components (the algorithms run per component in that case).
    """
    if graph.number_of_nodes() <= 1:
        return 0
    if nx.is_connected(graph):
        return nx.diameter(graph)
    return max(nx.diameter(graph.subgraph(component))
               for component in nx.connected_components(graph))


def ecc_lower_bound(graph: nx.Graph, source: Node | None = None) -> int:
    """A cheap diameter lower bound: the eccentricity of one BFS sweep.

    Used by the round-cost ledger where only the order of magnitude of
    ``diam(G)`` matters; computing the exact diameter is quadratic.
    """
    if graph.number_of_nodes() <= 1:
        return 0
    if source is None:
        source = next(iter(graph.nodes()))
    distances = bounded_bfs(graph, source, graph.number_of_nodes())
    return max(distances.values(), default=0)


def relabel_consecutive(graph: nx.Graph) -> tuple[nx.Graph, dict[Node, int]]:
    """Relabel nodes to ``0..n-1``; returns the new graph and the mapping."""
    mapping = {node: index for index, node in enumerate(sorted(graph.nodes(), key=str))}
    return nx.relabel_nodes(graph, mapping), mapping

"""repro -- distributed symmetry breaking on power graphs via sparsification.

A simulation-grade reproduction of

    Yannic Maus, Saku Peltonen, Jara Uitto.
    "Distributed Symmetry Breaking on Power Graphs via Sparsification."
    PODC 2023 (arXiv:2302.06878).

The library implements, on a CONGEST simulator / round-cost model:

* the deterministic sparsification of power graphs (Lemma 3.1 / 5.1 / 5.8)
  and the communication tools of Section 4;
* the deterministic ``(k+1, k^2)``-ruling set of Theorem 1.1, plus the
  AGLP-style baselines it improves upon (Theorem 6.1, Corollary 6.2);
* the randomized MIS of ``G^k`` of Theorem 1.2 and the ``beta``-ruling sets
  of Corollary 1.3 (shattering + ball graphs + network decomposition);
* the revisited shattering MIS of ``G`` of Theorem 1.4;
* the baselines used for comparison (Luby on ``G^k``, BeepingMIS, KP12).

Quickstart
----------
>>> import networkx as nx
>>> from repro import deterministic_power_ruling_set, verify_ruling_set
>>> graph = nx.random_regular_graph(4, 60, seed=1)
>>> result = deterministic_power_ruling_set(graph, k=2)
>>> report = verify_ruling_set(graph, result.ruling_set, alpha=3, beta=result.beta_bound)
>>> report.ok
True
"""

from repro.congest import (
    ActiveSetEngine,
    CongestNetwork,
    NodeAlgorithm,
    RoundLedger,
    RoundObserver,
    Simulator,
    SyncEngine,
)
from repro.core import (
    check_power_sparsification,
    check_sparsification,
    det_sparsification,
    power_graph_sparsification,
    power_graph_sparsification_low_diameter,
    randomized_sparsification,
    verify_invariants,
)
from repro.decomposition import form_distance_k_ball_graph, network_decomposition
from repro.graphs import power_graph
from repro.mis import (
    beeping_mis,
    beeping_mis_power,
    luby_mis,
    luby_mis_power,
    power_graph_mis,
    power_graph_ruling_set,
    shattering_mis,
)
from repro.ruling import (
    aglp_ruling_set,
    deterministic_power_ruling_set,
    greedy_mis,
    id_based_ruling_set,
    is_mis_of_power_graph,
    is_ruling_set,
    verify_ruling_set,
)

__version__ = "1.0.0"

__all__ = [
    "ActiveSetEngine",
    "CongestNetwork",
    "NodeAlgorithm",
    "RoundLedger",
    "RoundObserver",
    "Simulator",
    "SyncEngine",
    "aglp_ruling_set",
    "beeping_mis",
    "beeping_mis_power",
    "check_power_sparsification",
    "check_sparsification",
    "det_sparsification",
    "deterministic_power_ruling_set",
    "form_distance_k_ball_graph",
    "greedy_mis",
    "id_based_ruling_set",
    "is_mis_of_power_graph",
    "is_ruling_set",
    "luby_mis",
    "luby_mis_power",
    "network_decomposition",
    "power_graph",
    "power_graph_mis",
    "power_graph_ruling_set",
    "power_graph_sparsification",
    "power_graph_sparsification_low_diameter",
    "randomized_sparsification",
    "shattering_mis",
    "verify_invariants",
    "verify_ruling_set",
    "__version__",
]

"""repro -- distributed symmetry breaking on power graphs via sparsification.

A simulation-grade reproduction of

    Yannic Maus, Saku Peltonen, Jara Uitto.
    "Distributed Symmetry Breaking on Power Graphs via Sparsification."
    PODC 2023 (arXiv:2302.06878).

The library implements, on a CONGEST simulator / round-cost model:

* the deterministic sparsification of power graphs (Lemma 3.1 / 5.1 / 5.8)
  and the communication tools of Section 4;
* the deterministic ``(k+1, k^2)``-ruling set of Theorem 1.1, plus the
  AGLP-style baselines it improves upon (Theorem 6.1, Corollary 6.2);
* the randomized MIS of ``G^k`` of Theorem 1.2 and the ``beta``-ruling sets
  of Corollary 1.3 (shattering + ball graphs + network decomposition);
* the revisited shattering MIS of ``G`` of Theorem 1.4;
* the baselines used for comparison (Luby on ``G^k``, BeepingMIS, KP12).

Quickstart
----------
Every algorithm is registered in the typed solver API and dispatched
through one call -- ``repro.solve(graph, algorithm_or_problem, **config)``
-- which returns a :class:`~repro.api.RunReport` carrying the solution set,
the charged CONGEST rounds, provenance (algorithm, config, derived seed,
graph fingerprint) and a verification certificate:

>>> import networkx as nx
>>> import repro
>>> graph = nx.random_regular_graph(4, 60, seed=1)
>>> report = repro.solve(graph, "det-power-ruling", k=2, seed=7)
>>> report.certificate.ok          # (k+1, k^2)-ruling set, verified
True
>>> report.rounds > 0              # charged CONGEST rounds
True
>>> replayed = repro.replay(graph, report.provenance)
>>> replayed.output == report.output
True

``repro.solve(graph, "mis-power", k=2)`` dispatches a problem *family* to
its default algorithm (Theorem 1.2's shattering MIS).  The registered
algorithms are listed by ``repro.api.REGISTRY.algorithm_names()`` and the
``repro`` command line (``repro solve <cell> <algorithm>``,
``repro scenarios run --smoke``).  ``repro serve`` exposes the same solves
over JSON/HTTP behind the content-addressed cache of
:mod:`repro.service`.

The legacy free functions (``repro.power_graph_mis`` and friends) remain as
deprecation shims with bit-identical outputs; new code should call
``repro.solve`` or import the implementation modules directly.
"""

import functools as _functools
import warnings as _warnings

from repro import api
from repro.api import (
    Certificate,
    Problem,
    Provenance,
    RunReport,
    replay,
    solve,
    solve_batch,
)
from repro.api.registry import Algorithm, SolverRegistry
from repro.congest import (
    ActiveSetEngine,
    CongestNetwork,
    NodeAlgorithm,
    RoundLedger,
    RoundObserver,
    Simulator,
    SyncEngine,
)
from repro.core.detsparsify import det_sparsification as _det_sparsification
from repro.core.invariants import (
    check_power_sparsification,
    check_sparsification,
    verify_invariants,
)
from repro.core.power_sparsify import (
    power_graph_sparsification as _power_graph_sparsification,
    power_graph_sparsification_low_diameter as _power_graph_sparsification_low_diameter,
)
from repro.core.sampling import randomized_sparsification as _randomized_sparsification
from repro.decomposition.ball_graph import (
    form_distance_k_ball_graph as _form_distance_k_ball_graph,
)
from repro.decomposition.network_decomposition import (
    network_decomposition as _network_decomposition,
)
from repro.graphs import power_graph
from repro.mis.beeping import (
    beeping_mis as _beeping_mis,
    beeping_mis_power as _beeping_mis_power,
)
from repro.mis.luby import luby_mis as _luby_mis, luby_mis_power as _luby_mis_power
from repro.mis.power_mis import power_graph_mis as _power_graph_mis
from repro.mis.power_ruling import power_graph_ruling_set as _power_graph_ruling_set
from repro.mis.shattering import shattering_mis as _shattering_mis
from repro.ruling.aglp import (
    aglp_ruling_set as _aglp_ruling_set,
    id_based_ruling_set as _id_based_ruling_set,
)
from repro.ruling.det_ruling_set import (
    deterministic_power_ruling_set as _deterministic_power_ruling_set,
)
from repro.ruling.greedy import greedy_mis as _greedy_mis
from repro.ruling.verify import (
    is_mis_of_power_graph,
    is_ruling_set,
    verify_ruling_set,
)

__version__ = "1.2.0"


def _deprecated_shim(func, api_name=None):
    """Wrap a legacy free function in a DeprecationWarning-emitting shim.

    The shim delegates verbatim (bit-identical outputs); the replacement
    hint names the ``repro.solve`` algorithm when one exists.  Internal
    code imports the implementation modules directly and never routes
    through these shims -- the parity suite runs with
    ``-W error::DeprecationWarning`` to enforce that.
    """
    if api_name:
        hint = f'repro.solve(graph, "{api_name}", ...)'
    else:
        hint = f"{func.__module__}.{func.__name__}"

    @_functools.wraps(func)
    def shim(*args, **kwargs):
        _warnings.warn(
            f"repro.{func.__name__} is deprecated; use {hint} "
            f"(or import {func.__module__}.{func.__name__} directly)",
            DeprecationWarning, stacklevel=2)
        return func(*args, **kwargs)

    return shim


# Legacy solver entry points -> deprecation shims over the implementation
# modules, each annotated with its ``repro.solve`` algorithm name.
aglp_ruling_set = _deprecated_shim(_aglp_ruling_set, "aglp")
beeping_mis = _deprecated_shim(_beeping_mis, "beeping")
beeping_mis_power = _deprecated_shim(_beeping_mis_power, "beeping-power")
det_sparsification = _deprecated_shim(_det_sparsification, "det-sparsify")
deterministic_power_ruling_set = _deprecated_shim(
    _deterministic_power_ruling_set, "det-power-ruling")
form_distance_k_ball_graph = _deprecated_shim(
    _form_distance_k_ball_graph, "ball-graph")
greedy_mis = _deprecated_shim(_greedy_mis, "greedy-mis")
id_based_ruling_set = _deprecated_shim(_id_based_ruling_set, "id-ruling")
luby_mis = _deprecated_shim(_luby_mis, "luby")
luby_mis_power = _deprecated_shim(_luby_mis_power, "luby-power")
network_decomposition = _deprecated_shim(
    _network_decomposition, "network-decomposition")
power_graph_mis = _deprecated_shim(_power_graph_mis, "power-mis")
power_graph_ruling_set = _deprecated_shim(
    _power_graph_ruling_set, "power-ruling")
power_graph_sparsification = _deprecated_shim(
    _power_graph_sparsification, "sparsify")
power_graph_sparsification_low_diameter = _deprecated_shim(
    _power_graph_sparsification_low_diameter, "sparsify-low-diameter")
randomized_sparsification = _deprecated_shim(
    _randomized_sparsification, "randomized-sparsify")
shattering_mis = _deprecated_shim(_shattering_mis, "shattering-mis")

__all__ = [
    "ActiveSetEngine",
    "Algorithm",
    "Certificate",
    "CongestNetwork",
    "NodeAlgorithm",
    "Problem",
    "Provenance",
    "RoundLedger",
    "RoundObserver",
    "RunReport",
    "Simulator",
    "SolverRegistry",
    "SyncEngine",
    "aglp_ruling_set",
    "api",
    "beeping_mis",
    "beeping_mis_power",
    "check_power_sparsification",
    "check_sparsification",
    "det_sparsification",
    "deterministic_power_ruling_set",
    "form_distance_k_ball_graph",
    "greedy_mis",
    "id_based_ruling_set",
    "is_mis_of_power_graph",
    "is_ruling_set",
    "luby_mis",
    "luby_mis_power",
    "network_decomposition",
    "power_graph",
    "power_graph_mis",
    "power_graph_ruling_set",
    "power_graph_sparsification",
    "power_graph_sparsification_low_diameter",
    "randomized_sparsification",
    "replay",
    "shattering_mis",
    "solve",
    "solve_batch",
    "verify_invariants",
    "verify_ruling_set",
    "__version__",
]

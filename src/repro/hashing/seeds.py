"""Bit-string seeds manipulated by the derandomization (Claim 5.6).

The method of conditional expectations fixes the ``gamma = Theta(log^2 n)``
random bits of the hash-function seed one at a time.  A :class:`BitSeed` is
simply a list of bits with helpers for extending a prefix with 0 or 1.

The module also provides deterministic *seed derivation*
(:func:`derive_seed` / :func:`derive_bit_seed`): a stable map from a
namespace of labels (scenario name, repeat index, base seed, ...) to an
integer seed or bit string.  The scenario batch runner uses it so that every
task's randomness is a pure function of its identity -- independent of
worker scheduling, process count or execution order.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, Sequence

__all__ = ["BitSeed", "derive_bit_seed", "derive_seed", "seed_from_bits"]


class BitSeed(Sequence[int]):
    """An immutable sequence of bits (each 0 or 1)."""

    __slots__ = ("_bits",)

    def __init__(self, bits: Iterable[int] = ()) -> None:
        self._bits = tuple(1 if bit else 0 for bit in bits)

    # Sequence protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._bits)

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return BitSeed(self._bits[index])
        return self._bits[index]

    def __iter__(self) -> Iterator[int]:
        return iter(self._bits)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BitSeed):
            return self._bits == other._bits
        if isinstance(other, (tuple, list)):
            return list(self._bits) == list(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._bits)

    def __repr__(self) -> str:
        return f"BitSeed({''.join(str(b) for b in self._bits)})"

    # Construction helpers ----------------------------------------------
    def extended(self, bit: int) -> "BitSeed":
        """A new seed with ``bit`` appended (the prefix grows by one)."""
        return BitSeed(self._bits + ((1 if bit else 0),))

    def padded(self, length: int, fill: int = 0) -> "BitSeed":
        """Zero-pad (or truncate) to exactly ``length`` bits."""
        bits = list(self._bits[:length])
        bits.extend([1 if fill else 0] * (length - len(bits)))
        return BitSeed(bits)

    def as_int(self) -> int:
        value = 0
        for bit in self._bits:
            value = (value << 1) | bit
        return value


def seed_from_bits(bits: Iterable[int]) -> BitSeed:
    """Convenience constructor mirroring :class:`BitSeed`."""
    return BitSeed(bits)


def derive_seed(*parts: object, bits: int = 48) -> int:
    """A deterministic integer seed derived from ``parts``.

    The parts are joined (as strings, with an unambiguous separator) and
    hashed with SHA-256; the result is the low ``bits`` bits of the digest.
    Unlike :func:`hash`, the value is stable across processes and Python
    invocations, which is what makes resume-from-store caching and
    failing-seed reporting reproducible.
    """
    if bits < 1:
        raise ValueError("bits must be >= 1")
    text = "\x1f".join(f"{type(part).__name__}:{part}" for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest, "big") & ((1 << bits) - 1)


def derive_bit_seed(*parts: object, bits: int = 48) -> BitSeed:
    """:func:`derive_seed` packaged as a :class:`BitSeed` of length ``bits``."""
    value = derive_seed(*parts, bits=bits)
    return BitSeed((value >> (bits - 1 - index)) & 1 for index in range(bits))

"""k-wise independent hash families (Lemma 2.3 / Definition 2.2).

We use the classic construction: a uniformly random polynomial of degree
``k - 1`` over a prime field ``F_p`` with ``p >= max(N, L)`` is a k-wise
independent family ``h : [N] -> [p]``; reducing the output modulo ``L``
yields values that are close to uniform on ``[L]`` (exactly uniform when
``L`` divides ``p``; the slight non-uniformity is at most ``L / p`` per value
and we pick ``p`` polynomially larger than ``L`` so it is negligible --
this matches the standard treatment in [Vad12] which the paper cites).

The seed of a function is the ``k`` coefficients, i.e. ``k * ceil(log2 p)``
bits, which is the ``k * max(a, b)`` random bits of Lemma 2.3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.hashing.seeds import BitSeed

__all__ = ["KWiseHashFamily", "KWiseHashFunction"]


def _is_prime(candidate: int) -> bool:
    """Deterministic Miller-Rabin for 64-bit-ish integers."""
    if candidate < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for prime in small_primes:
        if candidate % prime == 0:
            return candidate == prime
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for witness in small_primes:
        x = pow(witness, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def next_prime(lower_bound: int) -> int:
    """The smallest prime >= ``lower_bound``."""
    candidate = max(2, lower_bound)
    if candidate % 2 == 0 and candidate != 2:
        candidate += 1
    while not _is_prime(candidate):
        candidate += 2 if candidate > 2 else 1
    return candidate


@dataclass(frozen=True)
class KWiseHashFunction:
    """A single member of a k-wise independent family.

    ``h(x) = (sum_i coeffs[i] * x^i mod p) mod output_range``.
    """

    coefficients: tuple[int, ...]
    prime: int
    output_range: int

    def __call__(self, x: int) -> int:
        value = 0
        for coefficient in reversed(self.coefficients):  # Horner's rule
            value = (value * x + coefficient) % self.prime
        return value % self.output_range

    def field_value(self, x: int) -> int:
        """The raw polynomial value in ``F_p`` (before the mod-L reduction)."""
        value = 0
        for coefficient in reversed(self.coefficients):
            value = (value * x + coefficient) % self.prime
        return value

    @property
    def independence(self) -> int:
        return len(self.coefficients)


class KWiseHashFamily:
    """A ``k``-wise independent family ``H = {h : [domain] -> [output_range]}``.

    Parameters
    ----------
    independence:
        The independence parameter ``k`` (the polynomial degree is ``k - 1``).
    domain:
        Upper bound on hashed keys (node IDs).
    output_range:
        ``L``: hash values are uniform-ish over ``[0, L)``.
    prime_slack:
        The field size is the smallest prime ``>= prime_slack * max(domain,
        output_range)``; a larger slack reduces the mod-L bias.
    """

    def __init__(self, independence: int, domain: int, output_range: int,
                 *, prime_slack: int = 64) -> None:
        if independence < 1:
            raise ValueError("independence must be >= 1")
        if output_range < 1:
            raise ValueError("output_range must be >= 1")
        self.independence = independence
        self.domain = max(2, domain)
        self.output_range = output_range
        self.prime = next_prime(prime_slack * max(self.domain, output_range, 2))
        self.bits_per_coefficient = self.prime.bit_length()
        self.seed_bits = independence * self.bits_per_coefficient

    # ----------------------------------------------------------- sampling
    def sample(self, rng: random.Random) -> KWiseHashFunction:
        """Draw a uniformly random member of the family."""
        coefficients = tuple(rng.randrange(self.prime) for _ in range(self.independence))
        return KWiseHashFunction(coefficients, self.prime, self.output_range)

    def from_seed(self, seed: BitSeed | Sequence[int]) -> KWiseHashFunction:
        """Deterministically map a bit string to a member of the family.

        The seed is split into ``independence`` chunks of
        ``bits_per_coefficient`` bits; each chunk is reduced mod ``p``.  A
        short seed is zero-padded (so a partially fixed seed still denotes a
        function, which is what the bit-by-bit derandomization manipulates).
        """
        bits = list(seed)
        bits.extend([0] * (self.seed_bits - len(bits)))
        coefficients = []
        for index in range(self.independence):
            chunk = bits[index * self.bits_per_coefficient:(index + 1) * self.bits_per_coefficient]
            value = 0
            for bit in chunk:
                value = (value << 1) | (1 if bit else 0)
            coefficients.append(value % self.prime)
        return KWiseHashFunction(tuple(coefficients), self.prime, self.output_range)

    def random_seed(self, rng: random.Random) -> BitSeed:
        """A uniformly random full-length seed."""
        return BitSeed([rng.randrange(2) for _ in range(self.seed_bits)])

"""k-wise independent hash families and seeded randomness (Section 2).

The derandomization of Section 5.2 simulates the random choices of one stage
of the sampling algorithm with an ``8 log n``-wise independent hash family
whose seed is ``Theta(log^2 n)`` bits (Lemma 2.3).  The seed bits are then
fixed one by one with the method of conditional expectations (Claim 5.6).
"""

from repro.hashing.kwise import KWiseHashFamily, KWiseHashFunction
from repro.hashing.seeds import BitSeed, derive_bit_seed, derive_seed, seed_from_bits

__all__ = [
    "BitSeed",
    "KWiseHashFamily",
    "KWiseHashFunction",
    "derive_bit_seed",
    "derive_seed",
    "seed_from_bits",
]

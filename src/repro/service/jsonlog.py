"""Structured (JSON-lines) logging for the service layer.

One logger -- ``repro.service`` -- carries every operational event: one
``request`` line per served request (key, cell, algorithm, status, shard,
latency_ms, cache tier), plus lifecycle events (``client_disconnected``,
``stream_closed``, ``job_error``, ...).  Events are emitted through
:func:`log_event`, which stashes the structured fields on the record;
:class:`JsonLineFormatter` renders each record as exactly one JSON object
per line, machine-parseable by anything that eats JSONL.

By default the logger has no handler and the root logger sits at
``WARNING``, so the per-request ``isEnabledFor`` guard short-circuits and
serving pays almost nothing.  ``repro serve --log-json PATH`` (or ``-``
for stdout) attaches a handler via :func:`configure_json_logging`.
"""

from __future__ import annotations

import json
import logging
import logging.handlers
import sys
from typing import Any

__all__ = [
    "DEFAULT_LOG_MAX_BYTES",
    "DEFAULT_LOG_BACKUPS",
    "SERVICE_LOGGER",
    "JsonLineFormatter",
    "configure_json_logging",
    "log_event",
    "service_logger",
]

SERVICE_LOGGER = "repro.service"

#: Default size-based rotation for file logs: rotate at 64 MiB, keep 3
#: rotated generations (``PATH.1`` .. ``PATH.3``) -- ~256 MiB worst case
#: per long-running worker.  ``max_bytes=0`` disables rotation entirely.
DEFAULT_LOG_MAX_BYTES = 64 * 1024 * 1024
DEFAULT_LOG_BACKUPS = 3

#: Attribute carrying the structured payload on a LogRecord.
_FIELDS_ATTR = "repro_fields"


def service_logger() -> logging.Logger:
    return logging.getLogger(SERVICE_LOGGER)


def log_event(event: str, *, logger: logging.Logger | None = None,
              level: int = logging.INFO, **fields: Any) -> None:
    """Emit one structured event (a no-op when nothing listens)."""
    logger = logger if logger is not None else service_logger()
    if not logger.isEnabledFor(level):
        return
    logger.log(level, event, extra={_FIELDS_ATTR: fields})


class JsonLineFormatter(logging.Formatter):
    """One JSON object per record: timestamp, level, event, fields."""

    def format(self, record: logging.LogRecord) -> str:
        doc: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, _FIELDS_ATTR, None)
        if isinstance(fields, dict):
            for key, value in fields.items():
                if key not in doc:
                    doc[key] = value
        if record.exc_info and record.exc_info[1] is not None:
            doc["exception"] = repr(record.exc_info[1])
        return json.dumps(doc, sort_keys=True, default=str)


def configure_json_logging(path: str | None, *,
                           level: int = logging.INFO,
                           max_bytes: int = DEFAULT_LOG_MAX_BYTES,
                           backup_count: int = DEFAULT_LOG_BACKUPS,
                           ) -> logging.Handler | None:
    """Attach a JSON-lines handler to the service logger.

    ``path`` of ``"-"`` streams to stdout; any other string appends to
    that file; ``None`` is a no-op (returns ``None``).  File logs rotate
    by size: when the file would exceed ``max_bytes`` it is renamed to
    ``PATH.1`` (shifting older generations up to ``backup_count``) and a
    fresh file is started, so a long-running worker's log stays bounded.
    The default is :data:`DEFAULT_LOG_MAX_BYTES` (64 MiB) with
    :data:`DEFAULT_LOG_BACKUPS` (3) rotated files; ``max_bytes=0``
    disables rotation and appends forever (the historical behaviour).
    The returned handler lets callers (tests, ``serve`` teardown) detach
    it again with ``service_logger().removeHandler(handler)``.
    """
    if path is None:
        return None
    if path == "-":
        handler: logging.Handler = logging.StreamHandler(sys.stdout)
    else:
        handler = logging.handlers.RotatingFileHandler(
            path, maxBytes=max(0, int(max_bytes)),
            backupCount=max(0, int(backup_count)), encoding="utf-8")
    handler.setFormatter(JsonLineFormatter())
    handler.setLevel(level)
    logger = service_logger()
    logger.addHandler(handler)
    if logger.level == logging.NOTSET or logger.level > level:
        logger.setLevel(level)
    return handler

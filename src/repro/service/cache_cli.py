"""``repro cache``: operate the persistent solve-cache tier from the CLI.

``repro cache warm --trace service.jsonl --top 32``
    Replay the hottest request shapes from a recorded traffic trace into
    a cache, so a freshly provisioned node (or a worker about to enroll
    in a fleet) starts warm instead of paying cold solves for its whole
    working set.  The trace is a ``repro serve --log-json`` stream: every
    completed request logs an ``event: "request"`` line carrying its full
    shape (workload, algorithm, config, graph_seed, seed), which makes
    the log replayable by construction.  Keys are ranked by how often
    they appear; the top K are re-solved either

    * against a running service (``--server URL``) -- the server's own
      scheduler computes and caches, so its in-process LRU warms too; or
    * directly into a local store (``--cache-path``, plus the same
      sharding/budget/TTL knobs ``repro serve`` takes) via an inline
      scheduler -- point it at the directory a fleet worker will mount.

``repro cache stats [--cache-path PATH]``
    The warmth summary, per-shard occupancy table and store event
    counters of a cache store.

``repro cache compact [--cache-path PATH]``
    Compact the persistent tier: drop dead segment bytes (superseded and
    evicted rows) in the sharded layout, or rewrite the legacy single
    ``.jsonl`` keeping live rows.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from collections import Counter
from typing import Any, Sequence

__all__ = ["add_cache_arguments", "main"]

#: Default replay breadth: enough to cover a working set's hot head
#: without turning warming into a full recompute of the trace.
DEFAULT_TOP = 32


def _add_store_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-path", default=None,
                        help="cache store path (default: the shared "
                             "solve-cache directory)")
    parser.add_argument("--cache-shards", type=int, default=None,
                        help="key shards when creating a sharded store")
    parser.add_argument("--cache-budget-mb", type=float, default=None,
                        dest="cache_budget_mb", metavar="MB",
                        help="on-disk size budget for the store")
    parser.add_argument("--cache-ttl", type=float, default=None,
                        dest="cache_ttl", metavar="SECONDS",
                        help="expire entries older than this")
    parser.add_argument("--memory-entries", type=int, default=1024,
                        help="in-process LRU capacity while warming")


def add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    commands = parser.add_subparsers(dest="command", required=True)

    warm = commands.add_parser(
        "warm", help="replay the hottest keys of a recorded traffic trace")
    warm.add_argument("--trace", required=True,
                      help="a 'repro serve --log-json' stream to replay")
    warm.add_argument("--top", type=int, default=DEFAULT_TOP,
                      help=f"how many of the most-requested keys to warm "
                           f"(default: {DEFAULT_TOP})")
    warm.add_argument("--server", default=None, metavar="URL",
                      help="warm a running service instead of a local "
                           "store (POSTs each shape to its /solve)")
    warm.add_argument("--no-verify", action="store_true",
                      help="skip certificate verification on replayed "
                           "solves (faster; cached rows stay uncertified)")
    _add_store_arguments(warm)

    stats = commands.add_parser(
        "stats", help="warmth summary and per-shard occupancy of a store")
    _add_store_arguments(stats)

    compact = commands.add_parser(
        "compact", help="drop dead rows/segments from the persistent tier")
    _add_store_arguments(compact)


def _build_cache(args: argparse.Namespace):
    from repro.service.server import build_cache_from_args

    return build_cache_from_args(args)


# ---------------------------------------------------------------------------
# warm
# ---------------------------------------------------------------------------

def _load_trace(path: str, top: int) -> list[tuple[str, int, dict[str, Any]]]:
    """``(key, request_count, request_shape)`` for the top-K hottest keys.

    Only ``event: "request"`` lines that carry a replayable shape count;
    corrupt lines and rows from older logs (no shape fields) are skipped,
    so a trace that rotated mid-upgrade still warms what it can.
    """
    counts: Counter[str] = Counter()
    shapes: dict[str, dict[str, Any]] = {}
    skipped = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if not isinstance(row, dict) or row.get("event") != "request":
                continue
            key = row.get("key")
            if (not isinstance(key, str) or not key
                    or not row.get("workload") or not row.get("algorithm")):
                skipped += 1
                continue
            counts[key] += 1
            shapes[key] = {
                "workload": row["workload"],
                "algorithm": row["algorithm"],
                "config": row.get("config") or {},
                "graph_seed": int(row.get("graph_seed") or 0),
                "seed": row.get("seed"),
            }
    if skipped:
        print(f"[repro.cache] skipped {skipped} unreplayable trace lines",
              file=sys.stderr)
    return [(key, count, shapes[key])
            for key, count in counts.most_common(max(1, top))]


def _warm_via_server(url: str, hot: list[tuple[str, int, dict[str, Any]]],
                     verify: bool) -> int:
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(url)
    tiers: Counter[str] = Counter()
    failures = 0
    for key, count, shape in hot:
        try:
            row = client.solve(shape["workload"], shape["algorithm"],
                               config=shape["config"],
                               graph_seed=shape["graph_seed"],
                               seed=shape["seed"], verify=verify)
        except (ServiceError, OSError) as error:
            failures += 1
            print(f"[repro.cache] {key[:12]}… x{count}: FAILED ({error})")
            continue
        tier = row.get("tier") or "computed"
        tiers[tier] += 1
        print(f"[repro.cache] {key[:12]}… x{count}: {tier}")
    summary = ", ".join(f"{tier}={n}" for tier, n in sorted(tiers.items()))
    print(f"[repro.cache] warmed {sum(tiers.values())}/{len(hot)} keys "
          f"on {url} ({summary or 'nothing'})")
    return 1 if failures else 0


def _warm_locally(args: argparse.Namespace,
                  hot: list[tuple[str, int, dict[str, Any]]],
                  verify: bool) -> int:
    from repro.service.scheduler import SolveRequest, SolveScheduler

    cache = _build_cache(args)
    scheduler = SolveScheduler(cache=cache, shards=1, inline=True,
                               metrics=None, tracing=False)
    tiers: Counter[str] = Counter()
    failures = 0

    async def replay() -> None:
        nonlocal failures
        await scheduler.start()
        try:
            for key, count, shape in hot:
                request = SolveRequest.from_obj({**shape, "verify": verify})
                try:
                    response = await scheduler.submit(request)
                except Exception as error:  # noqa: BLE001 - per-key report
                    failures += 1
                    print(f"[repro.cache] {key[:12]}… x{count}: "
                          f"FAILED ({error})")
                    continue
                tier = response.tier or "computed"
                tiers[tier] += 1
                print(f"[repro.cache] {key[:12]}… x{count}: {tier}")
        finally:
            await scheduler.stop()

    asyncio.run(replay())
    summary = ", ".join(f"{tier}={n}" for tier, n in sorted(tiers.items()))
    print(f"[repro.cache] warmed {sum(tiers.values())}/{len(hot)} keys "
          f"into {cache.path or 'memory'} ({summary or 'nothing'}); "
          f"store now holds {len(cache)} entries")
    return 1 if failures else 0


def _cmd_warm(args: argparse.Namespace) -> int:
    try:
        hot = _load_trace(args.trace, args.top)
    except OSError as error:
        print(f"[repro.cache] cannot read trace {args.trace!r}: {error}",
              file=sys.stderr)
        return 2
    if not hot:
        print(f"[repro.cache] trace {args.trace!r} holds no replayable "
              f"request lines", file=sys.stderr)
        return 2
    verify = not args.no_verify
    if args.server:
        return _warm_via_server(args.server.rstrip("/"), hot, verify)
    return _warm_locally(args, hot, verify)


# ---------------------------------------------------------------------------
# stats / compact
# ---------------------------------------------------------------------------

def _cmd_stats(args: argparse.Namespace) -> int:
    cache = _build_cache(args)
    summary = cache.warmth_summary()
    print(f"[repro.cache] {cache.path or '(memory only)'}")
    print(f"  tier={summary['tier']}  "
          f"persistent-entries={summary['persistent_entries']}  "
          f"bytes={summary.get('persistent_bytes', 0)}")
    for row in cache.shard_occupancy():
        print(f"  shard {row['shard']:>2}: entries={row['entries']:>6}  "
              f"live={row['live_bytes']:>10}B  disk={row['disk_bytes']:>10}B  "
              f"segments={row['segments']}  dead-rows={row['dead_rows']}")
    counters = cache.store_counters()
    if counters:
        print("  events: " + "  ".join(
            f"{name}={value}" for name, value in sorted(counters.items())))
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    cache = _build_cache(args)
    kept, dropped = cache.compact()
    print(f"[repro.cache] compacted {cache.path}: kept {kept}, "
          f"dropped {dropped}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="operate the persistent solve-cache tier")
    add_cache_arguments(parser)
    args = parser.parse_args(argv)
    if args.command == "warm":
        return _cmd_warm(args)
    if args.command == "stats":
        return _cmd_stats(args)
    return _cmd_compact(args)


if __name__ == "__main__":  # pragma: no cover - exercised via ``repro cache``
    sys.exit(main())

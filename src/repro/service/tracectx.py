"""W3C-traceparent-style trace context + ring-buffered span recording.

The fleet's distributed tracing is stdlib-only and deliberately small:

* :class:`TraceContext` is the propagated identity -- a 128-bit trace id,
  a 64-bit span id, and the parent span id -- carried between hops as the
  ``X-Repro-Trace`` HTTP header in W3C ``traceparent`` shape::

      00-<32 hex trace_id>-<16 hex span_id>-01

  The receiver parses the header, derives a :meth:`TraceContext.child`
  (fresh span id, ``parent_id`` = the sender's span id), and records its
  own work under that child.  Malformed headers parse to ``None`` and the
  hop simply goes untraced -- tracing never fails a request.

* :class:`Span` is one recorded unit of work: name, owning service,
  wall-clock start, duration, ``ok``/``error`` status and free-form
  attributes.  Spans serialize to plain dict rows so they can cross
  process boundaries (the worker pool returns them in-band with the
  report) and HTTP boundaries (coordinator ``GET /trace/<id>`` assembly).

* :class:`SpanRecorder` is the per-process store: a thread-safe, LRU
  ring of per-trace span lists with hard caps on both the number of
  retained traces and the spans per trace, so a long-lived worker's
  memory stays bounded no matter the traffic.  Overflow increments
  ``dropped_total`` instead of growing; :meth:`SpanRecorder.export_jsonl`
  dumps everything as JSON lines for offline tooling.

* :class:`TraceRunObserver` bridges engine execution into the trace: a
  passive, ``vector_compatible`` run observer that records the
  ``engine.run`` phase (engine used, rounds, message totals) as a child
  span without forcing the vector engine onto its scalar fallback.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.congest.observers import RoundObserver

__all__ = [
    "Span",
    "SpanRecorder",
    "TraceContext",
    "TraceRunObserver",
    "TRACE_HEADER",
]

#: HTTP header carrying the trace context between fleet hops.
TRACE_HEADER = "X-Repro-Trace"

_VERSION = "00"
_FLAGS = "01"  # always sampled: recording is cheap and ring-bounded


def _hex(n_bytes: int) -> str:
    return os.urandom(n_bytes).hex()


def _is_hex(value: str, length: int) -> bool:
    if len(value) != length:
        return False
    try:
        int(value, 16)
    except ValueError:
        return False
    return True


@dataclass(frozen=True)
class TraceContext:
    """One hop's identity inside a trace (immutable; derive with child)."""

    trace_id: str
    span_id: str
    parent_id: str | None = None

    @classmethod
    def new(cls) -> "TraceContext":
        """Mint a fresh root context (new trace id, no parent)."""
        return cls(trace_id=_hex(16), span_id=_hex(8))

    def child(self) -> "TraceContext":
        """Derive the next hop: same trace, fresh span, parented here."""
        return TraceContext(trace_id=self.trace_id, span_id=_hex(8),
                            parent_id=self.span_id)

    def to_header(self) -> str:
        """Render the ``X-Repro-Trace`` header value."""
        return f"{_VERSION}-{self.trace_id}-{self.span_id}-{_FLAGS}"

    @classmethod
    def from_header(cls, value: str | None) -> "TraceContext | None":
        """Parse a header value; ``None`` for anything malformed.

        A bad header must never fail the request -- the caller treats
        ``None`` as "this hop is untraced" and carries on.
        """
        if not value or not isinstance(value, str):
            return None
        parts = value.strip().split("-")
        if len(parts) != 4:
            return None
        version, trace_id, span_id, _flags = parts
        if not _is_hex(version, 2) or version == "ff":
            return None
        if not _is_hex(trace_id, 32) or not _is_hex(span_id, 16):
            return None
        if trace_id == "0" * 32 or span_id == "0" * 16:
            return None
        return cls(trace_id=trace_id.lower(), span_id=span_id.lower())


@dataclass
class Span:
    """One recorded unit of work inside a trace."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    service: str
    start_s: float
    duration_s: float
    status: str = "ok"
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_row(self) -> dict[str, Any]:
        """Plain-dict shape used across process and HTTP boundaries."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "service": self.service,
            "start_s": round(self.start_s, 6),
            "duration_ms": round(self.duration_s * 1000.0, 3),
            "status": self.status,
            "attrs": dict(self.attrs),
        }


class SpanRecorder:
    """Thread-safe LRU ring of per-trace span rows with hard caps."""

    def __init__(self, *, max_traces: int = 256,
                 max_spans_per_trace: int = 512) -> None:
        self.max_traces = max(1, int(max_traces))
        self.max_spans_per_trace = max(1, int(max_spans_per_trace))
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, list[dict[str, Any]]]" = OrderedDict()
        self.recorded_total = 0
        self.dropped_total = 0
        self.evicted_traces_total = 0

    def record(self, span: Span) -> None:
        self.record_row(span.to_row())

    def record_row(self, row: Mapping[str, Any]) -> None:
        """Store one span row (any mapping with a ``trace_id`` key)."""
        trace_id = row.get("trace_id")
        if not trace_id:
            with self._lock:
                self.dropped_total += 1
            return
        with self._lock:
            spans = self._traces.get(trace_id)
            if spans is None:
                spans = []
                self._traces[trace_id] = spans
                while len(self._traces) > self.max_traces:
                    self._traces.popitem(last=False)
                    self.evicted_traces_total += 1
            else:
                self._traces.move_to_end(trace_id)
            if len(spans) >= self.max_spans_per_trace:
                self.dropped_total += 1
                return
            spans.append(dict(row))
            self.recorded_total += 1

    def record_rows(self, rows: Iterable[Mapping[str, Any]]) -> None:
        for row in rows:
            self.record_row(row)

    def spans(self, trace_id: str) -> list[dict[str, Any]]:
        """All retained rows for one trace (copies; empty when unknown)."""
        with self._lock:
            spans = self._traces.get(trace_id)
            return [dict(row) for row in spans] if spans else []

    def trace_ids(self) -> list[str]:
        """Retained trace ids, least-recently-touched first."""
        with self._lock:
            return list(self._traces)

    def export_jsonl(self, trace_id: str | None = None) -> str:
        """Span rows as JSON lines (one trace, or every retained trace)."""
        with self._lock:
            if trace_id is not None:
                rows = list(self._traces.get(trace_id, ()))
            else:
                rows = [row for spans in self._traces.values()
                        for row in spans]
        return "\n".join(json.dumps(row, sort_keys=True) for row in rows)

    def stats_row(self) -> dict[str, int]:
        with self._lock:
            return {
                "traces": len(self._traces),
                "spans": sum(len(s) for s in self._traces.values()),
                "recorded_total": self.recorded_total,
                "dropped_total": self.dropped_total,
                "evicted_traces_total": self.evicted_traces_total,
            }


class TraceRunObserver(RoundObserver):
    """Record the engine phase of a solve as an ``engine.run`` child span.

    Passive by design: it only uses the run-level hooks, never the round
    or message hooks, so it is ``vector_compatible`` -- attaching it does
    not push a vector-registered algorithm onto the scalar fallback (the
    property the fleet's tracing-overhead gate depends on).
    """

    vector_compatible = True

    def __init__(self, parent: TraceContext, sink: list[dict[str, Any]],
                 *, service: str = "worker") -> None:
        self.parent = parent
        self.sink = sink
        self.service = service
        self._ctx: TraceContext | None = None
        self._start_s = 0.0
        self._t0 = 0.0
        self._engine = "?"

    def on_run_start(self, run) -> None:  # RunContext
        self._ctx = self.parent.child()
        self._start_s = time.time()
        self._t0 = time.perf_counter()
        self._engine = getattr(run, "engine", "?")

    def on_run_end(self, result) -> None:  # SimulationResult
        ctx = self._ctx
        if ctx is None:  # run never started
            return
        attrs: dict[str, Any] = {"engine": self._engine}
        for key in ("engine_used", "rounds", "total_messages", "halted"):
            value = getattr(result, key, None)
            if value is not None:
                attrs[key] = value
        self.sink.append(Span(
            trace_id=ctx.trace_id, span_id=ctx.span_id,
            parent_id=ctx.parent_id, name="engine.run",
            service=self.service, start_s=self._start_s,
            duration_s=time.perf_counter() - self._t0,
            attrs=attrs).to_row())
        self._ctx = None

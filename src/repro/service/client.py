"""A thin stdlib client for the ``repro serve`` endpoint.

``ServiceClient`` speaks the JSON protocol of
:mod:`repro.service.server` over ``urllib`` -- no dependencies, usable
from load generators, notebooks and CI scripts alike::

    client = ServiceClient("http://127.0.0.1:8753")
    client.wait_healthy()
    row = client.solve("regular-n64-d4", "power-mis", config={"k": 2})
    row["status"]                      # "hit" / "computed" / "coalesced"
    row["report"]["provenance"]        # identical to a fresh repro.solve
    client.stats()["hit_rate"]

``row["report"]`` is the serialised :class:`~repro.api.RunReport`;
:func:`repro.api.report_from_json` turns it back into the typed object.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
import urllib.parse
from typing import Any, Mapping

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An HTTP-level error from the service (carries the status code)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """JSON-over-HTTP client for one ``repro serve`` endpoint.

    Connections are persistent (HTTP/1.1 keep-alive) and per-thread, so a
    closed-loop load-generator thread pays the TCP handshake once, not per
    request; a dropped connection is re-opened and the request retried once.
    The client is safe to share across threads.

    Connection-error retries
    ------------------------
    ``retries=N`` allows up to ``N`` *additional* fresh-connection attempts
    (beyond the built-in immediate reconnect for stale keep-alives) when a
    request fails at the transport level -- ``ConnectionRefusedError`` while
    a server boots, ``BrokenPipeError``/``ConnectionResetError`` when it
    restarts mid-request.  Each extra attempt sleeps an exponentially
    growing backoff with multiplicative jitter first, so a herd of clients
    hammering a rebooting server de-synchronises instead of thundering.
    The default ``retries=0`` keeps the historical behaviour (and timing)
    exactly: one immediate reconnect, then the error propagates.  Retrying
    ``POST /solve`` is safe by construction -- requests are content-
    addressed, so a replayed solve is a cache hit, never a duplicate
    side effect (the fleet transport leans on exactly this).
    """

    def __init__(self, base_url: str, *, timeout: float = 600.0,
                 retries: int = 0, backoff_base_s: float = 0.05,
                 backoff_max_s: float = 2.0,
                 backoff_jitter: float = 0.25) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_max_s = float(backoff_max_s)
        self.backoff_jitter = float(backoff_jitter)
        parsed = urllib.parse.urlsplit(self.base_url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ValueError(f"expected an http://host:port URL, "
                             f"got {base_url!r}")
        self._host = parsed.hostname
        self._port = parsed.port or 80
        self._prefix = parsed.path.rstrip("/")
        self._local = threading.local()

    # ------------------------------------------------------------ plumbing
    def _connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = http.client.HTTPConnection(
                self._host, self._port, timeout=self.timeout)
            self._local.connection = connection
        return connection

    def _drop_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
        self._local.connection = None

    def _backoff_delay(self, retry_index: int) -> float:
        """Exponential backoff with multiplicative jitter for retry ``i``."""
        delay = min(self.backoff_max_s,
                    self.backoff_base_s * (2.0 ** retry_index))
        return delay * (1.0 + self.backoff_jitter * random.random())

    def _request(self, method: str, path: str,
                 body: Mapping[str, Any] | None = None,
                 extra_headers: Mapping[str, str] | None = None,
                 ) -> dict[str, Any]:
        return json.loads(self._request_bytes(
            method, path, body, extra_headers).decode("utf-8"))

    def _request_bytes(self, method: str, path: str,
                       body: Mapping[str, Any] | None = None,
                       extra_headers: Mapping[str, str] | None = None,
                       ) -> bytes:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(dict(body)).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if extra_headers:
            headers.update(extra_headers)
        # Attempt 0 plus one free immediate reconnect (stale keep-alive),
        # plus ``retries`` backed-off fresh attempts.
        attempts = 2 + self.retries
        for attempt in range(attempts):
            connection = self._connection()
            try:
                connection.request(method, self._prefix + path, body=data,
                                   headers=headers)
                response = connection.getresponse()
                payload = response.read()
            except (http.client.HTTPException, OSError):
                # Stale keep-alive or a restarted server: reconnect.
                self._drop_connection()
                if attempt + 1 >= attempts:
                    raise
                if attempt >= 1:
                    # Beyond the free immediate reconnect: back off so
                    # retry storms against a dead endpoint stay polite.
                    time.sleep(self._backoff_delay(attempt - 1))
                continue
            if response.status >= 400:
                try:
                    message = json.loads(payload.decode("utf-8")).get("error", "")
                except Exception:  # noqa: BLE001 - non-JSON error body
                    message = response.reason
                raise ServiceError(response.status, str(message))
            return payload
        raise AssertionError("unreachable")  # pragma: no cover

    def request(self, method: str, path: str,
                body: Mapping[str, Any] | None = None, *,
                headers: Mapping[str, str] | None = None) -> dict[str, Any]:
        """One raw JSON request (public: the fleet transport forwards
        pre-validated bodies verbatim instead of re-typing them).
        ``headers`` are merged over the defaults -- the fleet uses this to
        propagate the ``X-Repro-Trace`` context."""
        return self._request(method, path, body, headers)

    def request_bytes(self, method: str, path: str,
                      body: Mapping[str, Any] | None = None, *,
                      headers: Mapping[str, str] | None = None) -> bytes:
        """One request returning the raw JSON response bytes, unparsed.

        The fleet coordinator's hot path: a forwarded worker response can
        be relayed to the caller verbatim without paying a parse +
        re-serialize round-trip per report.  Error responses (>= 400) are
        still parsed and raised as :class:`ServiceError`.
        """
        return self._request_bytes(method, path, body, headers)

    # ----------------------------------------------------------- endpoints
    def solve(self, workload: str, algorithm: str, *,
              config: Mapping[str, Any] | None = None, graph_seed: int = 0,
              seed: int | None = None, verify: bool = True,
              priority: int = 10, wait: bool = True,
              stream: bool = False) -> dict[str, Any]:
        """POST one solve; returns the serving row (status, key, report).

        ``wait=False`` returns ``{"status": "accepted", "key": ...}`` as
        soon as the job is admitted; combine with ``stream=True`` and
        :meth:`stream_events` to watch the solve live, or poll
        :meth:`report`.
        """
        return self._request("POST", "/solve", {
            "workload": workload,
            "algorithm": algorithm,
            "config": dict(config or {}),
            "graph_seed": graph_seed,
            "seed": seed,
            "verify": verify,
            "priority": priority,
            "wait": wait,
            "stream": stream,
        })

    def report(self, key: str) -> dict[str, Any]:
        """GET a cached report by its content address (404 -> ServiceError)."""
        return self._request("GET", f"/report/{key}")

    def healthz(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")

    def stats(self) -> dict[str, Any]:
        return self._request("GET", "/stats")

    def metrics(self) -> str:
        """GET the Prometheus text exposition from ``/metrics``."""
        connection = http.client.HTTPConnection(
            self._host, self._port, timeout=self.timeout)
        try:
            connection.request("GET", self._prefix + "/metrics")
            response = connection.getresponse()
            payload = response.read()
            if response.status >= 400:
                try:
                    message = json.loads(payload.decode("utf-8")).get(
                        "error", "")
                except Exception:  # noqa: BLE001 - non-JSON error body
                    message = response.reason
                raise ServiceError(response.status, str(message))
            return payload.decode("utf-8")
        finally:
            connection.close()

    def stream_events(self, key: str, *, timeout: float | None = None):
        """Yield the SSE events of ``GET /events/<key>`` as dicts.

        The generator ends when the server sends the terminal ``end``
        frame (or closes the stream).  Events replay from the beginning
        for late subscribers, so calling this after ``solve(...,
        wait=False, stream=True)`` never misses early rounds.  Uses a
        dedicated connection -- the stream is unframed (read to EOF) and
        must not poison the keep-alive pool.
        """
        connection = http.client.HTTPConnection(
            self._host, self._port,
            timeout=self.timeout if timeout is None else timeout)
        try:
            connection.request("GET", self._prefix + f"/events/{key}",
                               headers={"Accept": "text/event-stream"})
            response = connection.getresponse()
            if response.status >= 400:
                payload = response.read()
                try:
                    message = json.loads(payload.decode("utf-8")).get(
                        "error", "")
                except Exception:  # noqa: BLE001 - non-JSON error body
                    message = response.reason
                raise ServiceError(response.status, str(message))
            for raw_line in response:
                line = raw_line.decode("utf-8").rstrip("\r\n")
                if not line or line.startswith(":"):
                    continue  # frame separator / keep-alive comment
                if line.startswith("data:"):
                    yield json.loads(line[len("data:"):].strip())
        finally:
            connection.close()

    def wait_healthy(self, *, deadline_s: float = 30.0,
                     interval_s: float = 0.1) -> dict[str, Any]:
        """Poll ``/healthz`` until it answers (for freshly-booted servers)."""
        deadline = time.monotonic() + deadline_s
        last_error: Exception | None = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except (ServiceError, OSError, http.client.HTTPException) as error:
                last_error = error
                time.sleep(interval_s)
        raise TimeoutError(
            f"service at {self.base_url} not healthy after {deadline_s}s "
            f"(last error: {last_error})")

"""A small stdlib metrics registry rendered in Prometheus text format.

The service layer needs three instrument kinds -- monotonic counters,
point-in-time gauges and bucketed latency histograms -- plus one wrinkle:
much of what ``/metrics`` should expose is *already counted* elsewhere
(``SolveScheduler.counters``, :class:`~repro.service.cache.CacheStats`,
``asyncio.Queue.qsize``).  Re-counting those at event time would duplicate
state and add hot-path cost, so the registry supports two styles:

* **event-driven instruments** (:class:`Counter`, :class:`Gauge`,
  :class:`Histogram`) -- mutated as things happen (e.g. the per-algorithm
  solve latency histogram, which has no other home);
* **sampled families** (:meth:`MetricsRegistry.counter_family` /
  :meth:`gauge_family`) -- a callable evaluated at scrape time that
  returns ``[(label_values, value), ...]`` straight from the live objects
  (queue depths, cache counters, scheduler status counters).

Rendering follows the Prometheus text exposition format (version 0.0.4):
``# HELP`` / ``# TYPE`` headers, escaped label values, ``_bucket`` /
``_sum`` / ``_count`` series with cumulative ``le`` buckets for
histograms.  Everything is guarded by one registry lock, so instruments
are safe to update from the scheduler loop, worker threads and HTTP
handler threads at once.

The whole module is dependency-free and import-light on purpose: a
scheduler built with ``metrics=None`` skips every call site, which is what
the <5% observability-overhead gate in ``bench_service_throughput``
compares against.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Any, Callable, Iterable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ServiceMetrics",
    "FLEET_RELAY_LATENCY_BUCKETS",
    "SOLVE_LATENCY_BUCKETS",
]

#: Default buckets of the solve-latency histograms (seconds).  Spanning
#: sub-millisecond cache hits through minute-long frontier solves.
SOLVE_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0)

#: Buckets for coordinator->worker relay latency (seconds).  Deliberately
#: coarser than :data:`SOLVE_LATENCY_BUCKETS`: a relay includes a cross-
#: host round-trip plus the remote solve, so sub-millisecond resolution is
#: noise while the tail (retries, timeouts, circuit probes) stretches past
#: a local solve's -- the top bound doubles the request-timeout ballpark.
FLEET_RELAY_LATENCY_BUCKETS: tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    30.0, 60.0, 120.0)

_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label_value(value: Any) -> str:
    return (str(value).replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _format_labels(names: Sequence[str], values: Sequence[Any],
                   extra: tuple[str, str] | None = None) -> str:
    pairs = [f'{name}="{_escape_label_value(value)}"'
             for name, value in zip(names, values)]
    if extra is not None:
        pairs.append(f'{extra[0]}="{extra[1]}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class _Instrument:
    """Shared shape: a name, help text, label names and a values table."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str], lock: threading.Lock) -> None:
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._lock = lock
        self._values: dict[tuple[str, ...], float] = {}

    def _key(self, labelvalues: Sequence[Any]) -> tuple[str, ...]:
        if len(labelvalues) != len(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {len(labelvalues)} values")
        return tuple(str(value) for value in labelvalues)

    def samples(self) -> "list[str]":
        return [f"{self.name}{_format_labels(self.labelnames, key)} "
                f"{_format_value(value)}"
                for key, value in sorted(self._values.items())]

    def render(self) -> str:
        lines = [f"# HELP {self.name} {self.help_text}",
                 f"# TYPE {self.name} {self.kind}"]
        lines.extend(self.samples())
        return "\n".join(lines)


class Counter(_Instrument):
    """A monotonic counter, optionally labeled."""

    kind = "counter"

    def inc(self, *labelvalues: Any, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labelvalues)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, *labelvalues: Any) -> float:
        with self._lock:
            return self._values.get(self._key(labelvalues), 0.0)


class Gauge(_Instrument):
    """A point-in-time value, optionally labeled."""

    kind = "gauge"

    def set(self, value: float, *labelvalues: Any) -> None:
        key = self._key(labelvalues)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, *labelvalues: Any, amount: float = 1.0) -> None:
        key = self._key(labelvalues)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, *labelvalues: Any, amount: float = 1.0) -> None:
        self.inc(*labelvalues, amount=-amount)

    def value(self, *labelvalues: Any) -> float:
        with self._lock:
            return self._values.get(self._key(labelvalues), 0.0)


class Histogram(_Instrument):
    """A bucketed histogram with cumulative ``le`` series.

    Per label set the table holds ``[count_per_bucket..., sum, count]``;
    buckets are upper bounds (``le``), cumulated at render time so the
    observe path is one bisect + three adds.
    """

    kind = "histogram"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str],
                 lock: threading.Lock,
                 buckets: Sequence[float] = SOLVE_LATENCY_BUCKETS) -> None:
        super().__init__(name, help_text, labelnames, lock)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")
        self._table: dict[tuple[str, ...], list[float]] = {}

    def observe(self, value: float, *labelvalues: Any) -> None:
        key = self._key(labelvalues)
        with self._lock:
            row = self._table.get(key)
            if row is None:
                row = [0.0] * (len(self.buckets) + 2)
                self._table[key] = row
            index = bisect_left(self.buckets, value)
            if index < len(self.buckets):
                row[index] += 1
            row[-2] += value   # _sum
            row[-1] += 1       # _count

    def count(self, *labelvalues: Any) -> int:
        with self._lock:
            row = self._table.get(self._key(labelvalues))
            return int(row[-1]) if row else 0

    def samples(self) -> list[str]:
        lines: list[str] = []
        with self._lock:
            rows = sorted((key, list(row))
                          for key, row in self._table.items())
        for key, row in rows:
            cumulative = 0.0
            for bound, bucket_count in zip(self.buckets, row):
                cumulative += bucket_count
                labels = _format_labels(self.labelnames, key,
                                        extra=("le", _format_value(bound)))
                lines.append(f"{self.name}_bucket{labels} "
                             f"{_format_value(cumulative)}")
            inf_labels = _format_labels(self.labelnames, key,
                                        extra=("le", "+Inf"))
            lines.append(f"{self.name}_bucket{inf_labels} "
                         f"{_format_value(row[-1])}")
            plain = _format_labels(self.labelnames, key)
            lines.append(f"{self.name}_sum{plain} {_format_value(row[-2])}")
            lines.append(f"{self.name}_count{plain} "
                         f"{_format_value(row[-1])}")
        return lines


class _SampledFamily:
    """A counter/gauge family whose values are read at scrape time.

    ``sampler()`` returns ``[(label_values_tuple, value), ...]`` straight
    from live objects -- no double bookkeeping, no hot-path cost.  A
    sampler that raises is rendered as an empty family rather than failing
    the whole scrape.
    """

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str],
                 kind: str,
                 sampler: Callable[[], Iterable[tuple[Sequence[Any], float]]],
                 ) -> None:
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self.kind = kind
        self.sampler = sampler

    def render(self) -> str:
        lines = [f"# HELP {self.name} {self.help_text}",
                 f"# TYPE {self.name} {self.kind}"]
        try:
            samples = list(self.sampler())
        except Exception:  # noqa: BLE001 - a scrape must never 500
            samples = []
        for labelvalues, value in samples:
            labels = _format_labels(self.labelnames,
                                    [str(v) for v in labelvalues])
            lines.append(f"{self.name}{labels} {_format_value(float(value))}")
        return "\n".join(lines)


class MetricsRegistry:
    """Instrument factory + Prometheus text renderer (one lock for all)."""

    content_type = _CONTENT_TYPE

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, Any] = {}

    def _add(self, family: Any) -> Any:
        if family.name in self._families:
            raise ValueError(f"metric {family.name!r} already registered")
        self._families[family.name] = family
        return family

    def counter(self, name: str, help_text: str,
                labelnames: Sequence[str] = ()) -> Counter:
        return self._add(Counter(name, help_text, labelnames, self._lock))

    def gauge(self, name: str, help_text: str,
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._add(Gauge(name, help_text, labelnames, self._lock))

    def histogram(self, name: str, help_text: str,
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = SOLVE_LATENCY_BUCKETS,
                  ) -> Histogram:
        return self._add(Histogram(name, help_text, labelnames, self._lock,
                                   buckets=buckets))

    def counter_family(self, name: str, help_text: str,
                       labelnames: Sequence[str],
                       sampler: Callable[[], Iterable[tuple[Sequence[Any],
                                                            float]]],
                       ) -> _SampledFamily:
        return self._add(_SampledFamily(name, help_text, labelnames,
                                        "counter", sampler))

    def gauge_family(self, name: str, help_text: str,
                     labelnames: Sequence[str],
                     sampler: Callable[[], Iterable[tuple[Sequence[Any],
                                                          float]]],
                     ) -> _SampledFamily:
        return self._add(_SampledFamily(name, help_text, labelnames,
                                        "gauge", sampler))

    def render(self) -> str:
        """The full exposition document (trailing newline included)."""
        blocks = [family.render() for family in self._families.values()]
        return "\n".join(blocks) + "\n" if blocks else "\n"


class ServiceMetrics:
    """The named instrument set of one ``repro.service`` scheduler/server.

    Event-driven instruments cover what nothing else records (latency
    histograms by algorithm and outcome, engine requested/used pairs,
    HTTP and SSE traffic); :meth:`bind_scheduler` registers the sampled
    families that mirror the scheduler's and cache's existing counters at
    scrape time.  Each scheduler owns its own instance, so test servers
    never share state.

    ``bucket_overrides`` maps histogram family names to replacement
    bucket tuples, so deployments can re-bucket without subclassing --
    e.g. ``{"repro_fleet_relay_latency_seconds": (0.1, 1.0, 10.0)}``.
    Families keep their documented defaults when absent (local solve
    latency uses :data:`SOLVE_LATENCY_BUCKETS`; the fleet relay histogram
    uses the coarser :data:`FLEET_RELAY_LATENCY_BUCKETS`).
    """

    def __init__(self, *, bucket_overrides: dict[str, Sequence[float]]
                 | None = None) -> None:
        self.registry = MetricsRegistry()
        self.started_at = time.time()
        self._bucket_overrides = dict(bucket_overrides or {})
        #: Set by :meth:`bind_fleet`; ``None`` on plain schedulers.
        self.relay_latency: Histogram | None = None
        self.solve_latency = self.registry.histogram(
            "repro_solve_latency_seconds",
            "Request latency through the scheduler by algorithm and outcome "
            "(every outcome: hits, computed, coalesced, rejected, invalid, "
            "errors, cancelled).",
            ("algorithm", "status"),
            buckets=self._buckets_for("repro_solve_latency_seconds",
                                      SOLVE_LATENCY_BUCKETS))
        self.engine_solves = self.registry.counter(
            "repro_engine_solves_total",
            "Computed solves by algorithm and requested/used round engine "
            "(requested != used marks a silent engine fallback).",
            ("algorithm", "requested", "used"))
        self.engine_fallbacks = self.registry.counter(
            "repro_engine_fallbacks_total",
            "Computed solves whose requested engine fell back to another "
            "backend.",
            ("algorithm", "requested", "used"))
        self.http_requests = self.registry.counter(
            "repro_http_requests_total",
            "HTTP responses by method, route and status code.",
            ("method", "route", "code"))
        self.client_disconnects = self.registry.counter(
            "repro_http_client_disconnects_total",
            "Responses abandoned mid-write by the client (broken pipe / "
            "connection reset).",
            ("route",))
        self.stream_events = self.registry.counter(
            "repro_stream_events_total",
            "Events published to /events/<key> subscribers by event type.",
            ("event",))
        self.stream_subscribers = self.registry.gauge(
            "repro_stream_subscribers",
            "Currently connected /events/<key> subscribers.")

    def _buckets_for(self, family: str,
                     default: Sequence[float]) -> Sequence[float]:
        return self._bucket_overrides.get(family, default)

    def _bind_trace_recorder(self, owner: Any) -> None:
        """Sampled span-recorder families (``owner.trace_recorder``).

        The recorder attribute is read at scrape time so a scheduler or
        coordinator built with tracing disabled renders empty families.
        """

        def _span_samples():
            recorder = getattr(owner, "trace_recorder", None)
            if recorder is None:
                return []
            stats = recorder.stats_row()
            return [(("recorded",), float(stats["recorded_total"])),
                    (("dropped",), float(stats["dropped_total"])),
                    (("trace_evicted",),
                     float(stats["evicted_traces_total"]))]

        self.registry.counter_family(
            "repro_trace_spans_total",
            "Trace spans recorded, dropped (per-trace cap) and lost to "
            "whole-trace LRU eviction.",
            ("event",), _span_samples)

        def _trace_samples():
            recorder = getattr(owner, "trace_recorder", None)
            if recorder is None:
                return []
            return [((), float(recorder.stats_row()["traces"]))]

        self.registry.gauge_family(
            "repro_trace_traces_retained",
            "Distinct traces currently held in the span ring buffer.",
            (), _trace_samples)

    def bind_scheduler(self, scheduler: Any) -> None:
        """Register scrape-time families over the scheduler's live state."""
        registry = self.registry

        def _request_samples():
            return [((status,), float(count))
                    for status, count in sorted(scheduler.counters.items())]

        registry.counter_family(
            "repro_requests_total",
            "Scheduler requests by outcome counter "
            "(requests is the total; the rest partition it).",
            ("status",), _request_samples)

        def _cache_samples():
            stats = scheduler.cache.stats
            return [
                (("memory", "hit"), float(stats.memory_hits)),
                (("persistent", "hit"), float(stats.persistent_hits)),
                (("peer", "hit"), float(stats.peer_hits)),
                (("peer", "error"), float(stats.peer_errors)),
                (("any", "miss"), float(stats.misses)),
                (("memory", "eviction"), float(stats.evictions)),
                (("any", "put"), float(stats.puts)),
            ]

        registry.counter_family(
            "repro_cache_events_total",
            "Solve-cache lookups and mutations by tier and event "
            "(tier peer counts fleet-shared warm fetches).",
            ("tier", "event"), _cache_samples)

        def _shard_entry_samples():
            return [((str(row["shard"]),), float(row["entries"]))
                    for row in scheduler.cache.shard_occupancy()]

        registry.gauge_family(
            "repro_cache_shard_entries",
            "Live rows per persistent-cache shard (sharded tier only).",
            ("shard",), _shard_entry_samples)

        def _shard_byte_samples():
            samples = []
            for row in scheduler.cache.shard_occupancy():
                shard = str(row["shard"])
                samples.append(((shard, "live"), float(row["live_bytes"])))
                samples.append(((shard, "disk"), float(row["disk_bytes"])))
            return samples

        registry.gauge_family(
            "repro_cache_shard_bytes",
            "Bytes per persistent-cache shard: live rows vs on-disk "
            "segment footprint (their gap is reclaimable by compaction).",
            ("shard", "kind"), _shard_byte_samples)

        def _store_event_samples():
            return [((event,), float(count)) for event, count
                    in sorted(scheduler.cache.store_counters().items())]

        registry.counter_family(
            "repro_cache_store_events_total",
            "Sharded-store maintenance events: TTL/LRU evictions, "
            "segment compactions/deletions, index rescans and "
            "wrong-key span reads detected (and healed).",
            ("event",), _store_event_samples)

        def _queue_samples():
            return [((str(shard),), float(queue.qsize()))
                    for shard, queue in enumerate(scheduler._queues)]

        registry.gauge_family(
            "repro_queue_depth",
            "Jobs sitting in each shard's priority queue.",
            ("shard",), _queue_samples)

        registry.gauge_family(
            "repro_pending_jobs",
            "Jobs admitted but not yet completed (queued + running).",
            (), lambda: [((), float(scheduler._pending))])

        registry.gauge_family(
            "repro_scheduler_shards",
            "Configured worker shards.",
            (), lambda: [((), float(scheduler.shards))])

        registry.gauge_family(
            "repro_uptime_seconds",
            "Seconds since this metrics registry was created.",
            (), lambda: [((), time.time() - self.started_at)])

        self._bind_trace_recorder(scheduler)

    def bind_fleet(self, coordinator: Any) -> None:
        """Register scrape-time families over a fleet coordinator's state.

        The coordinator's dispatch counters (routed / retried / stolen /
        scattered / batched / solo / affinity hits / failures) and the
        worker registry's liveness view are already counted where they
        happen; these families mirror them at scrape time, per worker
        where a worker label exists.
        """
        registry = self.registry

        registry.counter_family(
            "repro_fleet_requests_total",
            "Coordinator dispatch outcomes (routed is the total forwarded; "
            "affinity_hits counts those served by their ring-primary; "
            "retried, stolen, scattered, batched, solo and failed classify "
            "the rest of the traffic).",
            ("outcome",),
            lambda: [((outcome,), float(count)) for outcome, count
                     in sorted(coordinator.counters.items())])

        registry.gauge_family(
            "repro_fleet_live_workers",
            "Workers currently enrolled and inside their liveness TTL.",
            (), lambda: [((), float(len(coordinator.registry.live())))])

        registry.counter_family(
            "repro_fleet_workers_expired_total",
            "Workers dropped from the registry after missing heartbeats "
            "for a full TTL.",
            (), lambda: [((), float(coordinator.registry.expired_total))])

        registry.gauge_family(
            "repro_fleet_worker_heartbeat_age_seconds",
            "Seconds since each live worker's last enroll/heartbeat.",
            ("worker",),
            lambda: [((info.worker_id,), age) for info, age
                     in coordinator.registry.heartbeat_ages()])

        registry.gauge_family(
            "repro_fleet_worker_outstanding",
            "Requests the coordinator currently has in flight per worker.",
            ("worker",),
            lambda: [((worker_id,), float(count)) for worker_id, count
                     in sorted(coordinator.outstanding.items())])

        registry.gauge_family(
            "repro_fleet_worker_queue_depth",
            "Per-worker scheduler queue depth as of the last heartbeat.",
            ("worker",),
            lambda: [((info.worker_id,), float(info.queue_depth))
                     for info in coordinator.registry.live()])

        self.relay_latency = registry.histogram(
            "repro_fleet_relay_latency_seconds",
            "Coordinator->worker call latency by outcome (ok, http_4xx, "
            "http_429, http_5xx, transport_error, circuit_open) -- one "
            "observation per attempt, so a retried request contributes "
            "several.",
            ("outcome",),
            buckets=self._buckets_for("repro_fleet_relay_latency_seconds",
                                      FLEET_RELAY_LATENCY_BUCKETS))

        registry.counter_family(
            "repro_fleet_failures_total",
            "Failed coordinator->worker attempts by failure class.",
            ("class",),
            lambda: [((cls,), float(count)) for cls, count
                     in sorted(coordinator.failures_by_class.items())])

        def _circuit_samples():
            samples = []
            for worker_id, state in sorted(
                    coordinator.breaker_states().items()):
                for candidate in ("closed", "half-open", "open"):
                    samples.append(((worker_id, candidate),
                                    1.0 if state == candidate else 0.0))
            return samples

        registry.gauge_family(
            "repro_fleet_circuit_state",
            "Per-worker circuit-breaker state (1 on the active state, 0 "
            "on the other two).",
            ("worker", "state"), _circuit_samples)

        def _ring_samples(field):
            return [((worker_id,), float(row[field])) for worker_id, row
                    in sorted(coordinator.ring.occupancy().items())]

        registry.gauge_family(
            "repro_fleet_ring_vnodes",
            "Virtual nodes each worker owns on the consistent-hash ring.",
            ("worker",), lambda: _ring_samples("vnodes"))

        registry.gauge_family(
            "repro_fleet_ring_keyspace_share",
            "Fraction of the hash keyspace routed to each worker "
            "(affinity balance; sums to 1 over live workers).",
            ("worker",), lambda: _ring_samples("keyspace_share"))

        self._bind_trace_recorder(coordinator)

    def render(self) -> str:
        return self.registry.render()

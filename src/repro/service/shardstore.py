"""Sharded, segmented, evicting on-disk store for the solve cache.

The historical persistent tier was one append-only JSON-lines file with
whole-file compaction -- a single hot inode, a single lock, and a rewrite
cost proportional to everything ever stored.  This module replaces it with
a layout built for sustained fleet traffic:

* **Key shards.**  ``shard = int(key[:4], 16) % N`` (cache keys are hex
  content addresses, so the prefix is uniform).  Each shard has its own
  directory, its own lock and its own in-memory span index, so writers on
  different shards never contend.
* **Segments.**  A shard is a sequence of append-only segment files
  (``seg-000001.jsonl`` ...).  When the active segment exceeds
  ``max_segment_bytes`` the shard rotates to a fresh one.  Compaction
  rewrites the live rows of one mostly-dead segment into the active
  segment and deletes the old file -- bounded work per step, never a
  whole-store rewrite.
* **Eviction.**  Under a per-store byte budget (split evenly across
  shards), rows die by TTL first, then by LRU; fully-dead segments are
  deleted, half-dead ones are compacted.  Disk usage is therefore bounded
  even under an ever-growing key population.
* **Sharing.**  Appends go through the same ``fcntl``-locked authoritative
  span path as :class:`repro.scenarios.store.ResultStore`, so several
  processes (fleet workers pointed at one directory) can write one store.
  Readers detect external growth (segment grew / new segment appeared) and
  rescan incrementally; every span read verifies the row's key and falls
  back to a full rescan on mismatch, so a stale index can cost a re-read
  but never returns the wrong row.

The store holds serialised rows (``dict`` per line) keyed by
``key_field``; it knows nothing about reports -- the solve cache layers
deserialisation and the memory LRU on top.
"""

from __future__ import annotations

import json
import os
import threading
import time
import zlib
from collections import OrderedDict
from typing import Any, Callable, Mapping

from repro.scenarios.store import append_jsonl_line

__all__ = ["ShardStore", "shard_of"]

DEFAULT_SHARDS = 8
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

#: Non-active segments at least this dead (by bytes) are compaction victims.
_COMPACT_DEAD_RATIO = 0.5

_SEGMENT_PREFIX = "seg-"
_SEGMENT_SUFFIX = ".jsonl"


def shard_of(key: str, shards: int) -> int:
    """``int(key[:4], 16) % shards`` -- the cache-key shard function.

    Cache keys are 128-bit hex content addresses, so the first four
    nibbles are uniformly distributed.  Non-hex keys (the store is
    generic) fall back to a CRC so they still spread deterministically.
    """
    try:
        return int(key[:4], 16) % shards
    except (ValueError, TypeError):
        return zlib.crc32(str(key).encode("utf-8", "replace")) % shards


def _segment_name(segment: int) -> str:
    return f"{_SEGMENT_PREFIX}{segment:06d}{_SEGMENT_SUFFIX}"


def _parse_segment_name(name: str) -> int | None:
    if not (name.startswith(_SEGMENT_PREFIX)
            and name.endswith(_SEGMENT_SUFFIX)):
        return None
    digits = name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
    return int(digits) if digits.isdigit() else None


class _Shard:
    """One shard: directory, lock, span index and byte accounting."""

    __slots__ = ("directory", "lock", "index", "scanned", "dead_bytes",
                 "dead_rows", "active")

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.lock = threading.RLock()
        # key -> (segment, offset, length, stored_at); insertion order is
        # LRU order (oldest first), maintained with move_to_end on reads.
        self.index: "OrderedDict[str, tuple[int, int, int, float]]" = (
            OrderedDict())
        self.scanned: dict[int, int] = {}     # segment -> bytes indexed
        self.dead_bytes: dict[int, int] = {}  # superseded/evicted bytes
        self.dead_rows: dict[int, int] = {}   # superseded/evicted rows
        self.active = 1

    def disk_bytes(self) -> int:
        return sum(self.scanned.values())

    def live_bytes(self) -> int:
        return sum(length for (_, _, length, _) in self.index.values())


class ShardStore:
    """N key-sharded, segmented JSON-lines logs with TTL + LRU eviction."""

    def __init__(self, root: str, *, shards: int = DEFAULT_SHARDS,
                 key_field: str = "cache_key",
                 max_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 size_budget_bytes: int | None = None,
                 ttl_s: float | None = None,
                 clock: Callable[[], float] = time.time) -> None:
        self.root = str(root)
        self.shards = max(1, int(shards))
        self.key_field = key_field
        self.max_segment_bytes = max(4096, int(max_segment_bytes))
        self.size_budget_bytes = (None if size_budget_bytes is None
                                  else max(0, int(size_budget_bytes)))
        self.ttl_s = None if ttl_s is None else float(ttl_s)
        self._clock = clock
        self._counters_lock = threading.Lock()
        self._counters: dict[str, int] = {
            "evictions_ttl": 0, "evictions_lru": 0, "compacted_segments": 0,
            "deleted_segments": 0, "rescans": 0, "wrong_key_reads": 0,
        }
        self._shards = [
            _Shard(os.path.join(self.root, f"shard-{index:02d}"))
            for index in range(self.shards)]
        for shard in self._shards:
            with shard.lock:
                self._discover(shard)
                self._rescan_grown(shard)

    # ---------------------------------------------------------- counters
    def _bump(self, name: str, amount: int = 1) -> None:
        with self._counters_lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counters(self) -> dict[str, int]:
        with self._counters_lock:
            return dict(self._counters)

    # ---------------------------------------------------------- scanning
    def _segment_path(self, shard: _Shard, segment: int) -> str:
        return os.path.join(shard.directory, _segment_name(segment))

    @staticmethod
    def _segment_size(path: str) -> int:
        try:
            return os.path.getsize(path)
        except OSError:
            return 0

    def _discover(self, shard: _Shard) -> None:
        """Pick up segment files this index has never seen (other writers)."""
        try:
            names = os.listdir(shard.directory)
        except OSError:
            return
        known = max(shard.scanned, default=0)
        for name in names:
            segment = _parse_segment_name(name)
            if segment is not None:
                shard.scanned.setdefault(segment, 0)
                known = max(known, segment)
        shard.active = max(shard.active, known or 1)

    def _rescan_grown(self, shard: _Shard) -> bool:
        """Index any bytes appended (by us or another process) since the
        last scan.  Returns True when anything new was indexed."""
        indexed = False
        for segment in sorted(shard.scanned):
            path = self._segment_path(shard, segment)
            try:
                size = os.path.getsize(path)
            except OSError:
                size = 0
            start = shard.scanned.get(segment, 0)
            if size < start:
                # Rewritten/truncated behind our back: rebuild the shard.
                self._rebuild(shard)
                return True
            if size > start:
                indexed |= self._scan_segment(shard, segment, start, size)
        return indexed

    def _scan_segment(self, shard: _Shard, segment: int,
                      start: int, end: int) -> bool:
        """Index complete lines of one segment in ``[start, end)``."""
        path = self._segment_path(shard, segment)
        try:
            with open(path, "rb") as handle:
                handle.seek(start)
                blob = handle.read(end - start)
        except OSError:
            return False
        # Only complete lines are indexable; a torn tail (a writer died
        # mid-row, or we raced a writer) stays unscanned until the next
        # append repairs or completes it.
        last_newline = blob.rfind(b"\n")
        if last_newline < 0:
            return False
        blob = blob[:last_newline + 1]
        offset = start
        indexed = False
        now = self._clock()
        for line in blob.splitlines(keepends=True):
            length = len(line)
            try:
                row = json.loads(line)
                key = row.get(self.key_field)
            except (json.JSONDecodeError, UnicodeDecodeError,
                    AttributeError):
                key = None
            if isinstance(key, str):
                stored_at = row.get("stored_at")
                if not isinstance(stored_at, (int, float)):
                    stored_at = now
                self._index_put(shard, key, segment, offset, length,
                                float(stored_at))
                indexed = True
            else:
                self._mark_dead(shard, segment, length)
            offset += length
        shard.scanned[segment] = start + len(blob)
        return indexed

    def _rebuild(self, shard: _Shard) -> None:
        """Full shard rescan from scratch (external rewrite detected)."""
        self._bump("rescans")
        shard.index.clear()
        shard.scanned.clear()
        shard.dead_bytes.clear()
        shard.dead_rows.clear()
        self._discover(shard)
        for segment in sorted(shard.scanned):
            path = self._segment_path(shard, segment)
            try:
                size = os.path.getsize(path)
            except OSError:
                size = 0
            if size:
                self._scan_segment(shard, segment, 0, size)

    def _index_put(self, shard: _Shard, key: str, segment: int,
                   offset: int, length: int, stored_at: float) -> None:
        old = shard.index.get(key)
        if old is not None:
            self._mark_dead(shard, old[0], old[2])
        shard.index[key] = (segment, offset, length, stored_at)
        shard.index.move_to_end(key)

    def _mark_dead(self, shard: _Shard, segment: int, length: int) -> None:
        shard.dead_bytes[segment] = shard.dead_bytes.get(segment, 0) + length
        shard.dead_rows[segment] = shard.dead_rows.get(segment, 0) + 1

    # ----------------------------------------------------------- reading
    def get(self, key: str) -> dict[str, Any] | None:
        """The live row for ``key``, or ``None``.

        Every span read verifies ``row[key_field] == key``: a stale index
        entry (the segment was compacted or rewritten by another process)
        triggers one full shard rescan and a retry instead of silently
        returning whatever row now occupies those bytes.  Reads touch the
        LRU order; TTL-expired entries are evicted on sight.
        """
        shard = self._shards[shard_of(key, self.shards)]
        with shard.lock:
            row = self._get_locked(shard, key)
            if row is None:
                # Maybe another process published it since our last scan.
                self._discover(shard)
                if self._rescan_grown(shard):
                    row = self._get_locked(shard, key)
            return row

    def _get_locked(self, shard: _Shard, key: str,
                    retry: bool = True) -> dict[str, Any] | None:
        entry = shard.index.get(key)
        if entry is None:
            return None
        segment, offset, length, stored_at = entry
        if self.ttl_s is not None and self._clock() - stored_at > self.ttl_s:
            self._evict(shard, key, "evictions_ttl")
            return None
        row = None
        try:
            with open(self._segment_path(shard, segment), "rb") as handle:
                handle.seek(offset)
                row = json.loads(handle.read(length))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            row = None
        if isinstance(row, dict) and row.get(self.key_field) == key:
            shard.index.move_to_end(key)
            return row
        if isinstance(row, dict):
            self._bump("wrong_key_reads")
        if not retry:
            shard.index.pop(key, None)
            return None
        self._rebuild(shard)
        return self._get_locked(shard, key, retry=False)

    def keys(self) -> set[str]:
        keys: set[str] = set()
        for shard in self._shards:
            with shard.lock:
                keys.update(shard.index)
        return keys

    def __len__(self) -> int:
        return sum(len(shard.index) for shard in self._shards)

    def __contains__(self, key: str) -> bool:
        shard = self._shards[shard_of(key, self.shards)]
        with shard.lock:
            return key in shard.index

    # ----------------------------------------------------------- writing
    def put(self, key: str, row: Mapping[str, Any]) -> tuple[int, int]:
        """Append one row; returns its authoritative ``(offset, length)``."""
        document = dict(row)
        document.setdefault(self.key_field, key)
        if document[self.key_field] != key:
            raise ValueError(f"row {self.key_field}="
                             f"{document[self.key_field]!r} != key {key!r}")
        stored_at = document.get("stored_at")
        if not isinstance(stored_at, (int, float)):
            stored_at = round(self._clock(), 3)
            document["stored_at"] = stored_at
        data = (json.dumps(document, sort_keys=True, default=str)
                + "\n").encode("utf-8")
        shard = self._shards[shard_of(key, self.shards)]
        with shard.lock:
            segment = shard.active
            path = self._segment_path(shard, segment)
            start = shard.scanned.get(segment, 0)
            if self._segment_size(path) < start:
                # Our active segment shrank behind us (another process
                # compacted it away).  Appending to a *recreated* file
                # would put new bytes in an old segment number, which
                # breaks segment-order recency -- rebuild and append to
                # the true newest segment instead.
                self._rebuild(shard)
                segment = shard.active
                path = self._segment_path(shard, segment)
                start = shard.scanned.get(segment, 0)
            offset, length = append_jsonl_line(path, data)
            if offset > start:
                # Another process appended rows between our scans; index
                # the gap so its keys stay visible to this reader.
                self._scan_segment(shard, segment, start, offset)
            self._index_put(shard, key, segment, offset, length,
                            float(stored_at))
            shard.scanned[segment] = offset + length
            if offset + length >= self.max_segment_bytes:
                shard.active = max(shard.scanned, default=segment) + 1
            self._enforce_budget(shard)
        return (offset, length)

    # ------------------------------------------- eviction and compaction
    def _per_shard_budget(self) -> int | None:
        if self.size_budget_bytes is None:
            return None
        return max(self.max_segment_bytes,
                   self.size_budget_bytes // self.shards)

    def _evict(self, shard: _Shard, key: str, counter: str) -> None:
        entry = shard.index.pop(key, None)
        if entry is not None:
            self._mark_dead(shard, entry[0], entry[2])
            self._bump(counter)

    def _expire_ttl(self, shard: _Shard) -> int:
        if self.ttl_s is None:
            return 0
        deadline = self._clock() - self.ttl_s
        expired = [key for key, (_, _, _, stored_at) in shard.index.items()
                   if stored_at < deadline]
        for key in expired:
            self._evict(shard, key, "evictions_ttl")
        return len(expired)

    def _drop_dead_segments(self, shard: _Shard) -> bool:
        """Delete non-active segments with no live rows.  True if any died."""
        live_segments = {segment
                         for (segment, _, _, _) in shard.index.values()}
        dropped = False
        for segment in sorted(shard.scanned):
            if segment == shard.active or segment in live_segments:
                continue
            # The segment looks dead *to our index* -- another process may
            # have appended since our last scan.  Index any tail first and
            # spare the segment if live rows appear.
            path = self._segment_path(shard, segment)
            size = self._segment_size(path)
            start = shard.scanned.get(segment, 0)
            if size > start and self._scan_segment(shard, segment, start,
                                                   size):
                continue
            try:
                os.unlink(self._segment_path(shard, segment))
            except OSError:
                pass
            shard.scanned.pop(segment, None)
            shard.dead_bytes.pop(segment, None)
            shard.dead_rows.pop(segment, None)
            self._bump("deleted_segments")
            dropped = True
        return dropped

    def _compact_segment(self, shard: _Shard, segment: int) -> int:
        """Move ``segment``'s live rows to the active segment, delete it.

        This is the rotation-style compaction: bounded work (one segment's
        live rows), never a whole-store rewrite.  Returns rows moved.
        """
        path = self._segment_path(shard, segment)
        # Another process may have appended to this segment since our last
        # scan; index the tail before moving rows, or its keys die with
        # the file below.
        size = self._segment_size(path)
        start = shard.scanned.get(segment, 0)
        if size > start:
            self._scan_segment(shard, segment, start, size)
        elif size < start:
            self._rebuild(shard)
            if segment not in shard.scanned:
                return 0
        victims = [(key, entry) for key, entry in shard.index.items()
                   if entry[0] == segment]
        moved = 0
        if shard.active == segment:
            shard.active = max(shard.scanned, default=segment) + 1
        for key, (_, offset, length, stored_at) in victims:
            row = None
            try:
                with open(path, "rb") as handle:
                    handle.seek(offset)
                    row = json.loads(handle.read(length))
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                row = None
            if not (isinstance(row, dict)
                    and row.get(self.key_field) == key):
                shard.index.pop(key, None)
                continue
            data = (json.dumps(row, sort_keys=True, default=str)
                    + "\n").encode("utf-8")
            target = self._segment_path(shard, shard.active)
            new_offset, new_length = append_jsonl_line(target, data)
            shard.scanned[shard.active] = new_offset + new_length
            # Rewriting preserves the row (and its stored_at): keep the
            # original insertion point in the LRU order.
            shard.index[key] = (shard.active, new_offset, new_length,
                                stored_at)
            moved += 1
        try:
            os.unlink(path)
        except OSError:
            pass
        shard.scanned.pop(segment, None)
        shard.dead_bytes.pop(segment, None)
        shard.dead_rows.pop(segment, None)
        self._bump("compacted_segments")
        return moved

    def _compact_one(self, shard: _Shard) -> bool:
        """Compact the deadest eligible non-active segment, if any."""
        best, best_ratio = None, _COMPACT_DEAD_RATIO
        for segment, size in shard.scanned.items():
            if segment == shard.active or not size:
                continue
            ratio = shard.dead_bytes.get(segment, 0) / size
            if ratio >= best_ratio:
                best, best_ratio = segment, ratio
        if best is None:
            return False
        self._compact_segment(shard, best)
        return True

    def _enforce_budget(self, shard: _Shard) -> None:
        budget = self._per_shard_budget()
        if budget is None:
            return
        self._expire_ttl(shard)
        while shard.disk_bytes() > budget:
            if self._drop_dead_segments(shard):
                continue
            if self._compact_one(shard):
                continue
            # Nothing reclaimable without shrinking the live set: evict
            # the least-recently-used entry (index order is LRU order).
            lru_key = next(iter(shard.index), None)
            if lru_key is None:
                break
            self._evict(shard, lru_key, "evictions_lru")

    def compact(self) -> tuple[int, int]:
        """Expire + rewrite every segment with dead bytes; ``(kept, dropped)``.

        ``dropped`` counts superseded/evicted/corrupt rows removed from
        disk, mirroring :meth:`ResultStore.compact`.
        """
        kept = 0
        dropped = 0
        for shard in self._shards:
            with shard.lock:
                self._discover(shard)
                self._rescan_grown(shard)
                self._expire_ttl(shard)
                dropped += sum(shard.dead_rows.values())
                self._drop_dead_segments(shard)
                for segment in sorted(shard.scanned):
                    if shard.dead_bytes.get(segment, 0) > 0:
                        self._compact_segment(shard, segment)
                self._drop_dead_segments(shard)
                kept += len(shard.index)
        return (kept, dropped)

    # --------------------------------------------------------- telemetry
    def disk_bytes(self) -> int:
        return sum(shard.disk_bytes() for shard in self._shards)

    def occupancy(self) -> list[dict[str, Any]]:
        """Per-shard occupancy rows for metrics and warmth heartbeats."""
        rows = []
        for number, shard in enumerate(self._shards):
            with shard.lock:
                rows.append({
                    "shard": number,
                    "entries": len(shard.index),
                    "live_bytes": shard.live_bytes(),
                    "disk_bytes": shard.disk_bytes(),
                    "segments": len(shard.scanned),
                    "dead_rows": sum(shard.dead_rows.values()),
                })
        return rows

"""Stdlib JSON-over-HTTP serving: ``repro serve``.

The server is two threads of machinery around the scheduler:

* a dedicated **asyncio loop thread** runs the
  :class:`~repro.service.scheduler.SolveScheduler` (coalescing, shard
  queues, worker dispatch);
* a ``ThreadingHTTPServer`` accepts connections and bridges each request
  into the loop with ``asyncio.run_coroutine_threadsafe`` -- no third-party
  framework, stdlib only.

Endpoints
---------
``POST /solve``
    Body: ``{"workload": "regular-n64-d4", "algorithm": "power-mis",
    "config": {"k": 2}, "graph_seed": 0, "seed": null, "verify": true,
    "priority": 10}``.  Response: the serving metadata (``key``,
    ``status`` of ``hit``/``computed``/``coalesced``, ``latency_s``) plus
    the full serialised ``RunReport``.  400 on malformed requests, 429
    when admission control refuses, 500 on solver faults.
``GET /report/<key>``
    The cached report for a content address (404 when unknown).
``GET /healthz``
    Liveness: ``{"ok": true, "uptime_s": ...}``.
``GET /stats``
    Scheduler counters, cache hit rate and latency percentiles.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Sequence

from repro.api.serialize import report_to_json
from repro.service.cache import SolveCache, default_cache_path
from repro.service.scheduler import AdmissionError, SolveRequest, SolveScheduler

__all__ = ["ServiceServer", "add_serve_arguments", "main", "serve"]

#: How long one HTTP request waits for its solve before giving up (seconds).
_REQUEST_TIMEOUT_S = 600.0


class ServiceServer:
    """The scheduler + its loop thread + the HTTP front end."""

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 scheduler: SolveScheduler | None = None,
                 quiet: bool = True) -> None:
        self.scheduler = scheduler if scheduler is not None else SolveScheduler()
        self.started_at = time.monotonic()
        self._loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self._run_loop, name="repro-service-loop", daemon=True)
        handler = _make_handler(self, quiet=quiet)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._serve_thread: threading.Thread | None = None

    # ----------------------------------------------------------- lifecycle
    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def start(self) -> None:
        """Start the loop thread, the scheduler and the HTTP acceptor."""
        self._loop_thread.start()
        asyncio.run_coroutine_threadsafe(
            self.scheduler.start(), self._loop).result(timeout=30)
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-service-http",
            daemon=True)
        self._serve_thread.start()

    def serve_forever(self) -> None:
        """Foreground serving (the ``repro serve`` path)."""
        self._loop_thread.start()
        asyncio.run_coroutine_threadsafe(
            self.scheduler.start(), self._loop).result(timeout=30)
        self._httpd.serve_forever()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        future = asyncio.run_coroutine_threadsafe(
            self.scheduler.stop(), self._loop)
        try:
            future.result(timeout=30)
        except Exception:  # noqa: BLE001 - best-effort teardown
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._loop_thread.join(timeout=10)

    # ------------------------------------------------------------- bridges
    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def submit(self, request: SolveRequest,
               timeout: float = _REQUEST_TIMEOUT_S):
        """Run one request on the scheduler loop (thread-safe)."""
        future = asyncio.run_coroutine_threadsafe(
            self.scheduler.submit(request), self._loop)
        return future.result(timeout=timeout)

    def stats_row(self) -> dict[str, Any]:
        row = self.scheduler.stats_row()
        row["uptime_s"] = round(time.monotonic() - self.started_at, 3)
        return row

    def __enter__(self) -> "ServiceServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def _make_handler(service: ServiceServer, *, quiet: bool):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        #: Small request/response pairs ping-pong on one connection; Nagle
        #: only adds latency there.
        disable_nagle_algorithm = True

        def log_message(self, fmt: str, *args: Any) -> None:  # noqa: A003
            if not quiet:
                super().log_message(fmt, *args)

        # ----------------------------------------------------------- util
        def _send_json(self, status: int, obj: dict[str, Any]) -> None:
            body = json.dumps(obj, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_error_json(self, status: int, message: str) -> None:
            self._send_json(status, {"error": message})

        # ------------------------------------------------------- endpoints
        def do_GET(self) -> None:  # noqa: N802 - http.server contract
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            if path == "/healthz":
                self._send_json(200, {
                    "ok": True,
                    "uptime_s": round(
                        time.monotonic() - service.started_at, 3),
                })
            elif path == "/stats":
                self._send_json(200, service.stats_row())
            elif path.startswith("/report/"):
                key = path[len("/report/"):]
                report = service.scheduler.cache.get(key)
                if report is None:
                    self._send_error_json(404, f"unknown report key {key!r}")
                else:
                    self._send_json(200, {
                        "key": key,
                        "report": json.loads(report_to_json(report)),
                    })
            else:
                self._send_error_json(404, f"unknown path {self.path!r}")

        def do_POST(self) -> None:  # noqa: N802 - http.server contract
            # Drain the body first, whatever the path: leaving unread bytes
            # on a keep-alive connection desynchronises the next request.
            try:
                length = int(self.headers.get("Content-Length") or 0)
                body = self.rfile.read(length)
            except (ValueError, OSError) as error:
                self.close_connection = True
                self._send_error_json(400, str(error))
                return
            path = self.path.split("?", 1)[0].rstrip("/")
            if path != "/solve":
                self._send_error_json(404, f"unknown path {self.path!r}")
                return
            try:
                obj = json.loads(body or b"{}")
                request = SolveRequest.from_obj(obj)
            except (ValueError, TypeError, json.JSONDecodeError) as error:
                self._send_error_json(400, str(error))
                return
            try:
                response = service.submit(request)
            except AdmissionError as error:
                self._send_error_json(429, str(error))
                return
            except (KeyError, TypeError, ValueError) as error:
                # Unknown workload/algorithm or a bad typed config.
                message = error.args[0] if error.args else error
                self._send_error_json(400, str(message))
                return
            except Exception as error:  # noqa: BLE001 - solver fault
                self._send_error_json(
                    500, f"{type(error).__name__}: {error}")
                return
            self._send_json(200, response.to_row())

    return Handler


# ---------------------------------------------------------------------------
# ``repro serve``
# ---------------------------------------------------------------------------

def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8753,
                        help="TCP port; 0 picks an ephemeral port")
    parser.add_argument("--port-file", default=None,
                        help="write the bound port to this file (for CI "
                             "scripts using --port 0)")
    parser.add_argument("--shards", type=int, default=None,
                        help="worker shards (default: min(4, cpu count))")
    parser.add_argument("--inline-workers", action="store_true",
                        help="run solves on in-process threads instead of "
                             "a process pool (tests / constrained CI)")
    parser.add_argument("--max-pending", type=int, default=256,
                        help="admission limit on queued jobs (429 beyond)")
    parser.add_argument("--cache-path", default=None,
                        help=f"persistent cache store "
                             f"(default: {default_cache_path()})")
    parser.add_argument("--no-persist", action="store_true",
                        help="disable the persistent cache tier")
    parser.add_argument("--memory-entries", type=int, default=1024,
                        help="in-process LRU capacity (reports)")
    parser.add_argument("--verbose", action="store_true",
                        help="log every HTTP request")


def serve(args: argparse.Namespace) -> int:
    cache = SolveCache(
        "" if args.no_persist else args.cache_path,
        max_memory_entries=args.memory_entries)
    scheduler = SolveScheduler(cache=cache, shards=args.shards,
                               max_pending=args.max_pending,
                               inline=args.inline_workers)
    server = ServiceServer(host=args.host, port=args.port,
                           scheduler=scheduler, quiet=not args.verbose)
    host, port = server.address
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as handle:
            handle.write(str(port))
    print(f"[repro.service] serving on http://{host}:{port} "
          f"(shards={scheduler.shards}, "
          f"workers={'inline' if scheduler.inline else 'process-pool'}, "
          f"cache={cache.path or 'memory-only'})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve repro.solve over JSON/HTTP with a "
                    "content-addressed cache.")
    add_serve_arguments(parser)
    return serve(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())

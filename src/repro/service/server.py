"""Stdlib JSON-over-HTTP serving: ``repro serve``.

The server is two threads of machinery around the scheduler:

* a dedicated **asyncio loop thread** runs the
  :class:`~repro.service.scheduler.SolveScheduler` (coalescing, shard
  queues, worker dispatch);
* a ``ThreadingHTTPServer`` accepts connections and bridges each request
  into the loop with ``asyncio.run_coroutine_threadsafe`` -- no third-party
  framework, stdlib only.

Endpoints
---------
``POST /solve``
    Body: ``{"workload": "regular-n64-d4", "algorithm": "power-mis",
    "config": {"k": 2}, "graph_seed": 0, "seed": null, "verify": true,
    "priority": 10, "wait": true, "stream": false}``.  Response: the
    serving metadata (``key``, ``status`` of ``hit``/``computed``/
    ``coalesced``, ``latency_s``) plus the full serialised ``RunReport``.
    ``"wait": false`` answers ``{"status": "accepted", "key": ...}`` as
    soon as the job is admitted (poll ``/report/<key>`` or watch
    ``/events/<key>``); ``"stream": true`` additionally publishes live
    progress on ``/events/<key>``.  400 on malformed requests, 429 when
    admission control refuses, 504 when the solve outlives the request
    timeout, 500 on solver faults.
``GET /report/<key>``
    The cached report for a content address (404 when unknown).  Served
    through :meth:`SolveCache.peek`: polling this endpoint never inflates
    the cache hit rate nor reorders the LRU.
``GET /cache/<key>``
    The fleet-shared warm-read endpoint: identical payload to
    ``/report/<key>`` (peek semantics, 404 on a miss) but reserved for
    peers -- the coordinator fans a worker's miss out here so a node
    inheriting remapped keys after membership churn starts warm.  Never
    consults this server's own peers, so fleet lookups cannot recurse.
``GET /events/<key>``
    Server-sent events: one ``data: {json}`` frame per solve event
    (``queued`` / ``run_start`` / ``round`` / ``run_end`` / ``end``; see
    :mod:`repro.service.events`).  Late subscribers replay buffered
    history; the stream ends after the terminal ``end`` frame.  Keys
    already resolved serve a single ``end`` frame from the cache.
``GET /metrics``
    Prometheus text exposition (:mod:`repro.service.metrics`): request
    counters, per-algorithm latency histograms, cache/queue/stream state.
``GET /healthz``
    Liveness: ``{"ok": true, "uptime_s": ...}``.
``GET /stats``
    Scheduler counters, cache hit rate and latency percentiles.

With ``--log-json PATH|-`` every request additionally emits one JSON log
line (see :mod:`repro.service.jsonlog`).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import queue as queue_module
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Sequence

from repro.api.serialize import report_to_json
from repro.service.cache import SolveCache, default_cache_path
from repro.service.jsonlog import (
    DEFAULT_LOG_BACKUPS,
    DEFAULT_LOG_MAX_BYTES,
    configure_json_logging,
    log_event,
)
from repro.service.scheduler import AdmissionError, SolveRequest, SolveScheduler
from repro.service.tracectx import TRACE_HEADER

__all__ = ["ServiceServer", "SolveTimeout", "add_serve_arguments", "main",
           "serve"]

#: How long one HTTP request waits for its solve before giving up (seconds).
_REQUEST_TIMEOUT_S = 600.0

#: SSE keep-alive comment cadence while a solve is quiet (seconds).
_EVENTS_HEARTBEAT_S = 15.0


class SolveTimeout(RuntimeError):
    """A request outlived the server's request timeout (HTTP 504).

    The job itself is *not* lost: the scheduler-side coroutine is
    cancelled cleanly (recording a ``cancelled`` latency sample and
    releasing its pending slot), while the shielded computation keeps
    running and lands in the cache for ``/report/<key>`` pollers.
    """


class ServiceServer:
    """The scheduler + its loop thread + the HTTP front end."""

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 scheduler: SolveScheduler | None = None,
                 quiet: bool = True,
                 request_timeout_s: float = _REQUEST_TIMEOUT_S,
                 events_heartbeat_s: float = _EVENTS_HEARTBEAT_S) -> None:
        self.scheduler = scheduler if scheduler is not None else SolveScheduler()
        self.request_timeout_s = float(request_timeout_s)
        self.events_heartbeat_s = float(events_heartbeat_s)
        self.started_at = time.monotonic()
        self._loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self._run_loop, name="repro-service-loop", daemon=True)
        handler = _make_handler(self, quiet=quiet)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._serve_thread: threading.Thread | None = None

    # ----------------------------------------------------------- lifecycle
    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def start(self) -> None:
        """Start the loop thread, the scheduler and the HTTP acceptor."""
        self._loop_thread.start()
        asyncio.run_coroutine_threadsafe(
            self.scheduler.start(), self._loop).result(timeout=30)
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-service-http",
            daemon=True)
        self._serve_thread.start()

    def serve_forever(self) -> None:
        """Foreground serving (the ``repro serve`` path)."""
        self._loop_thread.start()
        asyncio.run_coroutine_threadsafe(
            self.scheduler.start(), self._loop).result(timeout=30)
        self._httpd.serve_forever()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        future = asyncio.run_coroutine_threadsafe(
            self.scheduler.stop(), self._loop)
        try:
            future.result(timeout=30)
        except Exception:  # noqa: BLE001 - best-effort teardown
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._loop_thread.join(timeout=10)

    # ------------------------------------------------------------- bridges
    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def submit(self, request: SolveRequest, timeout: float | None = None,
               *, wait: bool = True):
        """Run one request on the scheduler loop (thread-safe).

        A timeout used to simply abandon the cross-thread future, leaking
        the request coroutine (its pending-slot bookkeeping, its latency
        sample) on the loop forever.  Now the future is *cancelled*:
        cancellation propagates to the coroutine, which records the
        ``cancelled`` outcome and unwinds cleanly -- only the shielded
        job computation survives, on purpose -- and the caller gets
        :class:`SolveTimeout` (HTTP 504).
        """
        timeout = self.request_timeout_s if timeout is None else timeout
        future = asyncio.run_coroutine_threadsafe(
            self.scheduler.submit(request, wait=wait), self._loop)
        try:
            return future.result(timeout=timeout)
        except TimeoutError:
            future.cancel()
            self._loop.call_soon_threadsafe(self.scheduler.record_timeout)
            raise SolveTimeout(
                f"request did not complete within {timeout:.1f}s; the solve "
                f"continues in the background -- poll /report/<key>"
            ) from None

    def stats_row(self) -> dict[str, Any]:
        row = self.scheduler.stats_row()
        row["uptime_s"] = round(time.monotonic() - self.started_at, 3)
        return row

    # ------------------------------------------------------- extensibility
    def handle_extra_get(self, path: str) -> tuple[int, dict[str, Any]] | None:
        """Hook for subclasses serving extra GET routes.

        Return ``(status, json_payload)`` to answer ``path``, or ``None``
        to fall through to the 404.  The fleet worker overrides this for
        ``GET /fleet/status``.
        """
        return None

    def handle_extra_post(self, path: str, obj: dict[str, Any],
                          ) -> tuple[int, dict[str, Any]] | None:
        """Hook for subclasses serving extra POST routes (parsed JSON body).

        Same contract as :meth:`handle_extra_get`; the fleet worker
        overrides this for ``POST /solve_batch``.  Raise
        :class:`~repro.service.scheduler.AdmissionError` /
        :class:`SolveTimeout` / ``ValueError`` to reuse the standard error
        mapping (429 / 504 / 400).
        """
        return None

    def __enter__(self) -> "ServiceServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def _make_handler(service: ServiceServer, *, quiet: bool):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        #: Small request/response pairs ping-pong on one connection; Nagle
        #: only adds latency there.
        disable_nagle_algorithm = True

        def log_message(self, fmt: str, *args: Any) -> None:  # noqa: A003
            if not quiet:
                super().log_message(fmt, *args)

        # ----------------------------------------------------------- util
        def _route(self) -> str:
            """The path with identifiers stripped -- a bounded label set."""
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            for prefix in ("/report/", "/events/", "/trace/", "/cache/"):
                if path.startswith(prefix):
                    return prefix.rstrip("/")
            return path

        def _count_response(self, status: int) -> None:
            metrics = service.scheduler.metrics
            if metrics is not None:
                metrics.http_requests.inc(self.command, self._route(),
                                          str(status))

        def _client_disconnected(self, error: OSError) -> None:
            """The peer hung up mid-write: log it, never crash the thread.

            ``BrokenPipeError`` here used to propagate into
            ``BaseHTTPRequestHandler.handle``, spraying tracebacks on
            stderr for something as mundane as a monitoring client with a
            short timeout.
            """
            self.close_connection = True
            metrics = service.scheduler.metrics
            if metrics is not None:
                metrics.client_disconnects.inc(self._route())
            log_event("client_disconnected", route=self._route(),
                      method=self.command,
                      error=type(error).__name__)

        def _send_body(self, status: int, body: bytes,
                       content_type: str) -> bool:
            """Send a complete response; ``False`` if the client vanished."""
            try:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            except (BrokenPipeError, ConnectionResetError) as error:
                self._client_disconnected(error)
                return False
            self._count_response(status)
            return True

        def _send_json(self, status: int, obj: dict[str, Any]) -> None:
            body = json.dumps(obj, sort_keys=True).encode("utf-8")
            self._send_body(status, body, "application/json")

        def _send_error_json(self, status: int, message: str) -> None:
            self._send_json(status, {"error": message})

        # ------------------------------------------------------- endpoints
        def do_GET(self) -> None:  # noqa: N802 - http.server contract
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            if path == "/healthz":
                self._send_json(200, {
                    "ok": True,
                    "uptime_s": round(
                        time.monotonic() - service.started_at, 3),
                })
            elif path == "/stats":
                self._send_json(200, service.stats_row())
            elif path == "/metrics":
                metrics = service.scheduler.metrics
                if metrics is None:
                    self._send_error_json(
                        404, "metrics are disabled on this server")
                    return
                self._send_body(200, metrics.render().encode("utf-8"),
                                metrics.registry.content_type)
            elif path.startswith("/report/"):
                key = path[len("/report/"):]
                # peek, not get: report polling must never count as cache
                # traffic (hit_rate) nor promote the key in the LRU.
                report, tier = service.scheduler.cache.peek(key)
                if report is None:
                    self._send_error_json(404, f"unknown report key {key!r}")
                else:
                    self._send_json(200, {
                        "key": key,
                        "tier": tier,
                        "report": json.loads(report_to_json(report)),
                    })
            elif path.startswith("/cache/"):
                # The fleet-shared warm-read endpoint: peers (via the
                # coordinator) fetch stored rows by content address so a
                # worker inheriting remapped keys starts warm.  peek, and
                # never consult our own peers: the asking peer decides
                # what a miss means, and recursing through the fleet from
                # here could loop.
                key = path[len("/cache/"):]
                report, tier = service.scheduler.cache.peek(key)
                if report is None:
                    self._send_error_json(404, f"no cached row for {key!r}")
                else:
                    self._send_json(200, {
                        "key": key,
                        "tier": tier,
                        "report": json.loads(report_to_json(report)),
                    })
            elif path.startswith("/trace/"):
                trace_id = path[len("/trace/"):]
                recorder = service.scheduler.trace_recorder
                if recorder is None:
                    self._send_error_json(
                        404, "tracing is disabled on this server")
                    return
                rows = recorder.spans(trace_id)
                if not rows:
                    self._send_error_json(
                        404, f"unknown trace id {trace_id!r}")
                else:
                    self._send_json(200, {
                        "trace_id": trace_id,
                        "span_count": len(rows),
                        "spans": rows,
                    })
            elif path.startswith("/events/"):
                self._stream_events(path[len("/events/"):])
            else:
                extra = service.handle_extra_get(path)
                if extra is not None:
                    self._send_json(*extra)
                else:
                    self._send_error_json(404, f"unknown path {self.path!r}")

        def _stream_events(self, key: str) -> None:
            """``GET /events/<key>``: SSE frames until the terminal event.

            The response is unframed (no Content-Length) so the
            connection is marked ``close``; clients read until EOF.
            """
            channel = service.scheduler.events.get(key)
            if channel is None:
                # Never streamed (or archived out): an already-resolved
                # key still gets a useful single-frame stream.
                report, tier = service.scheduler.cache.peek(key)
                if report is None:
                    self._send_error_json(
                        404,
                        f"no event stream or report for key {key!r}")
                    return
                channel = None
            metrics = service.scheduler.metrics
            try:
                self.send_response(200)
                self.send_header("Content-Type", "text/event-stream")
                self.send_header("Cache-Control", "no-cache")
                self.send_header("Connection", "close")
                self.close_connection = True
                self.end_headers()
            except (BrokenPipeError, ConnectionResetError) as error:
                self._client_disconnected(error)
                return
            self._count_response(200)

            def write_frame(payload: str) -> bool:
                try:
                    self.wfile.write(payload.encode("utf-8"))
                    self.wfile.flush()
                    return True
                except (BrokenPipeError, ConnectionResetError) as error:
                    self._client_disconnected(error)
                    return False

            if channel is None:
                write_frame("data: " + json.dumps(
                    {"event": "end", "key": key, "status": "cached",
                     "tier": tier}, sort_keys=True) + "\n\n")
                return
            subscription = channel.subscribe()
            if metrics is not None:
                metrics.stream_subscribers.inc()
            try:
                while True:
                    try:
                        event = subscription.get(
                            timeout=service.events_heartbeat_s)
                    except queue_module.Empty:
                        if not write_frame(": keep-alive\n\n"):
                            return
                        continue
                    if event is None:  # END_OF_STREAM
                        return
                    frame = ("data: "
                             + json.dumps(event, sort_keys=True, default=str)
                             + "\n\n")
                    if not write_frame(frame):
                        return
            finally:
                channel.unsubscribe(subscription)
                if metrics is not None:
                    metrics.stream_subscribers.dec()

        def do_POST(self) -> None:  # noqa: N802 - http.server contract
            # Drain the body first, whatever the path: leaving unread bytes
            # on a keep-alive connection desynchronises the next request.
            try:
                length = int(self.headers.get("Content-Length") or 0)
                body = self.rfile.read(length)
            except (ValueError, OSError) as error:
                self.close_connection = True
                self._send_error_json(400, str(error))
                return
            path = self.path.split("?", 1)[0].rstrip("/")
            try:
                obj = json.loads(body or b"{}")
                if not isinstance(obj, dict):
                    raise ValueError("request body must be a JSON object")
            except (ValueError, json.JSONDecodeError) as error:
                self._send_error_json(400, str(error))
                return
            # Propagated trace context rides the header on every POST
            # (solve, solve_batch, ...); an explicit body field wins.
            trace_header = self.headers.get(TRACE_HEADER)
            if trace_header and not obj.get("trace"):
                obj["trace"] = trace_header
            if path != "/solve":
                try:
                    extra = service.handle_extra_post(path, obj)
                except AdmissionError as error:
                    self._send_error_json(429, str(error))
                    return
                except SolveTimeout as error:
                    self._send_error_json(504, str(error))
                    return
                except (KeyError, TypeError, ValueError) as error:
                    message = error.args[0] if error.args else error
                    self._send_error_json(400, str(message))
                    return
                except Exception as error:  # noqa: BLE001 - solver fault
                    self._send_error_json(
                        500, f"{type(error).__name__}: {error}")
                    return
                if extra is not None:
                    self._send_json(*extra)
                else:
                    self._send_error_json(404, f"unknown path {self.path!r}")
                return
            try:
                wait = bool(obj.pop("wait", True))
                request = SolveRequest.from_obj(obj)
            except (ValueError, TypeError) as error:
                self._send_error_json(400, str(error))
                return
            try:
                response = service.submit(request, wait=wait)
            except AdmissionError as error:
                self._send_error_json(429, str(error))
                return
            except SolveTimeout as error:
                self._send_error_json(504, str(error))
                return
            except (KeyError, TypeError, ValueError) as error:
                # Unknown workload/algorithm or a bad typed config.
                message = error.args[0] if error.args else error
                self._send_error_json(400, str(message))
                return
            except Exception as error:  # noqa: BLE001 - solver fault
                self._send_error_json(
                    500, f"{type(error).__name__}: {error}")
                return
            self._send_json(202 if response.status == "accepted" else 200,
                            response.to_row())

    return Handler


# ---------------------------------------------------------------------------
# ``repro serve``
# ---------------------------------------------------------------------------

def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8753,
                        help="TCP port; 0 picks an ephemeral port")
    parser.add_argument("--port-file", default=None,
                        help="write the bound port to this file (for CI "
                             "scripts using --port 0)")
    parser.add_argument("--shards", type=int, default=None,
                        help="worker shards (default: min(4, cpu count))")
    parser.add_argument("--inline-workers", action="store_true",
                        help="run solves on in-process threads instead of "
                             "a process pool (tests / constrained CI)")
    parser.add_argument("--max-pending", type=int, default=256,
                        help="admission limit on queued jobs (429 beyond)")
    parser.add_argument("--admission-target", type=float, default=None,
                        metavar="SECONDS", dest="admission_target",
                        help="latency-aware admission: refuse a request "
                             "when its shard's measured service time "
                             "predicts a wait beyond SECONDS (default: "
                             "static max_pending only)")
    parser.add_argument("--cache-path", default=None,
                        help=f"persistent cache store: a directory for the "
                             f"sharded tier, or a .jsonl file for the "
                             f"legacy single-file layout "
                             f"(default: {default_cache_path()})")
    parser.add_argument("--no-persist", action="store_true",
                        help="disable the persistent cache tier")
    parser.add_argument("--memory-entries", type=int, default=1024,
                        help="in-process LRU capacity (reports)")
    parser.add_argument("--cache-shards", type=int, default=None,
                        metavar="N",
                        help="key shards of the sharded persistent tier "
                             "(default: 8; ignored for .jsonl stores)")
    parser.add_argument("--cache-budget-mb", type=float, default=None,
                        metavar="MB",
                        help="on-disk size budget of the sharded tier; "
                             "TTL + LRU eviction keeps usage under it "
                             "(default: unbounded)")
    parser.add_argument("--cache-ttl", type=float, default=None,
                        metavar="SECONDS",
                        help="expire sharded-tier entries older than "
                             "SECONDS (default: never)")
    parser.add_argument("--request-timeout", type=float,
                        default=_REQUEST_TIMEOUT_S,
                        help="seconds one HTTP request waits for its solve "
                             "before answering 504 (the job keeps running)")
    parser.add_argument("--log-json", default=None, metavar="PATH",
                        help="append one JSON log line per request to PATH "
                             "('-' for stdout)")
    parser.add_argument("--log-json-max-bytes", type=int,
                        default=DEFAULT_LOG_MAX_BYTES, metavar="N",
                        help="rotate the --log-json file when it would "
                             "exceed N bytes (default: 64 MiB; 0 disables "
                             "rotation)")
    parser.add_argument("--log-json-backups", type=int,
                        default=DEFAULT_LOG_BACKUPS, metavar="N",
                        help="rotated --log-json generations to keep "
                             "(PATH.1..PATH.N, default: 3)")
    parser.add_argument("--no-metrics", action="store_true",
                        help="disable /metrics and all metric recording "
                             "(the observability-overhead baseline)")
    parser.add_argument("--no-tracing", action="store_true",
                        help="disable span recording and GET /trace/<id> "
                             "(the tracing-overhead baseline)")
    parser.add_argument("--verbose", action="store_true",
                        help="log every HTTP request")


def build_cache_from_args(args: argparse.Namespace) -> SolveCache:
    """The :class:`SolveCache` described by ``add_serve_arguments`` flags.

    Shared by ``repro serve`` and ``repro fleet worker`` so both surfaces
    accept the same sharded-tier knobs.
    """
    budget_mb = getattr(args, "cache_budget_mb", None)
    cache_kwargs: dict[str, Any] = {}
    if getattr(args, "cache_shards", None) is not None:
        cache_kwargs["shards"] = args.cache_shards
    if budget_mb is not None:
        cache_kwargs["size_budget_bytes"] = int(budget_mb * 1024 * 1024)
    if getattr(args, "cache_ttl", None) is not None:
        cache_kwargs["ttl_s"] = args.cache_ttl
    return SolveCache(
        "" if getattr(args, "no_persist", False) else args.cache_path,
        max_memory_entries=args.memory_entries, **cache_kwargs)


def serve(args: argparse.Namespace) -> int:
    cache = build_cache_from_args(args)
    scheduler_kwargs: dict[str, Any] = {}
    if getattr(args, "no_metrics", False):
        scheduler_kwargs["metrics"] = None
    if getattr(args, "no_tracing", False):
        scheduler_kwargs["tracing"] = False
    scheduler = SolveScheduler(cache=cache, shards=args.shards,
                               max_pending=args.max_pending,
                               admission_target_s=getattr(
                                   args, "admission_target", None),
                               inline=args.inline_workers,
                               **scheduler_kwargs)
    log_handler = configure_json_logging(
        getattr(args, "log_json", None),
        max_bytes=getattr(args, "log_json_max_bytes",
                          DEFAULT_LOG_MAX_BYTES),
        backup_count=getattr(args, "log_json_backups",
                             DEFAULT_LOG_BACKUPS))
    server = ServiceServer(host=args.host, port=args.port,
                           scheduler=scheduler, quiet=not args.verbose,
                           request_timeout_s=getattr(
                               args, "request_timeout", _REQUEST_TIMEOUT_S))
    host, port = server.address
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as handle:
            handle.write(str(port))
    print(f"[repro.service] serving on http://{host}:{port} "
          f"(shards={scheduler.shards}, "
          f"workers={'inline' if scheduler.inline else 'process-pool'}, "
          f"cache={cache.path or 'memory-only'}, "
          f"metrics={'off' if scheduler.metrics is None else 'on'}, "
          f"tracing={'off' if scheduler.trace_recorder is None else 'on'})",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        if log_handler is not None:
            from repro.service.jsonlog import service_logger

            service_logger().removeHandler(log_handler)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve repro.solve over JSON/HTTP with a "
                    "content-addressed cache.")
    add_serve_arguments(parser)
    return serve(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())

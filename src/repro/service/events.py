"""Live solve streaming: the ``/events/<key>`` bus and its observer bridge.

A streamed solve travels through three hops:

1. **worker side** -- :class:`StreamingObserver` is installed as an
   *ambient* observer (:func:`repro.congest.observers.ambient_observation`)
   around ``repro.solve``, so every simulator-native round lands one event
   on a queue-like sink.  Inline (thread) workers publish straight into the
   channel; process-pool workers publish into a ``multiprocessing.Manager``
   queue that the scheduler pumps back into the channel.
2. **scheduler side** -- :class:`SolveEventBus` holds one
   :class:`EventChannel` per streamed content address.  A channel keeps a
   bounded ring buffer of recent events, so a subscriber attaching *after*
   round 40 still replays rounds 1..40 before going live -- the
   subscribe/submit race is therefore benign by construction.
3. **HTTP side** -- ``GET /events/<key>`` subscribes and writes each event
   as one SSE ``data:`` frame; the channel's ``None`` sentinel ends the
   stream.

Event vocabulary (every event is one JSON object with an ``"event"`` key):

``queued``     admission succeeded; carries cell/algorithm/shard.
``run_start``  the simulator run began; carries engine and node count.
``round``      one executed round; carries round, active node count,
               message/bit totals and newly-halted count.
``run_end``    the simulator run finished; carries rounds and totals.
``end``        terminal serving outcome (``status`` of ``computed`` /
               ``error`` / ``hit`` / ``cached``); always the last frame.

Graph-level (non-simulator) algorithms produce no ``round`` frames --
their stream is ``queued`` then ``end``, which still gives pollers a
positive completion signal.
"""

from __future__ import annotations

import queue
import threading
from collections import OrderedDict, deque
from typing import Any, Callable

from repro.congest.observers import RoundObserver, RoundSnapshot, RunContext

__all__ = [
    "EventChannel",
    "SolveEventBus",
    "StreamingObserver",
    "END_OF_STREAM",
]

#: Sentinel placed on subscriber queues after the terminal event.
END_OF_STREAM = None

#: How many recent events a channel replays to late subscribers.
_CHANNEL_BUFFER = 512


class EventChannel:
    """One streamed solve: a ring buffer plus live subscriber queues."""

    def __init__(self, key: str, *, buffer: int = _CHANNEL_BUFFER) -> None:
        self.key = key
        self._buffer: deque[dict[str, Any]] = deque(maxlen=max(1, buffer))
        self._subscribers: list["queue.Queue[dict[str, Any] | None]"] = []
        self._lock = threading.Lock()
        self._done = False

    @property
    def done(self) -> bool:
        return self._done

    def publish(self, event: dict[str, Any]) -> None:
        """Buffer the event and fan it out to current subscribers."""
        with self._lock:
            if self._done:
                return
            self._buffer.append(event)
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            subscriber.put(event)

    def close(self, final_event: dict[str, Any] | None = None) -> None:
        """Publish an optional terminal event, then end every stream."""
        with self._lock:
            if self._done:
                return
            if final_event is not None:
                self._buffer.append(final_event)
            self._done = True
            subscribers = list(self._subscribers)
            self._subscribers.clear()
        for subscriber in subscribers:
            if final_event is not None:
                subscriber.put(final_event)
            subscriber.put(END_OF_STREAM)

    def subscribe(self) -> "queue.Queue[dict[str, Any] | None]":
        """A queue pre-loaded with the buffered history (+ sentinel if done)."""
        subscription: "queue.Queue[dict[str, Any] | None]" = queue.Queue()
        with self._lock:
            for event in self._buffer:
                subscription.put(event)
            if self._done:
                subscription.put(END_OF_STREAM)
            else:
                self._subscribers.append(subscription)
        return subscription

    def unsubscribe(self,
                    subscription: "queue.Queue[dict[str, Any] | None]",
                    ) -> None:
        with self._lock:
            try:
                self._subscribers.remove(subscription)
            except ValueError:
                pass  # already closed/never live

    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)


class SolveEventBus:
    """Channels by content address, with a bounded archive of closed ones.

    A channel is *opened* when a streamed request is admitted and *closed*
    when its job reaches a terminal state; closed channels move to a
    bounded LRU archive so ``GET /events/<key>`` issued just after
    completion still replays the run instead of 404ing.
    """

    def __init__(self, *, archive_entries: int = 128) -> None:
        self._live: dict[str, EventChannel] = {}
        self._archive: "OrderedDict[str, EventChannel]" = OrderedDict()
        self._archive_entries = max(1, archive_entries)
        self._lock = threading.Lock()

    def open(self, key: str) -> EventChannel:
        """The live channel for ``key`` (created on first use)."""
        with self._lock:
            channel = self._live.get(key)
            if channel is None:
                channel = EventChannel(key)
                self._live[key] = channel
            return channel

    def get(self, key: str) -> EventChannel | None:
        """The live or archived channel for ``key`` (``None`` if unknown)."""
        with self._lock:
            channel = self._live.get(key)
            if channel is None:
                channel = self._archive.get(key)
            return channel

    def live_keys(self) -> list[str]:
        with self._lock:
            return list(self._live)

    def close(self, key: str,
              final_event: dict[str, Any] | None = None) -> None:
        """Close ``key``'s channel and move it to the archive."""
        with self._lock:
            channel = self._live.pop(key, None)
            if channel is not None:
                self._archive[key] = channel
                self._archive.move_to_end(key)
                while len(self._archive) > self._archive_entries:
                    self._archive.popitem(last=False)
        if channel is not None:
            channel.close(final_event)

    def shutdown(self, reason: str = "server shutting down") -> None:
        """Terminate every live stream (server/scheduler teardown)."""
        with self._lock:
            channels = list(self._live.items())
            self._live.clear()
        for key, channel in channels:
            channel.close({"event": "end", "key": key, "status": "error",
                           "error": reason})


class _ChannelSink:
    """Queue-shaped adapter publishing straight into a channel.

    Inline (thread-mode) workers share the scheduler's process, so their
    :class:`StreamingObserver` can skip the cross-process queue entirely;
    the sentinel is swallowed because the scheduler closes the channel
    itself once the job settles.
    """

    def __init__(self, channel: EventChannel,
                 on_publish: Callable[[dict[str, Any]], None] | None = None,
                 ) -> None:
        self._channel = channel
        self._on_publish = on_publish

    def put(self, event: dict[str, Any] | None) -> None:
        if event is None:
            return
        self._channel.publish(event)
        if self._on_publish is not None:
            self._on_publish(event)


class StreamingObserver(RoundObserver):
    """Bridge :class:`RoundObserver` hooks onto a queue-like event sink.

    ``sink`` only needs a ``put(dict)`` method -- a ``queue.Queue``, a
    ``multiprocessing`` manager proxy or a :class:`_ChannelSink` all fit.
    ``stride`` thins round events for very long runs (the final round is
    always emitted via ``run_end``).  Attaching any observer routes a
    vector-engine run through its scalar fallback, so streamed solves
    trade raw speed for watchability by design -- the fallback is visible
    in the report's ``engine_used`` metric.
    """

    def __init__(self, sink: Any, *, stride: int = 1) -> None:
        self._sink = sink
        self._stride = max(1, int(stride))
        self._active = 0

    def on_run_start(self, context: RunContext) -> None:
        self._sink.put({
            "event": "run_start",
            "engine": context.engine,
            "n": context.topology.n,
        })

    def on_round_start(self, round_number: int, active_count: int) -> None:
        self._active = active_count

    def on_round_end(self, round_number: int,
                     snapshot: RoundSnapshot) -> None:
        if round_number % self._stride:
            return
        self._sink.put({
            "event": "round",
            "round": snapshot.round_number,
            "active": snapshot.active_at_start,
            "newly_halted": len(snapshot.newly_halted),
            "messages": snapshot.messages,
            "bits": snapshot.bits,
            "max_edge_bits": snapshot.max_edge_bits,
        })

    def on_run_end(self, result: Any) -> None:
        self._sink.put({
            "event": "run_end",
            "rounds": result.rounds,
            "messages": result.total_messages,
            "bits": result.total_bits,
            "halted": result.halted,
            "engine_used": result.engine_used or result.engine,
        })

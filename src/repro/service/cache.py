"""The content-addressed solve cache: two tiers behind one ``get``/``put``.

Cache key contract
------------------
A solve is identified bit-for-bit by its :class:`~repro.api.SolvePlan` --
``(graph_fingerprint, algorithm, canonical config, seed)`` -- which is
exactly what lands in ``RunReport.provenance``.  :func:`solve_key` hashes
that tuple into a stable hex key, so two requests share a cache entry iff
``repro.solve`` would produce identical reports for them.  Derived-seed
requests are cacheable too: the plan derives the same seed from the same
``(algorithm, config, fingerprint)`` triple, so the key is concrete either
way, and a cached response's provenance (seed *and* seed policy) is
identical to what a fresh solve would produce.

Tiers
-----
* **memory** -- a bounded LRU of live :class:`RunReport` objects (payload
  included while the entry lives in memory);
* **persistent** -- an append-only JSON-lines file under
  :func:`repro._paths.results_dir` reusing the scenario
  :class:`~repro.scenarios.store.ResultStore` format with ``cache_key`` as
  the identity column.  Rows hold :func:`repro.api.report_to_json` objects:
  everything but ``payload`` round-trips, and the stored certificate is
  replayed verbatim on a hit (re-verification is a ``replay`` away, and the
  test suite does exactly that).

Both tiers are guarded by one lock, so the cache is safe under the
threaded HTTP server and the asyncio scheduler alike.

Accounting contract: :meth:`SolveCache.lookup` / :meth:`SolveCache.get`
*count* (hits/misses feed ``hit_rate``) and *promote* (LRU order, disk ->
memory); :meth:`SolveCache.peek` does neither -- it exists so read-only
surfaces like ``GET /report/<key>`` cannot distort the stats operators
alarm on, nor churn the eviction order (the bug this split fixed).
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Mapping

import networkx as nx

from repro._paths import results_path
from repro.api import REGISTRY, RunReport, SolvePlan
from repro.api.serialize import report_from_json, report_to_json
from repro.hashing.seeds import derive_seed
from repro.scenarios.store import ResultStore

__all__ = ["CacheStats", "CachedSolve", "SolveCache", "default_cache_path",
           "key_for_plan", "solve_key"]


def default_cache_path() -> str:
    """``benchmarks/results/solve_cache.jsonl`` (same anchoring as stores)."""
    return results_path("solve_cache.jsonl")


def solve_key(*, algorithm: str, graph_fingerprint: str,
              config: tuple[tuple[str, Any], ...], seed: int) -> str:
    """The stable content address of one solve (see module docstring)."""
    canonical = json.dumps(
        {"algorithm": algorithm, "fingerprint": graph_fingerprint,
         "config": [[key, value] for key, value in config], "seed": seed},
        sort_keys=True, default=str)
    return format(derive_seed("repro.service.cache", canonical, bits=128),
                  "032x")


def key_for_plan(plan: SolvePlan) -> str:
    return solve_key(algorithm=plan.algorithm.name,
                     graph_fingerprint=plan.graph_fingerprint,
                     config=plan.config, seed=plan.seed)


@dataclass
class CacheStats:
    """Counters for the ``/stats`` endpoint and the benchmark gate."""

    hits: int = 0
    memory_hits: int = 0
    persistent_hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def to_row(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "memory_hits": self.memory_hits,
            "persistent_hits": self.persistent_hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass(frozen=True)
class CachedSolve:
    """One :meth:`SolveCache.solve` outcome: the report plus where it came from."""

    report: RunReport
    key: str
    hit: bool
    tier: str  # "memory", "persistent" or "computed"


class SolveCache:
    """Two-tier (LRU memory + JSON-lines disk) cache of solved RunReports."""

    def __init__(self, path: str | None = None, *,
                 max_memory_entries: int = 1024,
                 registry=REGISTRY) -> None:
        """``path=None`` picks the default store; ``path=""`` disables disk."""
        if path is None:
            path = default_cache_path()
        self.registry = registry
        self.max_memory_entries = max(1, int(max_memory_entries))
        self._memory: "OrderedDict[str, RunReport]" = OrderedDict()
        self._store = ResultStore(path, key_field="cache_key") if path else None
        # The persistent tier is indexed by byte span, not by row: keeping
        # every serialised report in process memory would make the LRU
        # bound illusory for long-lived servers.  A persistent hit seeks
        # and re-parses its one line.
        self._persistent_spans: dict[str, tuple[int, int]] = (
            self._scan_spans())
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def _scan_spans(self) -> dict[str, tuple[int, int]]:
        """Index the persistent store: ``cache_key -> (offset, length)``.

        Last write wins, corrupt and key-less lines are skipped -- the
        same semantics as :meth:`ResultStore.load`, without materialising
        the rows.
        """
        spans: dict[str, tuple[int, int]] = {}
        if self._store is None or not self._store.exists():
            return spans
        offset = 0
        with open(self._store.path, "rb") as handle:
            for line in handle:
                length = len(line)
                try:
                    row = json.loads(line)
                    key = row.get("cache_key")
                except (json.JSONDecodeError, UnicodeDecodeError,
                        AttributeError):
                    key = None
                if isinstance(key, str):
                    spans[key] = (offset, length)
                offset += length
        return spans

    def _read_persistent(self, key: str) -> RunReport | None:
        """Re-read one row by its span (``None`` on any inconsistency)."""
        span = self._persistent_spans.get(key)
        if span is None or self._store is None:
            return None
        try:
            with open(self._store.path, "rb") as handle:
                handle.seek(span[0])
                row = json.loads(handle.read(span[1]))
            return report_from_json(row["report"])
        except (OSError, json.JSONDecodeError, UnicodeDecodeError,
                KeyError, TypeError, ValueError):
            # A truncated/replaced file behind our back: treat as a miss.
            self._persistent_spans.pop(key, None)
            return None

    @property
    def path(self) -> str | None:
        return self._store.path if self._store is not None else None

    # ------------------------------------------------------------- tiers
    def _memory_put(self, key: str, report: RunReport) -> None:
        self._memory[key] = report
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def lookup(self, key: str, *, require_certificate: bool = False,
               ) -> tuple[RunReport | None, str]:
        """``(report, tier)`` for ``key``; ``(None, "miss")`` when absent.

        A persistent-tier hit is deserialised (payload empty, certificate
        replayed verbatim) and promoted into the memory tier.
        ``require_certificate=True`` refuses entries stored by unverified
        solves, so a verifying caller never inherits an unchecked result.
        """
        with self._lock:
            report = self._memory.get(key)
            if report is not None and (report.certificate is not None
                                       or not require_certificate):
                self._memory.move_to_end(key)
                self.stats.hits += 1
                self.stats.memory_hits += 1
                return report, "memory"
            report = self._read_persistent(key)
            if report is not None and (report.certificate is not None
                                       or not require_certificate):
                self._memory_put(key, report)
                self.stats.hits += 1
                self.stats.persistent_hits += 1
                return report, "persistent"
            self.stats.misses += 1
            return None, "miss"

    def get(self, key: str, *, require_certificate: bool = False,
            ) -> RunReport | None:
        return self.lookup(key, require_certificate=require_certificate)[0]

    def peek(self, key: str, *, require_certificate: bool = False,
             ) -> tuple[RunReport | None, str]:
        """Read-only ``lookup``: no stats accounting, no LRU churn.

        ``GET /report/<key>`` polling goes through here -- a monitoring
        loop hammering the report endpoint must not inflate ``hit_rate``
        (operators size the cache off that number) nor promote the polled
        key ahead of genuinely re-requested entries in the LRU.  A
        persistent-tier peek deserialises the row but does *not* promote
        it into the memory tier.
        """
        with self._lock:
            report = self._memory.get(key)
            if report is not None and (report.certificate is not None
                                       or not require_certificate):
                return report, "memory"
            report = self._read_persistent(key)
            if report is not None and (report.certificate is not None
                                       or not require_certificate):
                return report, "persistent"
            return None, "miss"

    def put(self, key: str, report: RunReport) -> None:
        """Store a report in both tiers (last write wins on disk)."""
        with self._lock:
            self._memory_put(key, report)
            self.stats.puts += 1
            if self._store is not None:
                row = {
                    "cache_key": key,
                    "report": json.loads(report_to_json(report)),
                    "stored_at": round(time.time(), 3),
                }
                offset = (os.path.getsize(self._store.path)
                          if self._store.exists() else 0)
                self._store.append(row)
                length = os.path.getsize(self._store.path) - offset
                self._persistent_spans[key] = (offset, length)

    # ------------------------------------------------------- convenience
    def solve(self, graph: nx.Graph, problem_or_algorithm, *,
              seed: int | None = None, verify: bool = True,
              **config: Any) -> CachedSolve:
        """``repro.solve`` through the cache.

        Plans the request (deterministic: fingerprint, canonical config,
        derived seed), serves a stored report when the content address is
        known, and computes + stores otherwise.  With ``verify=True`` only
        certified entries count as hits.
        """
        plan = self.registry.plan(graph, problem_or_algorithm, seed=seed,
                                  **config)
        key = key_for_plan(plan)
        report, tier = self.lookup(key, require_certificate=verify)
        if report is not None:
            return CachedSolve(report=report, key=key, hit=True, tier=tier)
        report = self.registry.solve(graph, plan.algorithm, seed=seed,
                                     verify=verify, **plan.config_dict)
        self.put(key, report)
        return CachedSolve(report=report, key=key, hit=False, tier="computed")

    def warmth_summary(self) -> dict[str, Any]:
        """A compact description of how warm this cache is.

        Fleet workers advertise this in their enroll/heartbeat capability
        tags so the coordinator (and ``repro fleet status``) can see which
        nodes hold hot state worth routing to.  Cheap by design: counters
        and sizes only, no row materialisation.
        """
        with self._lock:
            return {
                "memory_entries": len(self._memory),
                "persistent_entries": len(self._persistent_spans),
                "hits": self.stats.hits,
                "puts": self.stats.puts,
                "hit_rate": round(self.stats.hit_rate, 4),
            }

    # ------------------------------------------------------- maintenance
    def compact(self) -> tuple[int, int]:
        """Compact the persistent tier (see :meth:`ResultStore.compact`)."""
        if self._store is None:
            return (0, 0)
        with self._lock:
            result = self._store.compact()
            self._persistent_spans = self._scan_spans()  # offsets moved
            return result

    def __len__(self) -> int:
        with self._lock:
            keys = set(self._memory) | set(self._persistent_spans)
            return len(keys)

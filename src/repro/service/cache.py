"""The content-addressed solve cache: two tiers behind one ``get``/``put``.

Cache key contract
------------------
A solve is identified bit-for-bit by its :class:`~repro.api.SolvePlan` --
``(graph_fingerprint, algorithm, canonical config, seed)`` -- which is
exactly what lands in ``RunReport.provenance``.  :func:`solve_key` hashes
that tuple into a stable hex key, so two requests share a cache entry iff
``repro.solve`` would produce identical reports for them.  Derived-seed
requests are cacheable too: the plan derives the same seed from the same
``(algorithm, config, fingerprint)`` triple, so the key is concrete either
way, and a cached response's provenance (seed *and* seed policy) is
identical to what a fresh solve would produce.

Tiers
-----
* **memory** -- a bounded LRU of live :class:`RunReport` objects (payload
  included while the entry lives in memory);
* **persistent** -- rows hold :func:`repro.api.report_to_json` objects:
  everything but ``payload`` round-trips, and the stored certificate is
  replayed verbatim on a hit (re-verification is a ``replay`` away, and
  the test suite does exactly that).  Two on-disk layouts exist:

  - a *sharded* store (the default): a directory of N key-shards, each a
    sequence of rotated segment files with TTL + LRU eviction under a
    size budget -- see :mod:`repro.service.shardstore`;
  - the *legacy* single-file layout (any path ending in ``.jsonl``):
    one append-only JSON-lines file reusing the scenario
    :class:`~repro.scenarios.store.ResultStore` format with ``cache_key``
    as the identity column.

* **peer** -- optional: a ``peer_fetch`` callable (installed by fleet
  workers; typically a coordinator-mediated ``GET /cache/<key>``) is
  consulted on a local miss, and a fetched report is stored into both
  local tiers, so a worker inheriting remapped keys after membership
  churn starts warm instead of recomputing.  The peer call runs *outside*
  the cache lock -- it is network I/O, and the peer being asked may need
  this very lock to answer.

Both local tiers are guarded by one lock, so the cache is safe under the
threaded HTTP server and the asyncio scheduler alike.  Every persistent
span read verifies the row's key before serving it: a stale span (the
file was compacted or rewritten by another process) costs one rescan,
never a wrong report.

Accounting contract: :meth:`SolveCache.lookup` / :meth:`SolveCache.get`
*count* (hits/misses feed ``hit_rate``) and *promote* (LRU order, disk ->
memory); :meth:`SolveCache.peek` does neither -- it exists so read-only
surfaces like ``GET /report/<key>`` cannot distort the stats operators
alarm on, nor churn the eviction order (the bug this split fixed).
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Mapping

import networkx as nx

from repro._paths import results_path
from repro.api import REGISTRY, RunReport, SolvePlan
from repro.api.serialize import report_from_json, report_to_json
from repro.hashing.seeds import derive_seed
from repro.scenarios.store import ResultStore
from repro.service.shardstore import DEFAULT_SEGMENT_BYTES, DEFAULT_SHARDS, \
    ShardStore

__all__ = ["CacheStats", "CachedSolve", "SolveCache", "default_cache_path",
           "key_for_plan", "solve_key"]


def default_cache_path() -> str:
    """``benchmarks/results/solve_cache/`` (same anchoring as stores).

    A directory: the default persistent tier is the sharded store.  The
    pre-sharding single-file layout is still available by passing any
    path ending in ``.jsonl`` (its historical default was
    ``benchmarks/results/solve_cache.jsonl``).
    """
    return results_path("solve_cache")


def solve_key(*, algorithm: str, graph_fingerprint: str,
              config: tuple[tuple[str, Any], ...], seed: int) -> str:
    """The stable content address of one solve (see module docstring)."""
    canonical = json.dumps(
        {"algorithm": algorithm, "fingerprint": graph_fingerprint,
         "config": [[key, value] for key, value in config], "seed": seed},
        sort_keys=True, default=str)
    return format(derive_seed("repro.service.cache", canonical, bits=128),
                  "032x")


def key_for_plan(plan: SolvePlan) -> str:
    return solve_key(algorithm=plan.algorithm.name,
                     graph_fingerprint=plan.graph_fingerprint,
                     config=plan.config, seed=plan.seed)


@dataclass
class CacheStats:
    """Counters for the ``/stats`` endpoint and the benchmark gate."""

    hits: int = 0
    memory_hits: int = 0
    persistent_hits: int = 0
    peer_hits: int = 0
    peer_errors: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def to_row(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "memory_hits": self.memory_hits,
            "persistent_hits": self.persistent_hits,
            "peer_hits": self.peer_hits,
            "peer_errors": self.peer_errors,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass(frozen=True)
class CachedSolve:
    """One :meth:`SolveCache.solve` outcome: the report plus where it came from."""

    report: RunReport
    key: str
    hit: bool
    tier: str  # "memory", "persistent", "peer" or "computed"


class SolveCache:
    """Two-tier (LRU memory + sharded/JSON-lines disk) cache of RunReports."""

    def __init__(self, path: str | None = None, *,
                 max_memory_entries: int = 1024,
                 registry=REGISTRY,
                 shards: int = DEFAULT_SHARDS,
                 size_budget_bytes: int | None = None,
                 ttl_s: float | None = None,
                 max_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 peer_fetch: Callable[[str], Mapping[str, Any] | None]
                 | None = None) -> None:
        """``path=None`` picks the default store; ``path=""`` disables disk.

        A ``path`` ending in ``.jsonl`` selects the legacy single-file
        layout; any other non-empty path is a sharded-store directory
        (``shards``, ``size_budget_bytes``, ``ttl_s`` and
        ``max_segment_bytes`` apply only there).  ``peer_fetch``, when
        given, is called with a cache key on a local miss and may return
        a stored row (or report-JSON) fetched from a fleet peer.
        """
        if path is None:
            path = default_cache_path()
        self.registry = registry
        self.max_memory_entries = max(1, int(max_memory_entries))
        self.peer_fetch = peer_fetch
        self._memory: "OrderedDict[str, RunReport]" = OrderedDict()
        self._store: ResultStore | None = None
        self._shardstore: ShardStore | None = None
        if path and path.endswith(".jsonl"):
            self._store = ResultStore(path, key_field="cache_key")
        elif path:
            self._shardstore = ShardStore(
                path, shards=shards, key_field="cache_key",
                max_segment_bytes=max_segment_bytes,
                size_budget_bytes=size_budget_bytes, ttl_s=ttl_s)
        # The legacy tier is indexed by byte span, not by row: keeping
        # every serialised report in process memory would make the LRU
        # bound illusory for long-lived servers.  A persistent hit seeks
        # and re-parses its one line.  (The sharded store keeps its own
        # per-shard span indexes.)
        self._persistent_spans: dict[str, tuple[int, int]] = (
            self._scan_spans())
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def _scan_spans(self) -> dict[str, tuple[int, int]]:
        """Index the persistent store: ``cache_key -> (offset, length)``.

        Last write wins, corrupt and key-less lines are skipped -- the
        same semantics as :meth:`ResultStore.load`, without materialising
        the rows.
        """
        spans: dict[str, tuple[int, int]] = {}
        if self._store is None or not self._store.exists():
            return spans
        offset = 0
        with open(self._store.path, "rb") as handle:
            for line in handle:
                length = len(line)
                try:
                    row = json.loads(line)
                    key = row.get("cache_key")
                except (json.JSONDecodeError, UnicodeDecodeError,
                        AttributeError):
                    key = None
                if isinstance(key, str):
                    spans[key] = (offset, length)
                offset += length
        return spans

    def _read_persistent(self, key: str) -> RunReport | None:
        """The persistent-tier report for ``key`` (``None`` when absent).

        Both layouts verify that the bytes they read actually belong to
        ``key`` before deserialising: a span can go stale whenever another
        process compacts or rewrites the store, and a stale span may parse
        a perfectly *valid* row -- for a different key.  On mismatch the
        index is rebuilt and the read retried once; failing that, a miss.
        """
        if self._shardstore is not None:
            row = self._shardstore.get(key)
            if row is None:
                return None
            try:
                return report_from_json(row["report"])
            except (KeyError, TypeError, ValueError):
                return None
        if self._store is not None:
            return self._read_legacy(key, rescan=True)
        return None

    def _read_legacy(self, key: str, *, rescan: bool) -> RunReport | None:
        span = self._persistent_spans.get(key)
        if span is None:
            return None
        row: Any = None
        try:
            with open(self._store.path, "rb") as handle:
                handle.seek(span[0])
                row = json.loads(handle.read(span[1]))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            row = None
        if isinstance(row, dict) and row.get("cache_key") == key:
            try:
                return report_from_json(row["report"])
            except (KeyError, TypeError, ValueError):
                self._persistent_spans.pop(key, None)
                return None
        # Stale or torn span (compaction/rewrite behind our back): rescan
        # once and retry.  Never serve whatever row now occupies the span.
        if not rescan:
            self._persistent_spans.pop(key, None)
            return None
        self._persistent_spans = self._scan_spans()
        return self._read_legacy(key, rescan=False)

    @property
    def path(self) -> str | None:
        if self._shardstore is not None:
            return self._shardstore.root
        return self._store.path if self._store is not None else None

    # ------------------------------------------------------------- tiers
    def _memory_put(self, key: str, report: RunReport) -> None:
        self._memory[key] = report
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    def _lookup_locked(self, key: str, require_certificate: bool, *,
                       promote: bool) -> tuple[RunReport | None, str]:
        """Local-tier lookup; caller holds the lock and does the counting."""
        report = self._memory.get(key)
        if report is not None and (report.certificate is not None
                                   or not require_certificate):
            if promote:
                self._memory.move_to_end(key)
            return report, "memory"
        report = self._read_persistent(key)
        if report is not None and (report.certificate is not None
                                   or not require_certificate):
            if promote:
                self._memory_put(key, report)
            return report, "persistent"
        return None, "miss"

    def lookup(self, key: str, *, require_certificate: bool = False,
               consult_peers: bool = True,
               ) -> tuple[RunReport | None, str]:
        """``(report, tier)`` for ``key``; ``(None, "miss")`` when absent.

        A persistent-tier hit is deserialised (payload empty, certificate
        replayed verbatim) and promoted into the memory tier.
        ``require_certificate=True`` refuses entries stored by unverified
        solves, so a verifying caller never inherits an unchecked result.
        When a ``peer_fetch`` hook is installed (fleet workers) a local
        miss additionally asks the fleet -- outside the lock, since the
        peer answering may itself need a cache lock to respond -- and a
        fetched report is stored into both local tiers (tier ``"peer"``).
        ``consult_peers=False`` suppresses that network hop.
        """
        with self._lock:
            report, tier = self._lookup_locked(key, require_certificate,
                                               promote=True)
            if report is not None:
                self.stats.hits += 1
                if tier == "memory":
                    self.stats.memory_hits += 1
                else:
                    self.stats.persistent_hits += 1
                return report, tier
        if consult_peers and self.peer_fetch is not None:
            report = self._fetch_from_peer(key, require_certificate)
            if report is not None:
                with self._lock:
                    self._memory_put(key, report)
                    self._persist_locked(key, report)
                    self.stats.hits += 1
                    self.stats.peer_hits += 1
                return report, "peer"
        with self._lock:
            self.stats.misses += 1
        return None, "miss"

    def _fetch_from_peer(self, key: str,
                         require_certificate: bool) -> RunReport | None:
        """One guarded ``peer_fetch`` call; any failure is just a miss."""
        try:
            row = self.peer_fetch(key)
        except Exception:
            self.stats.peer_errors += 1
            return None
        if not isinstance(row, Mapping):
            return None
        try:
            report = report_from_json(row["report"] if "report" in row
                                      else row)
        except (KeyError, TypeError, ValueError):
            self.stats.peer_errors += 1
            return None
        if require_certificate and report.certificate is None:
            return None
        return report

    def get(self, key: str, *, require_certificate: bool = False,
            ) -> RunReport | None:
        return self.lookup(key, require_certificate=require_certificate)[0]

    def peek(self, key: str, *, require_certificate: bool = False,
             ) -> tuple[RunReport | None, str]:
        """Read-only ``lookup``: no stats accounting, no LRU churn.

        ``GET /report/<key>`` polling goes through here -- a monitoring
        loop hammering the report endpoint must not inflate ``hit_rate``
        (operators size the cache off that number) nor promote the polled
        key ahead of genuinely re-requested entries in the LRU.  A
        persistent-tier peek deserialises the row but does *not* promote
        it into the memory tier.  Peeks never consult fleet peers.
        """
        with self._lock:
            return self._lookup_locked(key, require_certificate,
                                       promote=False)

    def _persist_locked(self, key: str, report: RunReport) -> None:
        """Write one report row to the persistent tier (lock held)."""
        if self._store is None and self._shardstore is None:
            return
        row = {
            "cache_key": key,
            "report": json.loads(report_to_json(report)),
            "stored_at": round(time.time(), 3),
        }
        if self._shardstore is not None:
            self._shardstore.put(key, row)
        else:
            # The span returned by append is measured under the store's
            # file lock -- authoritative even with several processes
            # appending, where getsize-then-append used to drift.
            self._persistent_spans[key] = self._store.append(row)

    def put(self, key: str, report: RunReport) -> None:
        """Store a report in both tiers (last write wins on disk)."""
        with self._lock:
            self._memory_put(key, report)
            self.stats.puts += 1
            self._persist_locked(key, report)

    # ------------------------------------------------------- convenience
    def solve(self, graph: nx.Graph, problem_or_algorithm, *,
              seed: int | None = None, verify: bool = True,
              **config: Any) -> CachedSolve:
        """``repro.solve`` through the cache.

        Plans the request (deterministic: fingerprint, canonical config,
        derived seed), serves a stored report when the content address is
        known, and computes + stores otherwise.  With ``verify=True`` only
        certified entries count as hits.
        """
        plan = self.registry.plan(graph, problem_or_algorithm, seed=seed,
                                  **config)
        key = key_for_plan(plan)
        report, tier = self.lookup(key, require_certificate=verify)
        if report is not None:
            return CachedSolve(report=report, key=key, hit=True, tier=tier)
        report = self.registry.solve(graph, plan.algorithm, seed=seed,
                                     verify=verify, **plan.config_dict)
        self.put(key, report)
        return CachedSolve(report=report, key=key, hit=False, tier="computed")

    def warmth_summary(self) -> dict[str, Any]:
        """A compact description of how warm this cache is.

        Fleet workers advertise this in their enroll/heartbeat capability
        tags so the coordinator (and ``repro fleet status``) can see which
        nodes hold hot state worth routing to.  Cheap by design: counters
        and sizes only, no row materialisation.
        """
        with self._lock:
            summary = {
                "memory_entries": len(self._memory),
                "persistent_entries": self._persistent_len_locked(),
                "hits": self.stats.hits,
                "puts": self.stats.puts,
                "peer_hits": self.stats.peer_hits,
                "hit_rate": round(self.stats.hit_rate, 4),
                "tier": ("sharded" if self._shardstore is not None
                         else "legacy" if self._store is not None
                         else "memory"),
            }
            if self._shardstore is not None:
                occupancy = self._shardstore.occupancy()
                summary["persistent_bytes"] = sum(
                    row["disk_bytes"] for row in occupancy)
                summary["shards"] = [row["entries"] for row in occupancy]
                counters = self._shardstore.counters()
                summary["evictions"] = {
                    "ttl": counters["evictions_ttl"],
                    "lru": counters["evictions_lru"],
                }
            return summary

    def _persistent_len_locked(self) -> int:
        if self._shardstore is not None:
            return len(self._shardstore)
        return len(self._persistent_spans)

    def shard_occupancy(self) -> list[dict[str, Any]]:
        """Per-shard occupancy rows (empty for legacy/memory-only caches)."""
        if self._shardstore is None:
            return []
        return self._shardstore.occupancy()

    def store_counters(self) -> dict[str, int]:
        """Sharded-store maintenance counters (empty otherwise)."""
        if self._shardstore is None:
            return {}
        return self._shardstore.counters()

    # ------------------------------------------------------- maintenance
    def compact(self) -> tuple[int, int]:
        """Compact the persistent tier (see :meth:`ResultStore.compact`)."""
        if self._shardstore is not None:
            with self._lock:
                return self._shardstore.compact()
        if self._store is None:
            return (0, 0)
        with self._lock:
            result = self._store.compact()
            self._persistent_spans = self._scan_spans()  # offsets moved
            return result

    def __len__(self) -> int:
        with self._lock:
            if self._shardstore is not None:
                keys = set(self._memory) | self._shardstore.keys()
            else:
                keys = set(self._memory) | set(self._persistent_spans)
            return len(keys)

"""The serving layer: content-addressed solve cache + async batch serving.

The fourth subsystem (after ``congest``, ``api`` and ``scenarios``): it
turns the solver library into a servable system.  PR 3's provenance block
-- ``(graph_fingerprint, algorithm, canonical config, seed)`` -- identifies
a run bit-for-bit, i.e. it *is* a content address; this package builds the
machinery that exploits it:

* :mod:`repro.service.cache` -- a tiered result cache (in-process LRU +
  persistent sharded store + optional fleet-peer fetch) keyed by that
  address, storing serialised :class:`~repro.api.RunReport` rows and
  replaying their certificates on hit;
* :mod:`repro.service.shardstore` -- the persistent tier's engine: N
  key-shards of segmented append-only JSON-lines logs with in-memory
  span indexes, TTL + LRU eviction under a size budget, and segment
  compaction (``repro cache stats|compact`` inspect and maintain it);
* :mod:`repro.service.scheduler` -- an asyncio scheduler with request
  coalescing (identical in-flight requests share one computation),
  priority + admission queues and key-sharded dispatch to a
  ``ProcessPoolExecutor`` worker pool;
* :mod:`repro.service.server` / :mod:`repro.service.client` -- a
  stdlib-only JSON-over-HTTP endpoint (``repro serve``: ``POST /solve``,
  ``GET /report/<key>``, ``/healthz``, ``/stats``, ``/metrics``,
  ``/events/<key>``) and its thin client;
* :mod:`repro.service.metrics` / :mod:`repro.service.jsonlog` /
  :mod:`repro.service.events` -- the observability layer: a stdlib
  Prometheus-text metrics registry, JSON-lines structured request
  logging (``repro serve --log-json``) and live solve streaming over
  server-sent events.

Quick use (in-process, no HTTP)::

    from repro.service import SolveCache
    cache = SolveCache()                  # two tiers, default store
    hit = cache.solve(graph, "power-mis", k=2)
    hit.report.certificate.ok             # replayed verbatim on a hit
    hit.hit, hit.tier                     # (True, "memory") the second time

Full stack (HTTP)::

    from repro.service import ServiceClient, ServiceServer
    with ServiceServer(port=0) as server:
        client = ServiceClient(server.url)
        row = client.solve("regular-n24-d3", "power-mis", config={"k": 2})
"""

from repro.service.cache import (
    CachedSolve,
    CacheStats,
    SolveCache,
    default_cache_path,
    solve_key,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.events import EventChannel, SolveEventBus, StreamingObserver
from repro.service.jsonlog import configure_json_logging, log_event
from repro.service.metrics import MetricsRegistry, ServiceMetrics
from repro.service.scheduler import (
    AdmissionError,
    SolveRequest,
    SolveResponse,
    SolveScheduler,
)
from repro.service.server import ServiceServer, SolveTimeout
from repro.service.shardstore import ShardStore, shard_of
from repro.service.tracectx import (
    TRACE_HEADER,
    Span,
    SpanRecorder,
    TraceContext,
)

__all__ = [
    "AdmissionError",
    "CachedSolve",
    "CacheStats",
    "EventChannel",
    "MetricsRegistry",
    "ServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "ServiceServer",
    "ShardStore",
    "SolveCache",
    "SolveEventBus",
    "SolveRequest",
    "SolveResponse",
    "SolveScheduler",
    "SolveTimeout",
    "Span",
    "SpanRecorder",
    "StreamingObserver",
    "TRACE_HEADER",
    "TraceContext",
    "configure_json_logging",
    "log_event",
    "shard_of",
    "solve_key",
    "default_cache_path",
]

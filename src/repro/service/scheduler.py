"""The async request scheduler: coalesce, admit, shard, dispatch.

Request model
-------------
A :class:`SolveRequest` names a *workload* (a scenario-registry graph cell
such as ``regular-n64-d4``, or a family name resolved to its first cell)
plus the algorithm, typed config and optional explicit seed -- the same
vocabulary as ``repro solve``.  Workloads are registry-built from an
explicit ``graph_seed``, so a request is pure data: any worker process can
rebuild the identical graph, and the request's content address (the
:class:`~repro.api.SolvePlan` key) is computable before any work happens.

Pipeline (``submit``)
---------------------
1. **Plan** -- build (memoized) the workload graph in-process, resolve the
   algorithm/config/seed to a :class:`SolvePlan` and its cache key.
2. **Cache** -- a key already in the two-tier cache is answered
   immediately (``status="hit"``).
3. **Coalesce** -- a key already *in flight* attaches to the existing
   future (``status="coalesced"``): identical concurrent requests share
   one computation, the classic thundering-herd guard.
4. **Admit** -- beyond ``max_pending`` queued jobs the request is refused
   with :class:`AdmissionError` (HTTP 429 at the server), keeping latency
   bounded under overload instead of queueing unboundedly.
5. **Dispatch** -- the job enters the priority queue of shard
   ``hash(key) % shards``; each shard has one consumer task feeding its own
   single-worker ``ProcessPoolExecutor``, so a given content address always
   lands on the same worker (deterministic placement, warm per-worker
   state) and distinct shards run genuinely in parallel.  Lower ``priority``
   values run first within a shard; FIFO breaks ties.

Workers return the *serialised* report (``repro.api.report_to_json``), not
the live object -- payloads never cross the process boundary, mirroring the
persistent cache tier.  The request's ``seed`` is forwarded verbatim
(``None`` stays ``None``), so a worker re-derives the same seed/policy the
plan predicted and cached provenance is identical to a fresh
``repro.solve``.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import threading
import time
from collections import deque
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Mapping

import networkx as nx

from repro.api import REGISTRY, RunReport
from repro.api.serialize import report_from_json, report_to_json
from repro.service.cache import SolveCache, key_for_plan

__all__ = ["AdmissionError", "SolveRequest", "SolveResponse", "SolveScheduler",
           "resolve_workload"]


class AdmissionError(RuntimeError):
    """Raised when the scheduler refuses a request: the pending queues are
    full (backpressure) or the scheduler is shutting down / closed."""


def resolve_workload(workload: str) -> str:
    """Map a cell or family name to the concrete registry cell name."""
    from repro.scenarios.registry import DEFAULT_REGISTRY

    try:
        return DEFAULT_REGISTRY.cell(workload).name
    except KeyError:
        cells = sorted(DEFAULT_REGISTRY.cells(family=workload),
                       key=lambda cell: cell.name)
        if not cells:
            known = ", ".join(sorted(c.name for c in DEFAULT_REGISTRY.cells()))
            raise KeyError(f"unknown workload {workload!r}: not a registry "
                           f"cell or family (cells: {known})") from None
        return cells[0].name


def build_workload(cell: str, *, graph_seed: int) -> nx.Graph:
    from repro.scenarios.registry import DEFAULT_REGISTRY

    return DEFAULT_REGISTRY.build_cell(cell, seed=graph_seed)


@dataclass(frozen=True)
class SolveRequest:
    """One serveable solve: pure data, rebuildable in any worker process."""

    workload: str
    algorithm: str
    graph_seed: int = 0
    seed: int | None = None
    config: tuple[tuple[str, Any], ...] = ()
    verify: bool = True
    #: Lower runs first within a shard; ties are FIFO.
    priority: int = 10

    @classmethod
    def from_obj(cls, obj: Mapping[str, Any]) -> "SolveRequest":
        """Parse + validate a JSON request body (unknown keys rejected)."""
        allowed = {"workload", "algorithm", "graph_seed", "seed", "config",
                   "verify", "priority"}
        unknown = set(obj) - allowed
        if unknown:
            raise ValueError(f"unknown request fields {sorted(unknown)}; "
                             f"accepted: {sorted(allowed)}")
        for required in ("workload", "algorithm"):
            if not obj.get(required):
                raise ValueError(f"request field {required!r} is required")
        config = obj.get("config") or {}
        if not isinstance(config, Mapping):
            raise ValueError("request field 'config' must be an object")
        seed = obj.get("seed")
        return cls(
            workload=str(obj["workload"]),
            algorithm=str(obj["algorithm"]),
            graph_seed=int(obj.get("graph_seed", 0)),
            seed=None if seed is None else int(seed),
            config=tuple(sorted(config.items())),
            verify=bool(obj.get("verify", True)),
            priority=int(obj.get("priority", 10)),
        )

    @property
    def config_dict(self) -> dict[str, Any]:
        return dict(self.config)


@dataclass
class SolveResponse:
    """What ``submit`` resolves to: the report plus serving metadata."""

    report: RunReport
    key: str
    status: str  # "hit", "computed" or "coalesced"
    cell: str
    latency_s: float = 0.0

    def to_row(self) -> dict[str, Any]:
        import json

        row = {
            "key": self.key,
            "status": self.status,
            "cached": self.status == "hit",
            "cell": self.cell,
            "latency_s": round(self.latency_s, 6),
            "report": json.loads(report_to_json(self.report)),
        }
        return row


def _worker_solve(workload: str, graph_seed: int, algorithm: str,
                  config: dict[str, Any], seed: int | None,
                  verify: bool) -> str:
    """Worker-process entry point: rebuild the graph, solve, serialise.

    ``seed`` is forwarded verbatim so the worker re-derives exactly the
    seed/policy the scheduler's plan predicted -- cached provenance is
    indistinguishable from a fresh in-process ``repro.solve``.
    """
    graph = build_workload(workload, graph_seed=graph_seed)
    report = REGISTRY.solve(graph, algorithm, seed=seed, verify=verify,
                            **config)
    return report_to_json(report)


@dataclass
class _Job:
    """One queued computation (shared by every coalesced request)."""

    request: SolveRequest
    cell: str
    key: str
    future: "asyncio.Future[RunReport]" = field(repr=False, default=None)  # type: ignore[assignment]


class SolveScheduler:
    """Coalescing, admission-controlled, sharded dispatch over workers."""

    def __init__(self, *, cache: SolveCache | None = None,
                 shards: int | None = None, max_pending: int = 256,
                 inline: bool = False,
                 graph_memo_entries: int = 64) -> None:
        """``inline=True`` executes jobs on threads in-process (no worker
        pool) -- used by tests and constrained CI environments; the shard
        queues, coalescing and admission behave identically.

        The scheduler always resolves against the default
        :data:`repro.api.REGISTRY`: worker processes rebuild it on import
        (the same constraint the scenario runner's pool has), so a custom
        registry would let the planned content address and the executed
        solve disagree.
        """
        self.cache = cache if cache is not None else SolveCache()
        self.registry = REGISTRY
        self.shards = max(1, shards if shards is not None
                          else min(4, os.cpu_count() or 1))
        self.max_pending = max(1, int(max_pending))
        self.inline = inline
        self._graph_memo: "dict[tuple[str, int], nx.Graph]" = {}
        self._graph_memo_order: deque[tuple[str, int]] = deque()
        self._graph_memo_entries = max(1, graph_memo_entries)
        self._memo_lock = threading.Lock()
        self._inflight: dict[str, asyncio.Future] = {}
        self._queues: list[asyncio.PriorityQueue] = []
        self._consumers: list[asyncio.Task] = []
        self._executors: list[Executor] = []
        self._seq = itertools.count()
        self._pending = 0
        self._started = False
        self._closed = False
        self.counters: dict[str, int] = {
            "requests": 0, "hits": 0, "computed": 0, "coalesced": 0,
            "rejected": 0, "errors": 0,
        }
        self.latencies_s: deque[float] = deque(maxlen=4096)

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        if self._closed:
            raise AdmissionError("scheduler is closed")
        if self._started:
            return
        self._started = True
        for shard in range(self.shards):
            queue: asyncio.PriorityQueue = asyncio.PriorityQueue()
            self._queues.append(queue)
            if self.inline:
                executor: Executor = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix=f"repro-shard{shard}")
            else:
                executor = ProcessPoolExecutor(max_workers=1)
            self._executors.append(executor)
            self._consumers.append(
                asyncio.create_task(self._consume(shard), name=f"shard-{shard}"))

    async def stop(self) -> None:
        """Shut the scheduler down; pending and future work is *refused*.

        Closing is terminal and race-free by contract:

        * a ``submit`` arriving during or after ``stop()`` raises a clean
          :class:`AdmissionError` instead of restarting the consumers or
          enqueueing into a queue nobody drains;
        * jobs still sitting in the shard queues when the consumers are
          cancelled have their futures failed with :class:`AdmissionError`,
          so every submitter (including coalesced waiters sharing the
          future) unblocks instead of hanging forever.
        """
        self._closed = True
        if not self._started:
            return
        self._started = False
        for task in self._consumers:
            task.cancel()
        for task in self._consumers:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        # Fail the jobs no consumer will ever pop (and any still-pending
        # in-flight future) so their submitters unblock with a clean error.
        shutdown_error = AdmissionError(
            "scheduler closed while the request was queued")
        for queue in self._queues:
            while True:
                try:
                    _, _, job = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if not job.future.done():
                    job.future.set_exception(shutdown_error)
        for future in list(self._inflight.values()):
            if not future.done():
                future.set_exception(shutdown_error)
        self._pending = 0
        for executor in self._executors:
            executor.shutdown(wait=False, cancel_futures=True)
        self._consumers.clear()
        self._executors.clear()
        self._queues.clear()

    #: ``close`` is the conventional name for the terminal shutdown.
    close = stop

    # ------------------------------------------------------------- serving
    def _workload_graph(self, cell: str, graph_seed: int) -> nx.Graph:
        memo_key = (cell, graph_seed)
        with self._memo_lock:
            graph = self._graph_memo.get(memo_key)
        if graph is None:
            graph = build_workload(cell, graph_seed=graph_seed)
            with self._memo_lock:
                self._graph_memo[memo_key] = graph
                self._graph_memo_order.append(memo_key)
                while len(self._graph_memo_order) > self._graph_memo_entries:
                    evicted = self._graph_memo_order.popleft()
                    self._graph_memo.pop(evicted, None)
        return graph

    def _plan_request(self, request: SolveRequest) -> tuple[str, str]:
        """Resolve workload -> graph -> content address (thread-side).

        Building an unmemoized graph and fingerprinting it sorts every
        node and edge -- too slow for the event loop, where it would stall
        concurrent requests (including microsecond cache hits) behind one
        large cell.  ``submit`` runs this in an executor thread.
        """
        cell = resolve_workload(request.workload)
        graph = self._workload_graph(cell, request.graph_seed)
        plan = self.registry.plan(graph, request.algorithm, seed=request.seed,
                                  **request.config_dict)
        return cell, key_for_plan(plan)

    async def submit(self, request: SolveRequest) -> SolveResponse:
        """Serve one request (see the module docstring for the pipeline)."""
        start = time.perf_counter()
        self.counters["requests"] += 1
        if self._closed:
            self.counters["rejected"] += 1
            raise AdmissionError("scheduler is closed")
        loop = asyncio.get_running_loop()
        cell, key = await loop.run_in_executor(None, self._plan_request,
                                               request)
        if self._closed:  # closed while planning off-loop: do not enqueue
            self.counters["rejected"] += 1
            raise AdmissionError("scheduler is closed")

        report = self.cache.get(key, require_certificate=request.verify)
        if report is not None:
            self.counters["hits"] += 1
            return self._respond(report, key, "hit", cell, start)

        existing = self._inflight.get(key)
        if existing is not None:
            self.counters["coalesced"] += 1
            report = await asyncio.shield(existing)
            return self._respond(report, key, "coalesced", cell, start)

        if not self._started:
            await self.start()
        if self._pending >= self.max_pending:
            self.counters["rejected"] += 1
            raise AdmissionError(
                f"scheduler saturated: {self._pending} pending jobs "
                f"(max_pending={self.max_pending})")

        future: asyncio.Future = loop.create_future()
        job = _Job(request=request, cell=cell, key=key, future=future)
        self._inflight[key] = future
        # The in-flight entry lives exactly as long as the *job*: a
        # submitter cancelled mid-await (e.g. wait_for timeout) must not
        # tear it down while the computation still runs, or an identical
        # retry would enqueue a duplicate instead of coalescing.  The
        # callback also retrieves an orphaned job's exception so asyncio
        # never logs "exception was never retrieved".
        future.add_done_callback(self._retire_inflight(key))
        self._pending += 1
        shard = int(key, 16) % self.shards
        await self._queues[shard].put(
            (request.priority, next(self._seq), job))
        report = await asyncio.shield(future)
        self.counters["computed"] += 1
        return self._respond(report, key, "computed", cell, start)

    def _retire_inflight(self, key: str):
        def callback(future: asyncio.Future) -> None:
            if self._inflight.get(key) is future:
                del self._inflight[key]
            if not future.cancelled():
                future.exception()  # mark retrieved (orphaned submitters)

        return callback

    def _respond(self, report: RunReport, key: str, status: str, cell: str,
                 start: float) -> SolveResponse:
        latency = time.perf_counter() - start
        self.latencies_s.append(latency)
        return SolveResponse(report=report, key=key, status=status, cell=cell,
                             latency_s=latency)

    async def _consume(self, shard: int) -> None:
        queue = self._queues[shard]
        executor = self._executors[shard]
        loop = asyncio.get_running_loop()
        while True:
            _, _, job = await queue.get()
            try:
                request = job.request
                serialized = await loop.run_in_executor(
                    executor, _worker_solve, job.cell, request.graph_seed,
                    request.algorithm, request.config_dict, request.seed,
                    request.verify)
                report = report_from_json(serialized)
                self.cache.put(job.key, report)
                if not job.future.done():
                    job.future.set_result(report)
            except asyncio.CancelledError:
                # Consumer cancellation means shutdown: fail (not cancel)
                # the job's future so submitters awaiting it -- including
                # coalesced waiters -- see a clean AdmissionError rather
                # than a confusing CancelledError of their own coroutine.
                if not job.future.done():
                    job.future.set_exception(AdmissionError(
                        "scheduler closed while the request was running"))
                raise
            except Exception as error:  # noqa: BLE001 - surfaced per-request
                self.counters["errors"] += 1
                if not job.future.done():
                    job.future.set_exception(error)
            finally:
                self._pending -= 1
                queue.task_done()

    # --------------------------------------------------------------- stats
    def _percentile(self, values: list[float], q: float) -> float:
        if not values:
            return 0.0
        index = min(len(values) - 1, max(0, round(q * (len(values) - 1))))
        return values[index]

    def stats_row(self) -> dict[str, Any]:
        """The ``/stats`` document: counters, hit rate, latency percentiles."""
        values = sorted(self.latencies_s)
        requests = self.counters["requests"]
        served_from_cache = self.counters["hits"]
        return {
            "requests": requests,
            "hits": served_from_cache,
            "computed": self.counters["computed"],
            "coalesced": self.counters["coalesced"],
            "rejected": self.counters["rejected"],
            "errors": self.counters["errors"],
            "hit_rate": round(served_from_cache / requests, 4) if requests else 0.0,
            "pending": self._pending,
            "shards": self.shards,
            "inline_workers": self.inline,
            "latency_ms": {
                "count": len(values),
                "p50": round(1e3 * self._percentile(values, 0.50), 3),
                "p90": round(1e3 * self._percentile(values, 0.90), 3),
                "p99": round(1e3 * self._percentile(values, 0.99), 3),
            },
            "cache": self.cache.stats.to_row(),
        }
